"""Command-line interface.

``python -m repro <command>``:

* ``search``   — generate (or load) a dataset and run the NN candidates
  search with a chosen operator, printing the candidates progressively.
* ``figure``   — regenerate one paper figure at a scale preset.
* ``report``   — regenerate every figure and write the Markdown report
  (same as ``python -m repro.experiments.runner``).
* ``generate`` — synthesise a dataset to a ``.npz`` file for reuse.
* ``info``     — library / configuration summary.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _add_search(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("search", help="run an NN candidates search")
    p.add_argument("--operator", default="PSD",
                   choices=["SSD", "SSSD", "PSD", "FSD", "F+SD"])
    p.add_argument("--dataset", help=".npz dataset (from `generate`)")
    p.add_argument("--n", type=int, default=500, help="synthetic object count")
    p.add_argument("--m", type=int, default=10, help="instances per object")
    p.add_argument("--d", type=int, default=2, help="dimensionality")
    p.add_argument("--k", type=int, default=1, help="k-NN candidates (k-skyband)")
    p.add_argument("--metric", default="euclidean",
                   choices=["euclidean", "manhattan", "chebyshev"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quiet", action="store_true", help="summary only")
    p.add_argument("--trace", metavar="PATH",
                   help="record spans and write a trace file "
                   "(.jsonl = flat event log, else Chrome trace JSON "
                   "for chrome://tracing / ui.perfetto.dev)")
    p.add_argument("--trace-format", choices=["chrome", "jsonl"],
                   help="override the trace format inferred from the suffix")
    p.add_argument("--metrics", metavar="PATH",
                   help="collect metrics and write them "
                   "(.json = JSON dump, else Prometheus text format)")
    p.add_argument("--breakdown", action="store_true",
                   help="print the per-span comparison-count breakdown "
                   "(Figure 16 style; implies tracing) and, for degraded "
                   "runs, the full degradation report")
    p.add_argument("--deadline-ms", type=float, metavar="MS",
                   help="wall-clock budget; on exhaustion the search "
                   "degrades to a certified superset (exit code 3)")
    p.add_argument("--max-dominance-checks", type=int, metavar="N",
                   help="cap on dominance checks (degrades like "
                   "--deadline-ms)")
    p.add_argument("--max-flow-augmentations", type=int, metavar="N",
                   help="cap on P-SD max-flow augmentation iterations; "
                   "interrupted flow checks fall back to conservative "
                   "non-dominance")
    p.add_argument("--on-invalid", choices=["strict", "repair", "skip"],
                   help="validate input objects: strict rejects the dataset "
                   "(exit code 2), repair fixes what it can, skip "
                   "quarantines dirty objects")


def _add_figure(sub: argparse._SubParsersAction) -> None:
    from repro.experiments.figures import FIGURES

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name", choices=sorted(FIGURES))
    p.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])


def _add_report(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("report", help="regenerate every figure into a report")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    p.add_argument("--output", default="EXPERIMENTS.md")


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="synthesise a dataset to .npz")
    p.add_argument("output")
    p.add_argument("--kind", default="anti",
                   choices=["anti", "indep", "nba", "gowalla", "house", "ca", "usa"])
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--m", type=int, default=10)
    p.add_argument("--d", type=int, default=2)
    p.add_argument("--h", type=float, default=400.0, dest="edge")
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal spatial dominance NN candidate search "
        "(SIGMOD 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_search(sub)
    _add_figure(sub)
    _add_report(sub)
    _add_generate(sub)
    sub.add_parser("info", help="print library information")
    return parser


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.context import QueryContext
    from repro.core.nnc import NNCSearch
    from repro.datasets.synthetic import (
        anticorrelated_centers,
        make_objects,
        make_query,
    )
    from repro.objects.io import load_objects
    from repro.objects.validate import InvalidInputError

    rng = np.random.default_rng(args.seed)
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    report = None
    try:
        if args.dataset:
            if args.on_invalid:
                objects, report = load_objects(
                    args.dataset, on_invalid=args.on_invalid, metrics=registry
                )
            else:
                objects = load_objects(args.dataset)
            if not objects:
                print("no objects survived quarantine", file=sys.stderr)
                return 2
            center = objects[rng.integers(len(objects))].mbr.center
            query = make_query(center, max(2, args.m // 2), 200.0, rng)
        else:
            centers = anticorrelated_centers(args.n, args.d, rng)
            scale = (args.n / 100_000) ** (-1.0 / args.d)
            objects = make_objects(
                centers, args.m, 400.0 * scale, rng, on_invalid=args.on_invalid
            )
            query = make_query(
                centers[rng.integers(args.n)], max(2, args.m // 2), 200.0 * scale, rng
            )
    except InvalidInputError as exc:
        print(f"input rejected: {exc}", file=sys.stderr)
        for issue in exc.report.issues[:10]:
            print(
                f"  object #{issue.row} ({issue.oid!r}): "
                f"[{issue.code}] {issue.message}",
                file=sys.stderr,
            )
        return 2
    if report is not None and not report.clean:
        print(report.summary())
    budget = None
    if (
        args.deadline_ms is not None
        or args.max_dominance_checks is not None
        or args.max_flow_augmentations is not None
    ):
        from repro.resilience import Budget

        budget = Budget(
            deadline_ms=args.deadline_ms,
            max_dominance_checks=args.max_dominance_checks,
            max_flow_augmentations=args.max_flow_augmentations,
        )
    search = NNCSearch(objects)
    tracer = None
    if args.trace or args.breakdown:
        from repro.obs import Tracer

        tracer = Tracer()
    ctx = QueryContext(
        query,
        metric=args.metric,
        tracer=tracer,
        metrics=registry,
        budget=budget,
    )
    start = time.perf_counter()
    count = 0
    for candidate in search.stream(query, args.operator, k=args.k, ctx=ctx):
        count += 1
        if not args.quiet:
            elapsed = (time.perf_counter() - start) * 1000
            print(f"[{elapsed:8.1f} ms] candidate {candidate.oid}")
    total = time.perf_counter() - start
    print(
        f"{args.operator}: {count} candidate(s) of {len(objects)} objects "
        f"in {total * 1000:.1f} ms (k={args.k})"
    )
    degradation = search.last_degradation
    if degradation is not None:
        print(degradation.summary())
    if args.breakdown:
        from repro.experiments.report import trace_breakdown_table

        print()
        print(trace_breakdown_table(tracer.spans()))
        if degradation is not None:
            import json

            print()
            print("degradation report:")
            print(json.dumps(degradation.to_dict(), indent=2))
    if args.trace:
        from repro.obs import write_trace

        path = write_trace(args.trace, tracer, format=args.trace_format)
        dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
        print(f"trace: {len(tracer)} span(s){dropped} -> {path}")
    if args.metrics:
        from repro.obs import write_metrics

        path = write_metrics(args.metrics, registry)
        print(f"metrics -> {path}")
    # Exit code 3: the answer is a certified superset, not exact (see
    # repro.resilience); 0 means exact.
    return 3 if degradation is not None else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import FIGURES
    from repro.experiments.report import format_table

    result = FIGURES[args.name](args.scale)
    print(format_table(result.rows, f"{result.figure} — {result.description}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    return runner_main([args.scale, args.output])


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import semireal, synthetic
    from repro.objects.io import save_objects

    rng = np.random.default_rng(args.seed)
    if args.kind == "nba":
        objects = semireal.nba_like(args.n, args.m, rng)
    elif args.kind == "gowalla":
        objects = semireal.gowalla_like(args.n, args.m, rng)
    else:
        if args.kind == "anti":
            centers = synthetic.anticorrelated_centers(args.n, args.d, rng)
        elif args.kind == "indep":
            centers = synthetic.independent_centers(args.n, args.d, rng)
        elif args.kind == "house":
            centers = semireal.house_like(args.n, rng)
        elif args.kind == "ca":
            centers = semireal.ca_like(args.n, rng)
        else:
            centers = semireal.usa_like(args.n, rng)
        objects = synthetic.make_objects(centers, args.m, args.edge, rng)
    save_objects(args.output, objects)
    total = sum(len(o) for o in objects)
    print(f"wrote {len(objects)} objects ({total} instances) to {args.output}")
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__}")
    print("operators: SSD, SSSD, PSD, FSD, F+SD (+ NN-core, sphere baselines)")
    print("functions: N1 min/max/expected/quantile; N2 NN-probability,")
    print("           expected-rank, global top-k, parameterized ranking;")
    print("           N3 Hausdorff, SumMin, EMD/Netflow")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "info":
        return _cmd_info()
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
