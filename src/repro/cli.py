"""Command-line interface.

``python -m repro <command>``:

* ``search``   — generate (or load) a dataset and run the NN candidates
  search with a chosen operator, printing the candidates progressively.
* ``figure``   — regenerate one paper figure at a scale preset.
* ``report``   — regenerate every figure and write the Markdown report
  (same as ``python -m repro.experiments.runner``).
* ``generate`` — synthesise a dataset to a ``.npz`` file for reuse.
* ``serve``    — serve NNC queries over HTTP (sharded, cached, dynamic
  updates; see :mod:`repro.serve`).
* ``client``   — query / mutate a running server from the shell.
* ``replay``   — re-execute a serve audit log against a dataset and verify
  every recorded answer digest (see :mod:`repro.serve.audit`).
* ``info``     — library / configuration summary.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np


def _add_search(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("search", help="run an NN candidates search")
    p.add_argument("--operator", default="PSD",
                   choices=["SSD", "SSSD", "PSD", "FSD", "F+SD"])
    p.add_argument("--dataset", help=".npz dataset (from `generate`)")
    p.add_argument("--n", type=int, default=500, help="synthetic object count")
    p.add_argument("--m", type=int, default=10, help="instances per object")
    p.add_argument("--d", type=int, default=2, help="dimensionality")
    p.add_argument("--k", type=int, default=1, help="k-NN candidates (k-skyband)")
    p.add_argument("--metric", default="euclidean",
                   choices=["euclidean", "manhattan", "chebyshev"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quiet", action="store_true", help="summary only")
    p.add_argument("--trace", metavar="PATH",
                   help="record spans and write a trace file "
                   "(.jsonl = flat event log, else Chrome trace JSON "
                   "for chrome://tracing / ui.perfetto.dev)")
    p.add_argument("--trace-format", choices=["chrome", "jsonl"],
                   help="override the trace format inferred from the suffix")
    p.add_argument("--metrics", metavar="PATH",
                   help="collect metrics and write them "
                   "(.json = JSON dump, else Prometheus text format)")
    p.add_argument("--breakdown", action="store_true",
                   help="print the per-span comparison-count breakdown "
                   "(Figure 16 style; implies tracing) and, for degraded "
                   "runs, the full degradation report")
    p.add_argument("--deadline-ms", type=float, metavar="MS",
                   help="wall-clock budget; on exhaustion the search "
                   "degrades to a certified superset (exit code 3)")
    p.add_argument("--max-dominance-checks", type=int, metavar="N",
                   help="cap on dominance checks (degrades like "
                   "--deadline-ms)")
    p.add_argument("--max-flow-augmentations", type=int, metavar="N",
                   help="cap on P-SD max-flow augmentation iterations; "
                   "interrupted flow checks fall back to conservative "
                   "non-dominance")
    p.add_argument("--on-invalid", choices=["strict", "repair", "skip"],
                   help="validate input objects: strict rejects the dataset "
                   "(exit code 2), repair fixes what it can, skip "
                   "quarantines dirty objects")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="json prints one machine-readable document "
                   "(candidates + dominator counts + counters + "
                   "degradation) instead of the progressive text output")
    p.add_argument("--explain", action="store_true",
                   help="run through the serving-layer instrumentation and "
                   "print the per-stage cost breakdown (Figure 16 for this "
                   "one query; stage counters + refine + untracked "
                   "reconcile exactly with the counter bag)")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve", help="serve NNC queries over HTTP (sharded, cached)"
    )
    p.add_argument("--dataset", help=".npz dataset (from `generate`); "
                   "omit for a synthetic one")
    p.add_argument("--n", type=int, default=500, help="synthetic object count")
    p.add_argument("--m", type=int, default=10, help="instances per object")
    p.add_argument("--d", type=int, default=2, help="dimensionality")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--partitioner", default="round-robin",
                   choices=["round-robin", "centroid", "hash"],
                   help="hash = content-hash placement (shard_of); required "
                   "for node servers behind `repro router`")
    p.add_argument("--node-id", metavar="ID",
                   help="fleet identity surfaced in /healthz and /status "
                   "(node servers behind a router)")
    p.add_argument("--backend", default="auto",
                   choices=["auto", "serial", "thread", "process", "pool"])
    p.add_argument("--workers", type=int, metavar="N",
                   help="worker processes for --backend pool "
                   "(default: min(shards, cpu count), at least 2)")
    p.add_argument("--start-method", metavar="METHOD",
                   choices=["spawn", "fork", "forkserver"],
                   help="multiprocessing start method for --backend pool "
                   "(default spawn)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="0 picks an ephemeral port")
    p.add_argument("--cache-size", type=int, default=256,
                   help="LRU result-cache entries (0 disables)")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="concurrent engine requests before 429")
    p.add_argument("--deadline-ms", type=float, metavar="MS",
                   help="default per-query budget for requests without one")
    p.add_argument("--on-invalid", default="strict",
                   choices=["strict", "repair", "skip"])
    p.add_argument("--compact-threshold", type=float, default=0.3,
                   help="masked fraction that triggers a shard rebuild")
    p.add_argument("--sample", type=float, default=0.0, metavar="RATE",
                   help="fraction of requests traced end to end "
                   "(deterministic; 1.0 traces everything)")
    p.add_argument("--trace-dir", metavar="DIR",
                   help="write one merged Chrome trace JSON per sampled "
                   "request into DIR")
    p.add_argument("--audit-log", metavar="PATH",
                   help="append one replayable JSONL audit record per "
                   "served query/insert/delete (see `repro replay`)")
    p.add_argument("--data-dir", metavar="DIR",
                   help="durable tier: own DIR/wal.log + DIR/snap-*.snap; "
                   "restart recovers the exact pre-crash epoch (warm, "
                   "memory-mapped) instead of rebuilding from --dataset")
    p.add_argument("--fsync", default="always",
                   choices=["always", "interval", "never"],
                   help="WAL (and audit) fsync policy; only `always` makes "
                   "every acknowledged epoch crash-exact")
    p.add_argument("--fsync-interval-s", type=float, default=0.5,
                   metavar="S", help="max seconds between fsyncs under "
                   "--fsync interval")
    p.add_argument("--snapshot-every", type=int, default=256, metavar="N",
                   help="mutations between checkpoints (0: only on drain)")
    p.add_argument("--warm-pages", action="store_true",
                   help="touch every snapshot page during recovery so "
                   "first queries never fault cold")
    p.add_argument("--log-json", action="store_true",
                   help="structured JSON logs on stderr, request-id "
                   "correlated")
    p.add_argument("--slo-latency-ms", type=float, metavar="MS",
                   help="latency objective; slower requests burn "
                   "repro_slo_burn_total{slo=latency}")
    p.add_argument("--profile-hz", type=float, default=0.0, metavar="HZ",
                   help="continuous sampling profiler rate (0 disables); "
                   "folded stacks + flamegraph at GET /profile, pool "
                   "workers profiled and merged")


def _add_router(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "router",
        help="front N shard servers: consistent-hash placement, replica "
        "groups, hedged reads, failover",
        description="Serves the same /query /insert /delete protocol as "
        "`repro serve`, scatter-gathering over remote node servers "
        "(started with `repro serve --partitioner hash --shards S "
        "--node-id ID`).  Answers are bit-identical to a single process "
        "over the same dataset; see DESIGN.md §18.",
    )
    p.add_argument("--node", action="append", default=[], metavar="ID=URL",
                   required=True,
                   help="one fleet member, e.g. n1=http://127.0.0.1:8081; "
                   "repeatable (bare URLs get node ids host:port)")
    p.add_argument("--shards", type=int, required=True,
                   help="logical shard count; must equal every node's "
                   "--shards")
    p.add_argument("--replication", type=int, default=1, metavar="R",
                   help="replica group size (reads fail over inside the "
                   "group; writes fan out to all of it)")
    p.add_argument("--vnodes", type=int, default=64,
                   help="virtual nodes per ring member")
    p.add_argument("--hedge-ms", type=float, default=None, metavar="MS",
                   help="hedging threshold; default adapts to each node's "
                   "observed p95, 0 disables hedging")
    p.add_argument("--health-interval-s", type=float, default=2.0,
                   metavar="S", help="background /healthz sweep period "
                   "(0 disables)")
    p.add_argument("--node-timeout-s", type=float, default=10.0, metavar="S",
                   help="per-call socket timeout talking to nodes")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="0 picks an ephemeral port")
    p.add_argument("--cache-size", type=int, default=256,
                   help="router-side LRU result cache (0 disables)")
    p.add_argument("--max-inflight", type=int, default=32,
                   help="concurrent engine requests before 429")
    p.add_argument("--deadline-ms", type=float, metavar="MS",
                   help="default per-query budget forwarded to nodes")
    p.add_argument("--sample", type=float, default=0.0, metavar="RATE",
                   help="fraction of requests traced end to end (forces "
                   "sampling on every node the request touches)")
    p.add_argument("--trace-dir", metavar="DIR",
                   help="write one merged Chrome trace JSON per sampled "
                   "request into DIR")
    p.add_argument("--audit-log", metavar="PATH",
                   help="router-side replayable audit log; verify with "
                   "`repro replay --partitioner hash --shards S`")
    p.add_argument("--slo-latency-ms", type=float, metavar="MS",
                   help="latency objective; slower requests burn "
                   "repro_slo_burn_total{slo=latency}")
    p.add_argument("--profile-hz", type=float, default=0.0, metavar="HZ",
                   help="continuous sampling profiler rate (0 disables); "
                   "folded stacks + flamegraph at GET /profile")
    p.add_argument("--log-json", action="store_true",
                   help="structured JSON logs on stderr")


def _add_replay(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "replay",
        help="re-execute a serve audit log and verify answer digests",
    )
    p.add_argument("audit", help="JSONL audit file (from `serve --audit-log`)")
    p.add_argument("--dataset", required=True,
                   help=".npz dataset the server was started with")
    p.add_argument("--shards", type=int, default=1)
    p.add_argument("--partitioner", default="round-robin",
                   choices=["round-robin", "centroid", "hash"])
    p.add_argument("--backend", default="serial",
                   choices=["auto", "serial", "thread", "process"])
    p.add_argument("--format", choices=["text", "json"], default="text")


def _add_client(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("client", help="talk to a running `repro serve`")
    p.add_argument("action",
                   choices=["query", "insert", "delete", "health", "status",
                            "metrics", "fleet", "profile"])
    p.add_argument("--request-id", metavar="ID",
                   help="propagate an X-Request-Id for log/trace correlation")
    p.add_argument("--url", default="http://127.0.0.1:8080")
    p.add_argument("--points", help="JSON 2-D array of instances")
    p.add_argument("--probs", help="JSON array of instance weights")
    p.add_argument("--operator", default="FSD",
                   choices=["SSD", "SSSD", "PSD", "FSD", "F+SD"])
    p.add_argument("--k", type=int, default=1)
    p.add_argument("--metric", default="euclidean",
                   choices=["euclidean", "manhattan", "chebyshev"])
    p.add_argument("--oid", help="object id (insert/delete)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the server result cache")
    p.add_argument("--explain", action="store_true",
                   help="query only: ask the server for the per-stage cost "
                   "breakdown (forces end-to-end tracing; through a router "
                   "the view is fleet-merged with per-node timings)")
    p.add_argument("--deadline-ms", type=float, metavar="MS",
                   help="per-request budget")
    p.add_argument("--retries", type=int, default=5, metavar="N",
                   help="attempts after a connection failure or a 503 "
                   "retryable answer (bounded exponential backoff + "
                   "jitter); 0 fails fast")
    p.add_argument("--retry-base-ms", type=float, default=100.0, metavar="MS",
                   help="first backoff delay; doubles per retry, capped at "
                   "5s")
    p.add_argument("--format", choices=["text", "json", "slo-json"],
                   default="json",
                   help="json prints the raw server response; slo-json "
                        "(status only) prints the figure-ready SLO snapshot "
                        "(per-operator latency_ms quantiles + burn counters)")


def _add_figure(sub: argparse._SubParsersAction) -> None:
    from repro.experiments.figures import FIGURES

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("name", choices=sorted(FIGURES))
    p.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])


def _add_figures(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "figures",
        help="build registered figures: CSV + Vega-Lite specs + dashboard",
        description="Build figures from the declarative registry "
        "(repro.experiments.registry): paper reproductions, bench views "
        "over BENCH_kernels.json / BENCH_serve.json, and the cross-commit "
        "perf trajectory.  Each figure emits data/<id>.csv and "
        "specs/<id>.vl.json plus a section in a self-contained "
        "<out-dir>/index.html (inline SVG, no network).",
    )
    p.add_argument("ids", nargs="*", metavar="ID",
                   help="figure ids to build (default: none; see --list)")
    p.add_argument("--all", action="store_true", dest="all_figures",
                   help="build every registered figure")
    p.add_argument("--list", action="store_true", dest="list_figures",
                   help="list registered figure ids and exit")
    p.add_argument("--scale", default="smoke",
                   choices=["smoke", "tiny", "small", "medium"],
                   help="scale preset for the paper figures")
    p.add_argument("--out-dir", default="dashboard",
                   help="artifact directory (default: dashboard/)")
    p.add_argument("--kernels", metavar="PATH",
                   help="bench_kernels payload (default: BENCH_kernels.json)")
    p.add_argument("--serve", metavar="PATH",
                   help="bench_serve payload (default: BENCH_serve.json)")
    p.add_argument("--trajectory", metavar="PATH",
                   help="trajectory store (default: "
                        "benchmarks/results/trajectory.jsonl)")
    p.add_argument("--slo", metavar="PATH",
                   help="SLO snapshot JSON for slo-quantiles (a /status "
                        "body or `client status --format slo-json` output)")
    p.add_argument("--profile", metavar="PATH",
                   help="profiler snapshot JSON for the flamegraph figure "
                        "(a GET /profile body)")
    p.add_argument("--fleet", metavar="PATH",
                   help="fleet snapshot JSON for fleet-overview (a router "
                        "GET /fleet body)")
    p.add_argument("--verdict", action="append", default=[], metavar="PATH",
                   help="compare_bench.py --verdict-out JSON; repeatable, "
                        "rendered as gate badges on the dashboard")
    p.add_argument("--check", action="store_true",
                   help="build + self-check only, write no files")


def _add_report(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("report", help="regenerate every figure into a report")
    p.add_argument("--scale", default="small", choices=["tiny", "small", "medium"])
    p.add_argument("--output", default="EXPERIMENTS.md")


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="synthesise a dataset to .npz")
    p.add_argument("output")
    p.add_argument("--kind", default="anti",
                   choices=["anti", "indep", "nba", "gowalla", "house", "ca", "usa"])
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--m", type=int, default=10)
    p.add_argument("--d", type=int, default=2)
    p.add_argument("--h", type=float, default=400.0, dest="edge")
    p.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimal spatial dominance NN candidate search "
        "(SIGMOD 2015 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_search(sub)
    _add_figure(sub)
    _add_figures(sub)
    _add_report(sub)
    _add_generate(sub)
    _add_serve(sub)
    _add_router(sub)
    _add_client(sub)
    _add_replay(sub)
    sub.add_parser("info", help="print library information")
    return parser


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.context import QueryContext
    from repro.core.nnc import NNCSearch
    from repro.datasets.synthetic import (
        anticorrelated_centers,
        make_objects,
        make_query,
    )
    from repro.objects.io import load_objects
    from repro.objects.validate import InvalidInputError

    rng = np.random.default_rng(args.seed)
    registry = None
    if args.metrics:
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
    report = None
    try:
        if args.dataset:
            if args.on_invalid:
                objects, report = load_objects(
                    args.dataset, on_invalid=args.on_invalid, metrics=registry
                )
            else:
                objects = load_objects(args.dataset)
            if not objects:
                print("no objects survived quarantine", file=sys.stderr)
                return 2
            center = objects[rng.integers(len(objects))].mbr.center
            query = make_query(center, max(2, args.m // 2), 200.0, rng)
        else:
            centers = anticorrelated_centers(args.n, args.d, rng)
            scale = (args.n / 100_000) ** (-1.0 / args.d)
            objects = make_objects(
                centers, args.m, 400.0 * scale, rng, on_invalid=args.on_invalid
            )
            query = make_query(
                centers[rng.integers(args.n)], max(2, args.m // 2), 200.0 * scale, rng
            )
    except InvalidInputError as exc:
        print(f"input rejected: {exc}", file=sys.stderr)
        for issue in exc.report.issues[:10]:
            print(
                f"  object #{issue.row} ({issue.oid!r}): "
                f"[{issue.code}] {issue.message}",
                file=sys.stderr,
            )
        return 2
    if report is not None and not report.clean:
        print(report.summary())
    budget = None
    if (
        args.deadline_ms is not None
        or args.max_dominance_checks is not None
        or args.max_flow_augmentations is not None
    ):
        from repro.resilience import Budget

        budget = Budget(
            deadline_ms=args.deadline_ms,
            max_dominance_checks=args.max_dominance_checks,
            max_flow_augmentations=args.max_flow_augmentations,
        )
    if args.explain:
        return _search_explain(args, objects, query, budget, registry)
    search = NNCSearch(objects)
    tracer = None
    if args.trace or args.breakdown:
        from repro.obs import Tracer

        tracer = Tracer()
    ctx = QueryContext(
        query,
        metric=args.metric,
        tracer=tracer,
        metrics=registry,
        budget=budget,
    )
    if args.format == "json":
        import json as _json

        result = search.run(query, args.operator, k=args.k, ctx=ctx)
        print(_json.dumps(search_json_document(result, args, len(objects)),
                          indent=2))
        return 3 if result.degradation is not None else 0
    start = time.perf_counter()
    count = 0
    for candidate in search.stream(query, args.operator, k=args.k, ctx=ctx):
        count += 1
        if not args.quiet:
            elapsed = (time.perf_counter() - start) * 1000
            print(f"[{elapsed:8.1f} ms] candidate {candidate.oid}")
    total = time.perf_counter() - start
    print(
        f"{args.operator}: {count} candidate(s) of {len(objects)} objects "
        f"in {total * 1000:.1f} ms (k={args.k})"
    )
    degradation = search.last_degradation
    if degradation is not None:
        print(degradation.summary())
    if args.breakdown:
        from repro.experiments.report import trace_breakdown_table

        print()
        print(trace_breakdown_table(tracer.spans()))
        if degradation is not None:
            import json

            print()
            print("degradation report:")
            print(json.dumps(degradation.to_dict(), indent=2))
    if args.trace:
        from repro.obs import write_trace

        path = write_trace(args.trace, tracer, format=args.trace_format)
        dropped = f" ({tracer.dropped} dropped)" if tracer.dropped else ""
        print(f"trace: {len(tracer)} span(s){dropped} -> {path}")
    if args.metrics:
        from repro.obs import write_metrics

        path = write_metrics(args.metrics, registry)
        print(f"metrics -> {path}")
    # Exit code 3: the answer is a certified superset, not exact (see
    # repro.resilience); 0 means exact.
    return 3 if degradation is not None else 0


def search_json_document(result, args, n_objects: int) -> dict:
    """Machine-readable search outcome (shared with ``repro client``).

    Same candidate shape as the server's /query response
    (:func:`repro.serve.protocol.query_response`), plus the counter bag.
    """
    return {
        "operator": args.operator,
        "k": args.k,
        "metric": args.metric,
        "n_objects": n_objects,
        "candidates": [
            {
                "oid": obj.oid,
                "dominators": count,
                "yield_ms": when * 1000.0,
            }
            for obj, count, when in zip(
                result.candidates, result.dominator_counts, result.yield_times
            )
        ],
        "count": len(result.candidates),
        "elapsed_ms": result.elapsed * 1000.0,
        "degraded": result.degradation is not None,
        "degradation": (
            result.degradation.to_dict()
            if result.degradation is not None
            else None
        ),
        "counters": result.counters.snapshot(),
    }


def _search_explain(args, objects, query, budget, registry) -> int:
    """``search --explain``: one query through the instrumented path.

    Runs the same sharded pipeline a server runs (single shard, serial)
    under a sampled request context, so the breakdown comes from the
    identical span/counter machinery as a server-side ``"explain": true``.
    """
    import json as _json

    from repro.obs.request import RequestContext
    from repro.obs.tracer import Tracer
    from repro.serve.explain import build_explain
    from repro.serve.shard import ShardedSearch

    request = RequestContext.new(sampled=True)
    request.tracer = Tracer(epoch=request.trace_epoch)
    sharded = ShardedSearch(
        objects, shards=1, backend="serial", metrics=registry
    )
    result = sharded.run(
        query, args.operator, k=args.k, metric=args.metric,
        budget=budget, request=request,
    )
    explain = build_explain(
        result, operator=args.operator, k=args.k, request=request
    )
    if args.format == "json":
        print(_json.dumps(explain, indent=2))
    else:
        _print_explain(explain)
    return 3 if result.degradation is not None else 0


def _print_explain(explain: dict) -> None:
    """Render an explain body (node- or router-shaped) as text."""
    print(
        f"explain {explain.get('operator')} k={explain.get('k')} "
        f"backend={explain.get('backend')}: "
        f"{explain.get('candidates')} candidate(s) in "
        f"{explain.get('elapsed_ms', 0.0):.2f} ms"
        + (" (hedged)" if explain.get("hedged") else "")
    )
    stages = explain.get("stages") or []
    if stages:
        width = max(len(row["stage"]) for row in stages)
        print(f"  {'stage':<{width}}  count  excl ms  incl ms  counters")
        for row in stages:
            counters = ", ".join(
                f"{key}={value}"
                for key, value in sorted(row.get("counters", {}).items())
            ) or "-"
            print(
                f"  {row['stage']:<{width}}  {row['count']:5d}  "
                f"{row.get('exclusive_ms', 0.0):7.2f}  "
                f"{row.get('total_ms', 0.0):7.2f}  {counters}"
            )
    refine = explain.get("refine") or {}
    if refine:
        counters = ", ".join(
            f"{key}={value}"
            for key, value in sorted((refine.get("counters") or {}).items())
        ) or "-"
        print(f"  refine: {refine.get('checks', 0)} check(s); {counters}")
    untracked = explain.get("untracked") or {}
    if untracked:
        print("  untracked: " + ", ".join(
            f"{key}={value}" for key, value in sorted(untracked.items())
        ))
    nodes = explain.get("nodes") or {}
    for nid in sorted(nodes):
        entry = nodes[nid]
        fetches = entry.get("fetches") or []
        shards = ",".join(str(f.get("shard")) for f in fetches)
        hedged = sum(1 for f in fetches if f.get("hedged"))
        print(
            f"  node {nid}: shard(s) [{shards}] "
            f"{entry.get('elapsed_ms', 0.0):.2f} ms"
            + (f" ({hedged} hedged)" if hedged else "")
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.objects.io import load_objects
    from repro.objects.validate import InvalidInputError
    from repro.obs import MetricsRegistry
    from repro.serve.cache import ResultCache
    from repro.serve.server import NNCServer, ServeApp
    from repro.serve.updates import DatasetManager

    rng = np.random.default_rng(args.seed)
    try:
        if args.dataset:
            objects = load_objects(args.dataset)
        else:
            from repro.datasets.synthetic import (
                anticorrelated_centers,
                make_objects,
            )

            centers = anticorrelated_centers(args.n, args.d, rng)
            scale = (args.n / 100_000) ** (-1.0 / args.d)
            objects = make_objects(centers, args.m, 400.0 * scale, rng)
        registry = MetricsRegistry()
        if args.data_dir:
            from repro.serve.durable import DurableDatasetManager

            manager = DurableDatasetManager(
                objects,
                data_dir=args.data_dir,
                fsync=args.fsync,
                fsync_interval_s=args.fsync_interval_s,
                snapshot_every=args.snapshot_every,
                warm_pages=args.warm_pages,
                audit_path=args.audit_log,
                shards=args.shards,
                partitioner=args.partitioner,
                backend=args.backend,
                on_invalid=args.on_invalid,
                compact_threshold=args.compact_threshold,
                metrics=registry,
                workers=args.workers,
                start_method=args.start_method,
                profile_hz=args.profile_hz,
            )
            rec = manager.recovery
            print(
                f"recovered epoch {rec.recovered_epoch} from {rec.source} "
                f"in {rec.elapsed_s * 1000.0:.1f} ms "
                f"({rec.wal_frames_replayed} WAL frame(s) replayed"
                + (", torn WAL tail flagged" if rec.wal_torn else "")
                + (f", {rec.audit_reconciled} audit record(s) reconciled"
                   if rec.audit_reconciled else "")
                + ")",
                flush=True,
            )
        else:
            manager = DatasetManager(
                objects,
                shards=args.shards,
                partitioner=args.partitioner,
                backend=args.backend,
                on_invalid=args.on_invalid,
                compact_threshold=args.compact_threshold,
                metrics=registry,
                workers=args.workers,
                start_method=args.start_method,
                profile_hz=args.profile_hz,
            )
    except InvalidInputError as exc:
        print(f"input rejected: {exc}", file=sys.stderr)
        return 2
    default_budget = (
        {"deadline_ms": args.deadline_ms}
        if args.deadline_ms is not None
        else None
    )
    if args.log_json:
        from repro.obs import JsonLogger, set_logger

        set_logger(JsonLogger(sys.stderr, service="repro-serve"))
    audit = None
    if args.audit_log:
        from repro.serve.audit import AuditLog

        # Under the durable tier the audit trail shares the WAL's fsync
        # policy, so both logs lose at most the same crash window.
        audit = AuditLog(
            args.audit_log,
            metrics=registry,
            fsync=args.fsync if args.data_dir else "never",
            fsync_interval_s=args.fsync_interval_s,
        )
    app = ServeApp(
        manager,
        cache=ResultCache(args.cache_size, metrics=registry),
        registry=registry,
        max_inflight=args.max_inflight,
        default_budget=default_budget,
        sample_rate=args.sample,
        audit=audit,
        trace_dir=args.trace_dir,
        slo_latency_ms=args.slo_latency_ms,
        node_id=args.node_id,
        profile_hz=args.profile_hz,
    )
    server = NNCServer(app, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        print(
            f"serving {manager.size} objects on http://{args.host}:"
            f"{server.port} ({manager.search.shards} shard(s), "
            f"backend={manager.search.backend}); Ctrl-C / SIGTERM drains",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        import signal as _signal

        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("draining...", flush=True)
        await server.drain()

    asyncio.run(_run())
    if audit is not None:
        audit.close()
    print("drained cleanly")
    return 0


def _cmd_router(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import MetricsRegistry
    from repro.serve.cache import ResultCache
    from repro.serve.remote import RemoteNode, RemoteNodeError
    from repro.serve.router import RouterApp
    from repro.serve.server import NNCServer

    nodes = {}
    for spec in args.node:
        if "=" in spec:
            nid, url = spec.split("=", 1)
        else:
            nid, url = spec.split("//")[-1], spec
        nid = nid.strip()
        if not nid or nid in nodes:
            print(f"bad or duplicate --node {spec!r}", file=sys.stderr)
            return 2
        try:
            nodes[nid] = RemoteNode(
                nid, url.strip(), timeout_s=args.node_timeout_s
            )
        except ValueError as exc:
            print(f"bad --node {spec!r}: {exc}", file=sys.stderr)
            return 2
    if args.log_json:
        from repro.obs import JsonLogger, set_logger

        set_logger(JsonLogger(sys.stderr, service="repro-router"))
    registry = MetricsRegistry()
    audit = None
    if args.audit_log:
        from repro.serve.audit import AuditLog

        audit = AuditLog(args.audit_log, metrics=registry)
    default_budget = (
        {"deadline_ms": args.deadline_ms}
        if args.deadline_ms is not None
        else None
    )
    try:
        app = RouterApp(
            nodes,
            shards=args.shards,
            replication=args.replication,
            vnodes=args.vnodes,
            hedge_ms=args.hedge_ms,
            health_interval_s=args.health_interval_s,
            cache=ResultCache(args.cache_size, metrics=registry),
            registry=registry,
            max_inflight=args.max_inflight,
            default_budget=default_budget,
            sample_rate=args.sample,
            audit=audit,
            trace_dir=args.trace_dir,
            slo_latency_ms=args.slo_latency_ms,
            profile_hz=args.profile_hz,
        )
    except ValueError as exc:
        print(f"router: {exc}", file=sys.stderr)
        return 2
    # One synchronous sweep before binding: a router that can't see any
    # node should say so immediately, not on the first query.
    up = app._sweep_health()
    reachable = sum(1 for ok in up.values() if ok)
    for nid, node in nodes.items():
        try:
            status, body = node.call("GET", "/healthz", timeout_s=2.0)
        except RemoteNodeError:
            continue
        if status == 200 and body.get("shards") not in (None, args.shards):
            print(
                f"warning: node {nid} serves {body.get('shards')} shard(s), "
                f"router expects {args.shards}",
                file=sys.stderr,
            )
    server = NNCServer(app, host=args.host, port=args.port)

    async def _run() -> None:
        await server.start()
        print(
            f"routing {args.shards} shard(s) x {args.replication} "
            f"replica(s) over {len(nodes)} node(s) "
            f"({reachable} reachable) on http://{args.host}:{server.port}; "
            f"Ctrl-C / SIGTERM drains",
            flush=True,
        )
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        import signal as _signal

        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("draining...", flush=True)
        await server.drain()

    asyncio.run(_run())
    if audit is not None:
        audit.close()
    print("drained cleanly")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Re-execute an audit log; exit 0 verified, 1 mismatch, 2 load error."""
    import json as _json

    from repro.objects.io import load_objects
    from repro.serve.audit import load_audit, replay_audit

    try:
        records = load_audit(args.audit)
    except (OSError, ValueError) as exc:
        print(f"cannot read audit log: {exc}", file=sys.stderr)
        return 2
    try:
        objects = load_objects(args.dataset)
    except (OSError, ValueError, KeyError) as exc:
        print(f"cannot load dataset: {exc}", file=sys.stderr)
        return 2
    report = replay_audit(
        records,
        objects,
        shards=args.shards,
        partitioner=args.partitioner,
        backend=args.backend,
    )
    if args.format == "json":
        print(_json.dumps(report.to_dict(), indent=2))
    else:
        print(
            f"replayed {report.replayed} of {report.records} record(s): "
            f"{report.verified} verified, {report.mismatch_count} "
            f"mismatch(es), {report.mutations_applied} mutation(s), "
            f"{report.skipped_degraded} degraded + "
            f"{report.skipped_budgeted} budgeted skipped, "
            f"{report.epoch_errors} epoch error(s)"
        )
        if report.torn_tail:
            print(
                f"  torn audit tail at byte {report.torn_tail['offset']} "
                f"({report.torn_tail['detail']}) — skipped, not verified"
            )
        for row in report.mismatches:
            print(
                f"  seq {row['seq']} epoch {row['epoch']} {row['operator']}: "
                f"expected {row['expected']}, got {row['actual']}"
            )
    return 0 if report.ok else 1


def _cmd_client(args: argparse.Namespace) -> int:
    import http.client
    import json as _json
    from urllib.parse import urlparse

    url = urlparse(args.url)
    host = url.hostname or "127.0.0.1"
    port = url.port or 8080

    method, path, payload = "GET", None, None
    if args.action == "health":
        path = "/healthz"
    elif args.action == "status":
        path = "/status"
    elif args.action == "metrics":
        path = "/metrics"
    elif args.action == "fleet":
        path = "/fleet"
    elif args.action == "profile":
        path = "/profile"
    elif args.action == "query":
        if not args.points:
            print("query needs --points", file=sys.stderr)
            return 2
        method, path = "POST", "/query"
        try:
            payload = {
                "points": _json.loads(args.points),
                "operator": args.operator,
                "k": args.k,
                "metric": args.metric,
            }
            if args.probs:
                payload["probs"] = _json.loads(args.probs)
        except _json.JSONDecodeError as exc:
            print(f"--points/--probs must be JSON: {exc}", file=sys.stderr)
            return 2
        if args.no_cache:
            payload["cache"] = False
        if args.explain:
            payload["explain"] = True
        if args.deadline_ms is not None:
            payload["budget"] = {"deadline_ms": args.deadline_ms}
    elif args.action == "insert":
        if not args.points:
            print("insert needs --points", file=sys.stderr)
            return 2
        method, path = "POST", "/insert"
        try:
            payload = {"points": _json.loads(args.points)}
            if args.probs:
                payload["probs"] = _json.loads(args.probs)
        except _json.JSONDecodeError as exc:
            print(f"--points/--probs must be JSON: {exc}", file=sys.stderr)
            return 2
        if args.oid is not None:
            payload["oid"] = args.oid
    else:  # delete
        if args.oid is None:
            print("delete needs --oid", file=sys.stderr)
            return 2
        method, path = "POST", "/delete"
        payload = {"oid": args.oid}

    headers = {"Content-Type": "application/json"}
    if args.request_id:
        headers["X-Request-Id"] = args.request_id

    # Transient failures — connection refused/reset, or a 503 whose body
    # says `retryable` (pool worker death, recovering warm restart, a
    # router with every replica briefly out) — are retried with bounded
    # exponential backoff + jitter instead of failing the first attempt.
    import random as _random
    import time as _time

    max_attempts = max(0, args.retries) + 1
    retries = 0
    for attempt in range(max_attempts):
        conn = http.client.HTTPConnection(host, port, timeout=60.0)
        failure = None
        try:
            conn.request(
                method, path,
                body=_json.dumps(payload) if payload is not None else None,
                headers=headers,
            )
            resp = conn.getresponse()
            raw = resp.read()
            status = resp.status
            is_json = resp.getheader("Content-Type", "").startswith(
                "application/json"
            )
        except (ConnectionError, OSError) as exc:
            failure = exc
        finally:
            conn.close()
        if failure is None:
            body = _json.loads(raw) if is_json else None
            retryable = (
                status == 503
                and isinstance(body, dict)
                and body.get("retryable")
            )
            if not retryable:
                break
        if attempt + 1 >= max_attempts:
            if failure is not None:
                print(f"connection failed: {failure}", file=sys.stderr)
                return 2
            break
        delay = min(5.0, (args.retry_base_ms / 1000.0) * (2 ** attempt))
        delay *= 0.5 + _random.random() / 2.0
        reason = (
            f"connection failed ({failure})" if failure is not None
            else f"503 retryable ({(body or {}).get('error', '?')})"
        )
        print(
            f"retrying in {delay * 1000.0:.0f} ms after {reason} "
            f"[attempt {attempt + 1}/{max_attempts}]",
            file=sys.stderr,
        )
        _time.sleep(delay)
        retries += 1
    if retries:
        print(f"succeeded after {retries} retr"
              + ("y" if retries == 1 else "ies")
              if status == 200 else
              f"gave up after {retries} retr"
              + ("y" if retries == 1 else "ies"),
              file=sys.stderr)
    if not is_json:
        print(raw.decode())
        return 0 if status == 200 else 1
    if args.format == "slo-json":
        if args.action != "status":
            print("--format slo-json only applies to `client status`",
                  file=sys.stderr)
            return 2
        if status != 200:
            print(_json.dumps(body, indent=2))
            return 1
        slo = body.get("slo") or {}
        snapshot = {
            "latency_ms_target": slo.get("latency_ms_target"),
            "latency_ms": {
                op: {q: v * 1000.0 for q, v in quantiles.items()}
                for op, quantiles in (slo.get("latency_seconds") or {}).items()
            },
            "degraded_ratio": slo.get("degraded_ratio"),
            "error_ratio": slo.get("error_ratio"),
            "burn": slo.get("burn") or {},
        }
        if "durability" in body:
            snapshot["wal_seq"] = body.get("wal_seq")
            snapshot["last_snapshot_epoch"] = body.get("last_snapshot_epoch")
            snapshot["recovery"] = body.get("recovery")
        print(_json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    if args.format == "json":
        print(_json.dumps(body, indent=2))
    elif args.action == "query" and status == 200:
        oids = [c["oid"] for c in body["candidates"]]
        tag = " (cached)" if body.get("cached") else ""
        flag = " DEGRADED" if body.get("degraded") else ""
        retried = f" [{retries} retries]" if retries else ""
        print(
            f"{args.operator}: {body['count']} candidate(s) in "
            f"{body['elapsed_ms']:.1f} ms{tag}{flag}{retried}: {oids}"
        )
        if body.get("explain"):
            _print_explain(body["explain"])
    elif args.action == "fleet" and status == 200:
        quantiles = body.get("quantiles") or {}
        for op in sorted(quantiles):
            q = quantiles[op]
            clamp = " [clamped]" if q.get("clamped") else ""
            print(
                f"{op}: {q.get('count')} query(ies), "
                f"p50 {q.get('p50', 0.0) * 1000:.2f} ms, "
                f"p95 {q.get('p95', 0.0) * 1000:.2f} ms, "
                f"p99 {q.get('p99', 0.0) * 1000:.2f} ms{clamp}"
            )
        for nid in sorted(body.get("nodes") or {}):
            view = body["nodes"][nid]
            if not view.get("ok"):
                print(f"node {nid}: DOWN ({view.get('error', '?')}), "
                      f"breaker {view.get('breaker')}")
                continue
            alerts = view.get("alerts") or []
            print(
                f"node {nid}: {view.get('status')}, "
                f"epoch {view.get('epoch')}, "
                f"{view.get('objects')} object(s), "
                f"up {view.get('uptime_seconds') or 0.0:.0f}s, "
                f"breaker {view.get('breaker')}"
                + (f", alerts: {', '.join(alerts)}" if alerts else "")
            )
    elif args.action == "profile" and status == 200:
        state = "on" if body.get("enabled") else "off"
        print(
            f"profiler {state} @ {body.get('hz')} Hz: "
            f"{body.get('samples')} sample(s), "
            f"{body.get('attributed')} attributed to requests, "
            f"{body.get('distinct_stacks')} distinct stack(s)"
        )
        top = sorted(
            (body.get("stacks") or {}).items(), key=lambda kv: -kv[1]
        )
        for stack, count in top[:10]:
            print(f"  {count:6d}  {stack.split(';')[-1]}")
    elif args.action == "status" and status == 200:
        print(
            f"status {body.get('status')}: epoch {body.get('epoch')}, "
            f"{body.get('objects')} object(s), {body.get('shards')} "
            f"shard(s), backend {body.get('backend')}"
        )
        active = (body.get("alerts") or {}).get("active") or []
        if active:
            print(f"ALERTS FIRING: {', '.join(active)}")
        dur = body.get("durability")
        if dur:
            rec = dur.get("recovery") or {}
            print(
                f"durable: wal_seq {dur.get('wal_seq')}, last snapshot "
                f"epoch {dur.get('last_snapshot_epoch')}, fsync "
                f"{dur.get('fsync')}; recovered epoch "
                f"{rec.get('recovered_epoch')} from {rec.get('source')} "
                f"in {(rec.get('elapsed_s') or 0) * 1000.0:.1f} ms"
            )
    else:
        print(_json.dumps(body, indent=2))
    if status != 200:
        return 1
    # Mirror the search verb: degraded answers exit 3.
    if args.action == "query" and body.get("degraded"):
        return 3
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figures import FIGURES
    from repro.experiments.report import format_table

    result = FIGURES[args.name](args.scale)
    print(format_table(result.rows, f"{result.figure} — {result.description}"))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.experiments import provenance, registry
    from repro.experiments.dashboard import render_dashboard

    if args.list_figures:
        for fid in registry.registered_ids():
            fig = registry.get(fid)
            print(f"{fid:16s} [{fig.category:10s}] {fig.title}")
        return 0
    if args.all_figures:
        fids = registry.registered_ids()
    elif args.ids:
        fids = list(args.ids)
    else:
        print("figures: name ids or pass --all (try --list)", file=sys.stderr)
        return 2

    overrides = {"scale": args.scale}
    for name in ("kernels", "serve", "trajectory", "slo", "profile", "fleet"):
        value = getattr(args, name)
        if value:
            overrides[name] = Path(value)
    inputs = registry.BuildInputs(**overrides)

    verdicts = []
    for path in args.verdict:
        try:
            verdicts.append(_json.loads(Path(path).read_text()))
        except (OSError, _json.JSONDecodeError) as exc:
            print(f"figures: cannot read verdict {path}: {exc}",
                  file=sys.stderr)
            return 2

    try:
        arts = registry.build_many(
            fids, inputs,
            on_progress=lambda fid: print(f"building {fid} ...", flush=True),
        )
    except registry.UnknownFigureError as exc:
        print(f"figures: {exc}", file=sys.stderr)
        return 2
    except (registry.FigureInputError, registry.SelfCheckError) as exc:
        print(f"figures: {exc}", file=sys.stderr)
        return 1

    for art in arts:
        summary = registry.self_check(art)
        print(
            f"  {art.fid}: {summary['rows']} row(s), "
            f"{summary['series']} series — self-check ok"
        )
    if args.check:
        print(f"checked {len(arts)} figure(s); nothing written (--check)")
        return 0

    out_dir = Path(args.out_dir)
    for art in arts:
        registry.write_artifacts(art, out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    html = render_dashboard(
        arts,
        verdicts=verdicts,
        provenance_record=provenance.collect(),
        scale=args.scale,
    )
    (out_dir / "index.html").write_text(html)
    print(f"wrote {len(arts)} figure(s) to {out_dir}/ (index.html, data/, specs/)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as runner_main

    return runner_main([args.scale, args.output])


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import semireal, synthetic
    from repro.objects.io import save_objects

    rng = np.random.default_rng(args.seed)
    if args.kind == "nba":
        objects = semireal.nba_like(args.n, args.m, rng)
    elif args.kind == "gowalla":
        objects = semireal.gowalla_like(args.n, args.m, rng)
    else:
        if args.kind == "anti":
            centers = synthetic.anticorrelated_centers(args.n, args.d, rng)
        elif args.kind == "indep":
            centers = synthetic.independent_centers(args.n, args.d, rng)
        elif args.kind == "house":
            centers = semireal.house_like(args.n, rng)
        elif args.kind == "ca":
            centers = semireal.ca_like(args.n, rng)
        else:
            centers = semireal.usa_like(args.n, rng)
        objects = synthetic.make_objects(centers, args.m, args.edge, rng)
    save_objects(args.output, objects)
    total = sum(len(o) for o in objects)
    print(f"wrote {len(objects)} objects ({total} instances) to {args.output}")
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__}")
    print("operators: SSD, SSSD, PSD, FSD, F+SD (+ NN-core, sphere baselines)")
    print("functions: N1 min/max/expected/quantile; N2 NN-probability,")
    print("           expected-rank, global top-k, parameterized ranking;")
    print("           N3 Hausdorff, SumMin, EMD/Netflow")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "search":
        return _cmd_search(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "router":
        return _cmd_router(args)
    if args.command == "client":
        return _cmd_client(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "info":
        return _cmd_info()
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
