"""Usual stochastic order and match order between discrete distributions.

Definition 1 of the paper: ``X <=_st Y`` iff ``Pr(X <= t) >= Pr(Y <= t)`` for
every ``t``.  Definition 9 introduces the *match order* ``X <=_M Y`` —
existence of a probability match pairing every atom of ``X`` with atoms of
``Y`` of no smaller value — and Theorem 1 proves the two are equivalent.

:func:`stochastic_leq` is the single-scan dominance check of Section 5.1.1:
walk the union of the two sorted supports maintaining
``F(t) = Pr(X <= t) - Pr(Y <= t)`` and fail as soon as ``F`` dips below zero.
Its complexity is linear in the support sizes (the supports are already
sorted inside :class:`~repro.stats.distribution.DiscreteDistribution`),
matching the comparison lower bound of Theorem 10 once the initial sort is
accounted for.

:func:`build_match` is the constructive half of Theorem 1: given
``X <=_st Y`` it produces an explicit match, which the N3 correctness proofs
(and our property tests) rely on.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.stats.distribution import DiscreteDistribution

_TOL = 1e-9


class ComparisonCounter(Protocol):
    """Anything capable of recording element comparisons (see Fig 16)."""

    def count_comparisons(self, n: int) -> None:
        """Record ``n`` instance comparisons."""


def stochastic_leq(
    x: DiscreteDistribution,
    y: DiscreteDistribution,
    *,
    tol: float = _TOL,
    counter: ComparisonCounter | None = None,
    use_kernel: bool = False,
) -> bool:
    """Single-scan check of ``X <=_st Y``.

    Args:
        x: left distribution (the candidate dominator).
        y: right distribution.
        tol: numeric slack for CDF comparisons.
        counter: optional instrumentation sink; receives one comparison per
            support point examined (used for the Appendix C filter study).
            When no counter is attached a vectorised evaluation (same tie
            conventions, no early exit) is used instead of the scan.
        use_kernel: force the vectorised evaluation even with a counter
            attached (the ``QueryContext(kernels=True)`` hot path); the
            counter then records one comparison per union support point, the
            number the vectorised sweep actually evaluates.

    Returns:
        True iff ``Pr(X <= t) >= Pr(Y <= t)`` for every ``t``.
    """
    if counter is None or use_kernel:
        if counter is not None:
            counter.count_comparisons(len(x.values) + len(y.values))
        return _stochastic_leq_vectorised(x, y, tol)
    xv, xp = x.values, x.probs
    yv, yp = y.values, y.probs
    i = j = 0
    cum_x = cum_y = 0.0
    comparisons = 0
    nx, ny = len(xv), len(yv)
    while i < nx or j < ny:
        comparisons += 1
        if j >= ny:
            # Only X atoms remain; the CDF gap can only grow.  Done.
            break
        # Values within the CDF tie tolerance count as simultaneous, with X
        # absorbed first (same convention as DiscreteDistribution.cdf).
        if i < nx and xv[i] <= yv[j] + 1e-12:
            cum_x += xp[i]
            i += 1
        else:
            cum_y += yp[j]
            j += 1
        # F must be checked after every atom of Y is absorbed; checking after
        # every step is equally correct and keeps the loop branch-free.
        if cum_x < cum_y - tol:
            if counter is not None:
                counter.count_comparisons(comparisons)
            return False
    if counter is not None:
        counter.count_comparisons(comparisons)
    # Total masses must agree for the order to be meaningful.
    return abs(x.total_mass - y.total_mass) <= 1e-6


def _stochastic_leq_vectorised(
    x: DiscreteDistribution, y: DiscreteDistribution, tol: float
) -> bool:
    """Vectorised ``X <=_st Y``: ``cdf_x`` evaluated at ``Y``'s jump points.

    Checking at the support points of ``Y`` alone suffices: both CDFs are
    right-continuous step functions, and between jumps of ``cdf_y`` the gap
    ``cdf_x - cdf_y`` only grows, so it is tightest right at each ``Y``
    atom.  The ``+1e-12`` shift applies the same value-tie convention as
    the scan and ``cdf``.
    """
    cum_x = x.cum_probs()
    cum_y = y.cum_probs()
    if abs(cum_x[-1] - cum_y[-1]) > 1e-6:
        return False
    cdf_x = cum_x[np.searchsorted(x.values, y.values + 1e-12, side="right")]
    return bool(np.all(cdf_x >= cum_y[1:] - tol))


def stochastic_equal(
    x: DiscreteDistribution,
    y: DiscreteDistribution,
    *,
    tol: float = _TOL,
    counter: ComparisonCounter | None = None,
    use_kernel: bool = False,
) -> bool:
    """Distributional equality (``X <=_st Y`` and ``Y <=_st X``)."""
    return x == y or (
        stochastic_leq(x, y, tol=tol, counter=counter, use_kernel=use_kernel)
        and stochastic_leq(y, x, tol=tol, counter=counter, use_kernel=use_kernel)
    )


def match_order_leq(
    x: DiscreteDistribution, y: DiscreteDistribution, *, tol: float = _TOL
) -> bool:
    """``X <=_M Y`` — decided via Theorem 1's equivalence with ``<=_st``."""
    return stochastic_leq(x, y, tol=tol)


def build_match(
    x: DiscreteDistribution, y: DiscreteDistribution
) -> list[tuple[float, float, float]]:
    """Construct an explicit match witnessing ``X <=_M Y`` (Theorem 1, B.1).

    Walks the atoms of ``Y`` in non-decreasing order and greedily assigns the
    smallest still-unconsumed mass of ``X``, splitting atoms when needed.

    Returns:
        List of ``(x_value, y_value, probability)`` tuples; the probabilities
        sum to the total mass, each tuple has ``x_value <= y_value``, and the
        per-value marginals equal the input distributions.

    Raises:
        ValueError: if ``X <=_st Y`` does not hold (no such match exists).
    """
    if not stochastic_leq(x, y):
        raise ValueError("no match exists: X <=_st Y does not hold")
    match: list[tuple[float, float, float]] = []
    xi = 0
    x_rem = float(x.probs[0])
    for y_val, y_prob in zip(y.values, y.probs):
        need = float(y_prob)
        while need > _TOL:
            take = min(need, x_rem)
            if take > _TOL:
                match.append((float(x.values[xi]), float(y_val), take))
            need -= take
            x_rem -= take
            if x_rem <= _TOL and xi + 1 < len(x.values):
                xi += 1
                x_rem = float(x.probs[xi])
            elif x_rem <= _TOL:
                break
    return match
