"""Discrete distributions and stochastic orders.

The paper models multi-instance objects as discrete random variables and
compares distance distributions with the *usual stochastic order*
(Definition 1) and the equivalent *match order* (Definition 9 / Theorem 1).
This subpackage implements both, plus the single-scan dominance check of
Section 5.1.1 and the summary statistics used by the statistic-based pruning
rule (Theorem 11).
"""

from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import (
    build_match,
    match_order_leq,
    stochastic_equal,
    stochastic_leq,
)

__all__ = [
    "DiscreteDistribution",
    "build_match",
    "match_order_leq",
    "stochastic_equal",
    "stochastic_leq",
]
