"""Discrete univariate probability distributions.

``DiscreteDistribution`` is the representation of a *distance distribution*
(:math:`U_Q`, :math:`U_q`; Section 2.1) and of any other finite random
variable the paper manipulates.  Values are kept sorted in non-decreasing
order with their probabilities, which makes the stochastic order check a
single merge scan and makes quantiles O(log n).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

_PROB_TOL = 1e-9


class DiscreteDistribution:
    """A finite random variable: sorted support values with probabilities.

    Equal values are merged on construction, so two distributions are
    distributionally identical iff their ``values``/``probs`` arrays match.

    Attributes:
        values: sorted support, shape ``(n,)``.
        probs: matching probabilities, shape ``(n,)``, summing to ``total``.
    """

    __slots__ = ("values", "probs", "_cum")

    def __init__(
        self,
        values: Iterable[float],
        probs: Iterable[float] | None = None,
        *,
        normalize: bool = False,
    ) -> None:
        if not isinstance(values, np.ndarray):
            values = list(values)
        vals = np.asarray(values, dtype=float)
        if probs is None:
            if vals.size == 0:
                raise ValueError("distribution needs at least one value")
            ps = np.full(vals.shape, 1.0 / vals.size)
        else:
            if not isinstance(probs, np.ndarray):
                probs = list(probs)
            ps = np.asarray(probs, dtype=float)
        if vals.shape != ps.shape or vals.ndim != 1:
            raise ValueError("values and probs must be equal-length 1-d arrays")
        if vals.size == 0:
            raise ValueError("distribution needs at least one value")
        if np.any(ps < -_PROB_TOL):
            raise ValueError("probabilities must be non-negative")
        if normalize:
            total = ps.sum()
            if total <= 0:
                raise ValueError("cannot normalize zero total mass")
            ps = ps / total
        order = np.argsort(vals, kind="stable")
        vals = vals[order]
        ps = ps[order]
        # Common case: all mass significant, no (near-)duplicate support —
        # the merge loop below would be the identity, so skip it.
        self._cum = None
        if np.all(ps > _PROB_TOL) and (
            vals.size == 1 or np.all(np.diff(vals) > 1e-12)
        ):
            self.values = vals
            self.probs = ps
            return
        # Merge duplicate support points so equality tests are canonical.
        keep_vals: list[float] = []
        keep_ps: list[float] = []
        for v, p in zip(vals, ps):
            if p <= _PROB_TOL:
                continue
            if keep_vals and abs(v - keep_vals[-1]) <= 1e-12:
                keep_ps[-1] += p
            else:
                keep_vals.append(float(v))
                keep_ps.append(float(p))
        if not keep_vals:
            raise ValueError("distribution has no probability mass")
        self.values = np.asarray(keep_vals)
        self.probs = np.asarray(keep_ps)

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.values.size)

    def __iter__(self):
        return iter(zip(self.values, self.probs))

    def __repr__(self) -> str:
        pairs = ", ".join(f"({v:g}, {p:g})" for v, p in zip(self.values, self.probs))
        return f"DiscreteDistribution([{pairs}])"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteDistribution):
            return NotImplemented
        return bool(
            self.values.size == other.values.size
            and np.allclose(self.values, other.values, atol=1e-9)
            and np.allclose(self.probs, other.probs, atol=_PROB_TOL)
        )

    def __hash__(self) -> int:  # pragma: no cover - dict use is incidental
        return hash((self.values.tobytes(), self.probs.round(9).tobytes()))

    # ------------------------------------------------------------------ #
    # Statistics (Theorem 11 pruning ingredients and N1 aggregates)
    # ------------------------------------------------------------------ #

    def cum_probs(self) -> np.ndarray:
        """``[0, P(<= v_1), ..., total]`` — cumulative masses, cached.

        The distribution is immutable after construction, so the prefix-sum
        array every CDF evaluation needs is computed once.
        """
        if self._cum is None:
            self._cum = np.concatenate([[0.0], np.cumsum(self.probs)])
        return self._cum

    @property
    def total_mass(self) -> float:
        """Total probability mass (1.0 for normalized distributions)."""
        return float(self.cum_probs()[-1])

    def min(self) -> float:
        """Smallest support value."""
        return float(self.values[0])

    def max(self) -> float:
        """Largest support value."""
        return float(self.values[-1])

    def mean(self) -> float:
        """Expected value."""
        return float(np.dot(self.values, self.probs) / self.probs.sum())

    def variance(self) -> float:
        """Variance about the mean."""
        mu = self.mean()
        return float(np.dot((self.values - mu) ** 2, self.probs) / self.probs.sum())

    def cdf(self, x: float) -> float:
        """``Pr(X <= x)``."""
        idx = int(np.searchsorted(self.values, x + 1e-12, side="right"))
        return float(self.cum_probs()[idx])

    def quantile(self, phi: float) -> float:
        """The paper's ``phi-quantile`` (Definition 10).

        The value of the first sorted instance whose cumulative probability
        reaches ``phi``.

        Raises:
            ValueError: unless ``0 < phi <= total mass (+tolerance)``.
        """
        if not 0 < phi <= self.total_mass + _PROB_TOL:
            raise ValueError(f"phi must lie in (0, {self.total_mass}]; got {phi}")
        cum = np.cumsum(self.probs)
        idx = int(np.searchsorted(cum, phi - _PROB_TOL, side="left"))
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[float, float]]) -> "DiscreteDistribution":
        """Build from ``(value, probability)`` tuples."""
        if not pairs:
            raise ValueError("distribution needs at least one pair")
        vals, ps = zip(*pairs)
        return cls(vals, ps)

    @classmethod
    def point_mass(cls, value: float) -> "DiscreteDistribution":
        """Degenerate distribution concentrated at ``value``."""
        return cls([value], [1.0])

    def scaled(self, factor: float) -> "DiscreteDistribution":
        """Same support with all probabilities multiplied by ``factor``."""
        if factor <= 0:
            raise ValueError("scaling factor must be positive")
        return DiscreteDistribution(self.values, self.probs * factor)

    @classmethod
    def mixture(
        cls, components: Sequence[tuple["DiscreteDistribution", float]]
    ) -> "DiscreteDistribution":
        """Probability mixture ``sum_i w_i * X_i``.

        Used to assemble ``U_Q`` from the per-query-instance distributions
        ``U_q`` (the identity ``Pr(U_Q <= x) = sum_q p(q) Pr(U_q <= x)`` from
        the proof of Theorem 2).
        """
        if not components:
            raise ValueError("mixture needs at least one component")
        vals: list[float] = []
        ps: list[float] = []
        for dist, weight in components:
            if weight < 0:
                raise ValueError("mixture weights must be non-negative")
            vals.extend(dist.values.tolist())
            ps.extend((dist.probs * weight).tolist())
        return cls(vals, ps)
