"""Surrogates for the paper's real and semi-real datasets.

The originals (NBA game logs, GoWalla check-ins, IPUMS HOUSE, Census CA,
USGS USA) cannot be fetched offline; each generator below reproduces the
*property the paper leans on* for that dataset (see DESIGN.md §6):

* **NBA** — 3-d per-game stat lines; player instance clouds overlap heavily
  league-wide (the paper: "instances of objects are highly overlapped, which
  renders an increase in the candidate size").
* **GW (GoWalla)** — 2-d check-ins; per-user mixtures around home locations
  plus shared hot spots, again highly overlapping.
* **HOUSE** — 3-d expenditure shares: correlated simplex-like centers.
* **CA** — 2-d clustered locations (towns along corridors).
* **USA** — larger 2-d clustered point field used for scalability sweeps.

All generators return *center* arrays in the ``[0, 10000]^d`` domain (HOUSE /
CA / USA are center datasets in the paper, with instances synthesised by the
standard recipe) except :func:`nba_like` and :func:`gowalla_like`, which
return complete multi-instance objects because their instance structure *is*
the salient feature.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import DOMAIN
from repro.objects.uncertain import UncertainObject
from repro.objects.validate import validate_objects


def nba_like(
    n_players: int,
    games_per_player: int,
    rng: np.random.Generator,
    *,
    on_invalid: str | None = None,
) -> list[UncertainObject]:
    """NBA-style 3-d objects (points, assists, rebounds per game).

    Player skill means are drawn from a league-wide distribution that is
    narrow relative to game-to-game variance, producing the heavy overlap of
    the real data.  The scoring dimension is right-skewed (lognormal-ish).
    """
    objects: list[UncertainObject] = []
    for pid in range(n_players):
        skill = rng.uniform(0.2, 0.8, size=3)
        mean = skill * np.array([30.0, 10.0, 12.0])
        games = np.empty((games_per_player, 3))
        games[:, 0] = rng.lognormal(np.log(mean[0] + 1.0), 0.5, games_per_player)
        games[:, 1] = np.abs(rng.normal(mean[1], mean[1] * 0.6 + 1.0, games_per_player))
        games[:, 2] = np.abs(rng.normal(mean[2], mean[2] * 0.6 + 1.0, games_per_player))
        games = np.clip(games, 0.0, None)
        # Normalise to the common [0, 10000] domain (per-dim scale).
        games *= DOMAIN / np.array([60.0, 25.0, 30.0])
        games = np.clip(games, 0.0, DOMAIN)
        objects.append(UncertainObject(games, oid=pid))
    if on_invalid is not None:
        objects, _report = validate_objects(objects, on_invalid=on_invalid)
    return objects


def gowalla_like(
    n_users: int,
    checkins_per_user: int,
    rng: np.random.Generator,
    *,
    n_hotspots: int = 12,
    on_invalid: str | None = None,
) -> list[UncertainObject]:
    """GoWalla-style 2-d objects (per-user check-in clouds).

    Each user mixes check-ins around a home location with visits to shared
    city hot spots, so different users' clouds overlap strongly.
    """
    hotspots = rng.uniform(0.15 * DOMAIN, 0.85 * DOMAIN, size=(n_hotspots, 2))
    objects: list[UncertainObject] = []
    for uid in range(n_users):
        home = rng.uniform(0.0, DOMAIN, size=2)
        pts = np.empty((checkins_per_user, 2))
        for i in range(checkins_per_user):
            if rng.random() < 0.45:
                spot = hotspots[rng.integers(0, n_hotspots)]
                pts[i] = rng.normal(spot, 0.01 * DOMAIN)
            else:
                pts[i] = rng.normal(home, 0.03 * DOMAIN)
        objects.append(UncertainObject(np.clip(pts, 0.0, DOMAIN), oid=uid))
    if on_invalid is not None:
        objects, _report = validate_objects(objects, on_invalid=on_invalid)
    return objects


def house_like(n: int, rng: np.random.Generator) -> np.ndarray:
    """HOUSE-style 3-d centers: expenditure shares on a noisy simplex."""
    alpha = np.array([4.0, 2.5, 1.5])
    shares = rng.dirichlet(alpha, size=n)
    noisy = np.clip(shares + rng.normal(0.0, 0.03, size=shares.shape), 0.0, 1.0)
    return noisy * DOMAIN


def _clustered_field(
    n: int,
    n_clusters: int,
    cluster_sd: float,
    rng: np.random.Generator,
) -> np.ndarray:
    centers = rng.uniform(0.05 * DOMAIN, 0.95 * DOMAIN, size=(n_clusters, 2))
    weights = rng.dirichlet(np.full(n_clusters, 1.2))
    assignment = rng.choice(n_clusters, size=n, p=weights)
    pts = rng.normal(centers[assignment], cluster_sd * DOMAIN)
    return np.clip(pts, 0.0, DOMAIN)


def ca_like(n: int, rng: np.random.Generator) -> np.ndarray:
    """CA-style 2-d centers: strongly clustered locations."""
    return _clustered_field(n, n_clusters=18, cluster_sd=0.035, rng=rng)


def usa_like(n: int, rng: np.random.Generator) -> np.ndarray:
    """USA/USGS-style 2-d centers: many clusters plus a diffuse background."""
    n_bg = n // 5
    clustered = _clustered_field(n - n_bg, n_clusters=40, cluster_sd=0.02, rng=rng)
    background = rng.uniform(0.0, DOMAIN, size=(n_bg, 2))
    return np.vstack([clustered, background])
