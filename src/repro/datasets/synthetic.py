"""Synthetic data following the paper's recipe (Section 6, Table 2).

Object *centers* follow the anti-correlated (``A``) or independent (``E``)
distributions of Börzsönyi et al. [8]; *instances* are Normal clouds around
each center with standard deviation ``h_d / 2``, clipped to a bounding box
whose edge lengths are drawn uniformly from ``(0, 2 * h_d)``; all dimensions
are normalised to the domain ``[0, 10000]``.
"""

from __future__ import annotations

import numpy as np

from repro.objects.uncertain import UncertainObject
from repro.objects.validate import validate_rows

DOMAIN = 10000.0


def independent_centers(
    n: int, d: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` centers uniform over ``[0, DOMAIN]^d`` (distribution ``E``)."""
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    return rng.uniform(0.0, DOMAIN, size=(n, d))


def anticorrelated_centers(
    n: int, d: int, rng: np.random.Generator, spread: float = 0.05
) -> np.ndarray:
    """``n`` anti-correlated centers (distribution ``A``, Börzsönyi et al.).

    Points concentrate around the hyperplane ``sum_i x_i = d/2`` (in unit
    coordinates): a plane offset is drawn from a tight Normal around 0.5,
    then mass is traded between random pairs of dimensions, producing the
    characteristic negative inter-dimension correlation.
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    pts = np.empty((n, d))
    for row in range(n):
        total = float(np.clip(rng.normal(0.5, spread), 0.0, 1.0)) * d
        x = np.full(d, total / d)
        for _ in range(d):
            i, j = rng.integers(0, d, size=2)
            if i == j:
                continue
            delta = rng.uniform(-1.0, 1.0) * min(x[i], 1.0 - x[j])
            x[i] -= delta
            x[j] += delta
        pts[row] = np.clip(x, 0.0, 1.0)
    return pts * DOMAIN


def _instance_cloud(
    center: np.ndarray,
    count: int,
    edge: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Normal instance cloud clipped to the object's bounding box."""
    sigma = np.maximum(edge / 4.0, 1e-9)
    pts = rng.normal(center, sigma, size=(count, center.shape[0]))
    lo = np.maximum(center - edge / 2.0, 0.0)
    hi = np.minimum(center + edge / 2.0, DOMAIN)
    return np.clip(pts, lo, hi)


def make_objects(
    centers: np.ndarray,
    m_d: int,
    h_d: float,
    rng: np.random.Generator,
    *,
    vary_count: bool = True,
    on_invalid: str | None = None,
) -> list[UncertainObject]:
    """Instantiate multi-instance objects around the given centers.

    Args:
        centers: object centers, shape ``(n, d)``.
        m_d: average number of instances per object.
        h_d: expected MBB edge length; actual edges ~ U(0, 2 * h_d) per dim.
        rng: random generator (pass a seeded one for reproducibility).
        vary_count: draw per-object instance counts around ``m_d`` (Normal,
            sd ``m_d / 5``) as "on average" in the paper; a fixed count
            otherwise.
        on_invalid: optional quarantine policy (see
            :mod:`repro.objects.validate`) applied to the generated clouds —
            a guard against non-finite ``centers``/``h_d`` inputs poisoning
            the dataset.

    Returns:
        Objects with uniform instance probabilities (as in the experiments).
    """
    if m_d < 1:
        raise ValueError("m_d must be at least 1")
    n, d = centers.shape
    rows: list[tuple[np.ndarray, None, int]] = []
    for i in range(n):
        if vary_count:
            count = max(1, int(round(rng.normal(m_d, m_d / 5.0))))
        else:
            count = m_d
        edge = rng.uniform(0.0, 2.0 * h_d, size=d)
        rows.append((_instance_cloud(centers[i], count, edge, rng), None, i))
    if on_invalid is not None:
        kept, _report = validate_rows(rows, on_invalid=on_invalid)
        return kept
    return [UncertainObject(pts, oid=oid) for pts, _, oid in rows]


def make_query(
    center: np.ndarray,
    m_q: int,
    h_q: float,
    rng: np.random.Generator,
    *,
    oid: str | int = "Q",
) -> UncertainObject:
    """A query object with the same instance recipe as data objects."""
    d = center.shape[0]
    edge = rng.uniform(0.0, 2.0 * h_q, size=d)
    pts = _instance_cloud(np.asarray(center, dtype=float), m_q, edge, rng)
    return UncertainObject(pts, oid=oid)
