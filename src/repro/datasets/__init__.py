"""Dataset generators for the experimental study.

The paper evaluates on two real multi-instance datasets (NBA, GoWalla), three
semi-real center datasets (HOUSE, CA, USA) and synthetic anti-correlated /
independent centers.  None of the real files can be downloaded in this
offline reproduction, so :mod:`repro.datasets.semireal` generates surrogates
that preserve the properties the paper attributes to each dataset (see
DESIGN.md §6 for the substitution rationale);
:mod:`repro.datasets.synthetic` follows the paper's synthetic recipe exactly
(Börzsönyi et al. center distributions, Normal instance clouds with edge
lengths drawn from U(0, 2h), domain normalised to [0, 10000]).
"""

from repro.datasets.semireal import (
    ca_like,
    gowalla_like,
    house_like,
    nba_like,
    usa_like,
)
from repro.datasets.synthetic import (
    anticorrelated_centers,
    independent_centers,
    make_objects,
    make_query,
)
from repro.datasets.workload import query_workload

__all__ = [
    "anticorrelated_centers",
    "ca_like",
    "gowalla_like",
    "house_like",
    "independent_centers",
    "make_objects",
    "make_query",
    "nba_like",
    "query_workload",
    "usa_like",
]
