"""Exact geometric reconstructions of the paper's worked examples.

Each ``figure*`` function returns the objects and query of one running
example with instance coordinates engineered so that every dominance /
function relation the paper states holds verbatim.  They double as golden
test fixtures (``tests/test_paper_examples.py``) and as teaching material in
``examples/choosing_an_operator.py``.

The distances quoted in the paper are realised either on a line or by
circle-circle intersection around the two query instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.objects.uncertain import UncertainObject


@dataclass(frozen=True)
class ExampleScene:
    """One worked example: named objects plus the query."""

    query: UncertainObject
    objects: dict[str, UncertainObject]

    def __getitem__(self, name: str) -> UncertainObject:
        return self.objects[name]

    def object_list(self) -> list[UncertainObject]:
        """Objects in name order (stable for NNC calls)."""
        return [self.objects[k] for k in sorted(self.objects)]



def _at_distances(d1: float, d2: float, separation: float) -> list[float]:
    """Point at distance ``d1`` from (0,0) and ``d2`` from (separation, 0).

    Standard circle-circle intersection; the triangle inequality between the
    requested distances and the query separation must hold.
    """
    x = (d1 * d1 - d2 * d2 + separation * separation) / (2.0 * separation)
    y_sq = d1 * d1 - x * x
    if y_sq < -1e-9:
        raise ValueError(f"distances ({d1}, {d2}) not realisable at separation {separation}")
    return [x, float(max(y_sq, 0.0) ** 0.5)]


def figure1() -> ExampleScene:
    """Figure 1: the NN-core counterexample.

    Single-instance query; A, B, C have two instances with probabilities
    0.6 / 0.4.  A supersedes B and C, and B supersedes C (each with
    probability 0.6), so NN-core = {A}; yet C is the NN under ``max`` and B
    is the NN under the expected distance.
    """
    query = UncertainObject([[0.0]], oid="Q")
    a = UncertainObject([[1.0], [20.0]], [0.6, 0.4], oid="A")
    b = UncertainObject([[2.0], [6.0]], [0.6, 0.4], oid="B")
    c = UncertainObject([[5.0], [5.5]], [0.6, 0.4], oid="C")
    return ExampleScene(query, {"A": a, "B": b, "C": c})


def figure3() -> ExampleScene:
    """Figure 3: S-SD vs SS-SD.

    Two query instances; S-SD(A,B), S-SD(A,C) and SS-SD(A,B) hold, but
    ``not SS-SD(A,C)`` — C is always closer to q2, wins half of all
    possible worlds, and has the top NN probability (0.5 vs A's 0.375),
    so the stochastic order alone would wrongly discard it.

    Realised on a line with q1 = 0, q2 = 20; the resulting distance
    distributions are A_Q = {1, 2, 18, 19}, B_Q = {1.5, 4, 21.5, 24},
    C_Q = {1.8, 3.8, 21.8, 23.8} (each value with probability 1/4).
    """
    query = UncertainObject([[0.0], [20.0]], oid="Q")
    a = UncertainObject([[1.0], [2.0]], oid="A")
    b = UncertainObject([[-1.5], [-4.0]], oid="B")
    c = UncertainObject([[21.8], [23.8]], oid="C")
    return ExampleScene(query, {"A": a, "B": b, "C": c})


def figure4() -> ExampleScene:
    """Figure 4: SS-SD vs P-SD and the EMD counterexample.

    Distances (probability 0.5 per instance):

    ========  =====  =====
    pair       q1     q2
    ========  =====  =====
    a1         1      6
    a2         4      7
    b1         1      8
    b2         4.5    6.5
    c1         5      8
    c2         2      6.5
    ========  =====  =====

    SS-SD(A,B) holds yet EMD(A,Q) = 4 > 3.75 = EMD(B,Q) and a2 has no
    ``<=_Q`` partner in B, so ``not P-SD(A,B)``.  P-SD(A,C) holds through
    the cross match a1 -> c2, a2 -> c1 while ``not F-SD(A,C)`` (a2 is
    farther from q2 than c2).  Realised with q1 = (0,0), q2 = (7,0) by
    circle intersection.
    """
    sep = 7.0
    query = UncertainObject([[0.0, 0.0], [sep, 0.0]], oid="Q")
    a = UncertainObject(
        [_at_distances(1.0, 6.0, sep), _at_distances(4.0, 7.0, sep)], oid="A"
    )
    b = UncertainObject(
        [_at_distances(1.0, 8.0, sep), _at_distances(4.5, 6.5, sep)], oid="B"
    )
    c = UncertainObject(
        [_at_distances(5.0, 8.0, sep), _at_distances(2.0, 6.5, sep)], oid="C"
    )
    return ExampleScene(query, {"A": a, "B": b, "C": c})


def figure6() -> tuple[ExampleScene, ExampleScene]:
    """Figure 6 / Example 2: the two S-SD vs SS-SD mini scenes.

    Scene (a): single-instance A and B with A_Q = {3, 17}, B_Q = {5, 25};
    S-SD(A,B) holds but A is farther from q1 than B, so not SS-SD(A,B).

    Scene (b): the Example 1 distances — A_Q = {5, 8, 10, 23} and per-query
    distributions that make SS-SD(A,B) hold.
    """
    query_a = UncertainObject([[0.0], [20.0]], oid="Q")
    scene_a = ExampleScene(
        query_a,
        {
            "A": UncertainObject([[17.0]], oid="A"),  # distances 17, 3
            "B": UncertainObject([[-5.0]], oid="B"),  # distances 5, 25
        },
    )
    sep = 15.0
    query_b = UncertainObject([[0.0, 0.0], [sep, 0.0]], oid="Q")
    scene_b = ExampleScene(
        query_b,
        {
            # d(a1) = (5, 10), d(a2) = (8, 23)
            "A": UncertainObject([[5.0, 0.0], [-8.0, 0.0]], oid="A"),
            # d(b1) = (10, 10), d(b2) = (25, 25)
            "B": UncertainObject(
                [_at_distances(10.0, 10.0, sep), _at_distances(25.0, 25.0, sep)],
                oid="B",
            ),
        },
    )
    return scene_a, scene_b


def figure8() -> ExampleScene:
    """Figure 8 / Example 3: the P-SD match a1 -> b1, a2 -> b2.

    Distances: a1 = (5, 15), a2 = (20, 10), b1 = (10, 20), b2 = (25, 15)
    w.r.t. q1 = (0,0), q2 = (20,0).
    """
    sep = 20.0
    query = UncertainObject([[0.0, 0.0], [sep, 0.0]], oid="Q")
    a = UncertainObject(
        [_at_distances(5.0, 15.0, sep), _at_distances(20.0, 10.0, sep)], oid="A"
    )
    b = UncertainObject(
        [_at_distances(10.0, 20.0, sep), _at_distances(25.0, 15.0, sep)], oid="B"
    )
    return ExampleScene(query, {"A": a, "B": b})


def figure9() -> ExampleScene:
    """Figure 9 / Example 5: the max-flow reduction instance.

    U has instances with probabilities (0.5, 0.2, 0.3); V has (0.5, 0.5);
    the ``<=_Q`` edges are u1,u2 -> v1,v2 and u3 -> v2 only, and the flow
    of value 1 exists (match u1->v1 0.5, u2->v2 0.2, u3->v2 0.3).
    """
    query = UncertainObject([[0.0]], oid="Q")
    u = UncertainObject([[1.0], [2.0], [4.0]], [0.5, 0.2, 0.3], oid="U")
    v = UncertainObject([[3.0], [5.0]], [0.5, 0.5], oid="V")
    return ExampleScene(query, {"U": u, "V": v})


def figure15() -> ExampleScene:
    """Figure 15 / Theorem 3: with |Q| = 1, P-SD = SS-SD = S-SD ≠ F-SD.

    A = {1, 5}, B = {3, 6} against q = 0: the stochastic order holds, but
    max(A) = 5 > 3 = min(B) breaks full dominance.
    """
    query = UncertainObject([[0.0]], oid="Q")
    a = UncertainObject([[1.0], [5.0]], oid="A")
    b = UncertainObject([[3.0], [6.0]], oid="B")
    return ExampleScene(query, {"A": a, "B": b})
