"""Write-ahead log: length-prefixed, CRC32-checksummed JSON frames.

Frame format (little-endian)::

    [u32 payload_len][u32 crc32(payload)][payload JSON bytes]

A frame is appended for every acknowledged mutation *before* the mutation
is acknowledged, so the durable prefix of the log plus the newest snapshot
always reconstructs every epoch a client has seen (under ``fsync=always``;
see the fsync trade-offs below).  The reader tolerates exactly one torn
frame — a partial write at the *end* of the file, the signature of a crash
mid-append — and reports it as a :class:`TornTail` instead of raising.
Garbage that is followed by more data is not a crash artifact and raises
:class:`WalCorruptionError`.

fsync policy (shared with :class:`repro.serve.audit.AuditLog`):

* ``always``  — fsync after every append; a crash loses nothing that was
  acknowledged.  The durable default.
* ``interval`` — flush every append, fsync at most once per
  ``interval_s``; a crash can lose the tail written since the last sync.
* ``never``   — flush only; the OS decides when bytes hit the platter.

Crash injection: setting ``REPRO_WAL_KILL_AT_APPEND=<k>`` makes the k-th
append (1-based, per process) write only *half* of its frame, fsync, and
SIGKILL the process — the torn-frame fault the crashsmoke harness uses to
prove recovery flags (and never silently drops) a mid-frame tear.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import time
import zlib
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "FSYNC_MODES",
    "FsyncPolicy",
    "TornTail",
    "WalCorruptionError",
    "WriteAheadLog",
    "encode_frame",
    "read_wal",
]

FSYNC_MODES: tuple[str, ...] = ("always", "interval", "never")

_HEADER = struct.Struct("<II")
#: A length prefix beyond this is garbage, not a large record (16 MiB).
_MAX_FRAME = 16 * 1024 * 1024

_KILL_ENV = "REPRO_WAL_KILL_AT_APPEND"


class WalCorruptionError(RuntimeError):
    """Mid-file WAL damage (valid frames follow the bad bytes).

    A torn *tail* is expected after a crash and is tolerated; corruption in
    the middle of the log means the file was mangled by something other
    than a crashed append, and replaying past it could resurrect a dataset
    that never existed — recovery refuses instead.
    """


@dataclass
class TornTail:
    """Location of a truncated final record (WAL frame or audit line)."""

    kind: str  #: "wal" or "audit"
    offset: int  #: byte offset where the torn record starts
    length: int  #: bytes of the torn record present in the file
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-ready form, embedded in status and recovery reports."""
        return asdict(self)


class FsyncPolicy:
    """When to ``os.fsync`` an append-only log file."""

    def __init__(self, mode: str = "always", interval_s: float = 0.5) -> None:
        if mode not in FSYNC_MODES:
            raise ValueError(
                f"unknown fsync mode {mode!r}; expected one of {FSYNC_MODES}"
            )
        if interval_s < 0:
            raise ValueError("fsync interval must be non-negative")
        self.mode = mode
        self.interval_s = interval_s
        self._last_sync = 0.0

    def due(self) -> bool:
        """True when this append should fsync (marks the sync time)."""
        if self.mode == "always":
            return True
        if self.mode == "never":
            return False
        now = time.monotonic()
        if now - self._last_sync >= self.interval_s:
            self._last_sync = now
            return True
        return False


def encode_frame(record: dict) -> bytes:
    """One WAL frame for ``record`` (length + CRC32 + JSON payload)."""
    payload = json.dumps(record, separators=(",", ":")).encode()
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """Append-only frame log for dataset mutations.

    Args:
        path: log file, opened in append mode.
        fsync / fsync_interval_s: durability policy (see module docstring).
        metrics: optional MetricsRegistry; feeds ``repro_wal_appends_total``
            and ``repro_wal_fsync_seconds``.
        start_seq: first sequence number to hand out (recovery resumes the
            counter past everything already on disk).
        kill_hook: crash-injection override (tests); defaults to SIGKILL of
            the current process when ``REPRO_WAL_KILL_AT_APPEND`` arms it.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: str = "always",
        fsync_interval_s: float = 0.5,
        metrics: Any = None,
        start_seq: int = 0,
        kill_hook: Callable[[], None] | None = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.policy = FsyncPolicy(fsync, fsync_interval_s)
        self.metrics = metrics
        self.seq = start_seq
        self.appends = 0
        self._fh = self.path.open("ab")
        self._kill_at = int(os.environ.get(_KILL_ENV, 0) or 0)
        self._kill = kill_hook or (
            lambda: os.kill(os.getpid(), signal.SIGKILL)
        )

    def append(self, record: dict) -> int:
        """Frame, write, and (per policy) fsync one record; returns its seq.

        The record's durability is this method's postcondition: when it
        returns under ``fsync=always``, the frame is on disk, so the caller
        may acknowledge the mutation.
        """
        seq = self.seq
        record = {"seq": seq, **record}
        data = encode_frame(record)
        self.appends += 1
        if self._kill_at and self.appends == self._kill_at:
            # Injected mid-frame crash: persist exactly half the frame so
            # recovery must tolerate (and flag) a torn tail.
            self._fh.write(data[: max(1, len(data) // 2)])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._kill()
        self._fh.write(data)
        self._fh.flush()
        if self.policy.due():
            t0 = time.perf_counter()
            os.fsync(self._fh.fileno())
            if self.metrics is not None:
                self.metrics.observe(
                    "repro_wal_fsync_seconds", time.perf_counter() - t0
                )
        if self.metrics is not None:
            self.metrics.inc("repro_wal_appends_total")
        self.seq = seq + 1
        return seq

    def sync(self) -> None:
        """Force bytes to disk regardless of policy (drain path)."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def reset(self) -> None:
        """Truncate the log (a snapshot now covers every frame in it).

        Crash-safe against a kill between the snapshot rename and this
        truncate: recovery skips frames whose epoch the snapshot already
        covers, so a stale pre-truncate log merely replays to no-ops.
        """
        self._fh.close()
        self._fh = self.path.open("wb")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush, fsync, and close the log file (idempotent)."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()


def read_wal(path: str | Path) -> tuple[list[dict], TornTail | None]:
    """Parse a WAL into records, tolerating one torn frame at the tail.

    Returns:
        ``(records, torn)`` where ``torn`` locates a truncated final frame
        (None for a clean log).  A missing file reads as an empty log.

    Raises:
        WalCorruptionError: a bad frame is *followed* by more bytes — the
            damage cannot be a crashed append.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return [], None
    records: list[dict] = []
    pos = 0
    size = len(raw)
    while pos < size:
        torn = TornTail(kind="wal", offset=pos, length=size - pos)
        if size - pos < _HEADER.size:
            torn.detail = "partial frame header"
            return records, torn
        length, crc = _HEADER.unpack_from(raw, pos)
        end = pos + _HEADER.size + length
        bad = None
        if length > _MAX_FRAME:
            bad = f"frame length {length} exceeds the {_MAX_FRAME} cap"
        elif end > size:
            torn.detail = (
                f"frame needs {length} payload byte(s), "
                f"{size - pos - _HEADER.size} present"
            )
            return records, torn
        if bad is None:
            payload = raw[pos + _HEADER.size:end]
            if zlib.crc32(payload) != crc:
                bad = "payload CRC mismatch"
            else:
                try:
                    records.append(json.loads(payload))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    bad = "payload is not valid JSON"
        if bad is not None:
            if end >= size:
                torn.detail = bad
                return records, torn
            raise WalCorruptionError(
                f"{path}: {bad} at offset {pos} with "
                f"{size - end} byte(s) following — mid-file corruption"
            )
        pos = end
    return records, None
