"""Per-query explain: the Figure-16 cost breakdown for one live request.

Figure 16 of the paper attributes search cost to filter stages (MBR
tests, dominance checks, CDF sweeps, flow augmentations) — but averaged
over a workload.  ``"explain": true`` on a ``/query`` request produces
the same attribution for *that one query*, assembled entirely from the
span/counter machinery the serving layer already runs:

* every traced span records the **inclusive** counter deltas of its
  subtree (:class:`repro.obs.tracer._ActiveSpan` snapshots the context's
  counter bag around the span);
* spans complete in postorder per tracer buffer, so a single pass with a
  per-depth pending stack converts inclusive deltas to **exclusive**
  ones — each stage is charged only for work done in its own frames;
* summing exclusive stage counters, the refine-phase delta, and an
  ``untracked`` residual reconciles *exactly* with the query's
  :class:`repro.core.counters.Counters` bag.  The residual is reported,
  never hidden: a large ``untracked`` row means an uninstrumented code
  path, which is itself a finding.

An explain request is forcibly sampled (tracing end to end, router hop
included via ``X-Sampled``), so the breakdown covers every shard on
every backend.  The router merges per-node explains into one fleet view
with per-node timings and the hedge outcome.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = ["build_explain", "merge_explains", "stage_rows"]


def _add(into: dict[str, int], deltas: Mapping[str, int]) -> None:
    for key, value in deltas.items():
        if value:
            into[key] = into.get(key, 0) + value


def _nonzero(deltas: Mapping[str, int]) -> dict[str, int]:
    return {k: v for k, v in deltas.items() if v}


def stage_rows(span_buffers: Iterable[Sequence[Any]]) -> list[dict]:
    """Aggregate span buffers into per-stage rows with exclusive costs.

    Each buffer must be in completion (postorder) order — the native
    order of :meth:`repro.obs.tracer.Tracer.spans` and of the shard
    buffers reassembled by ``RequestContext.add_shard_spans``.  A span's
    recorded counter deltas are inclusive of its children; the per-depth
    pending stack subtracts the children's share so every count lands in
    exactly one stage.  Spans recorded without counters (``shard-search``
    and the server's ``query`` envelope) charge nothing themselves and
    pass their children's inclusive totals upward.

    Returns one row per span name, sorted by exclusive time descending:
    ``{stage, count, total_ms, exclusive_ms, counters}``.
    """
    rows: dict[str, dict] = {}
    for buffer in span_buffers:
        # depth -> [accumulated child inclusive deltas, child seconds]
        pending: dict[int, tuple[dict[str, int], float]] = {}
        for span in buffer:
            depth = span.depth
            child_deltas, child_s = pending.pop(depth + 1, ({}, 0.0))
            own = dict(span.counter_deltas or {})
            if own:
                exclusive = {
                    k: v - child_deltas.get(k, 0) for k, v in own.items()
                }
                inclusive = own
            else:
                exclusive = {}
                inclusive = child_deltas
            acc_deltas, acc_s = pending.get(depth, ({}, 0.0))
            _add(acc_deltas, inclusive)
            pending[depth] = (acc_deltas, acc_s + span.duration)
            row = rows.setdefault(
                span.name,
                {
                    "stage": span.name,
                    "count": 0,
                    "total_ms": 0.0,
                    "exclusive_ms": 0.0,
                    "counters": {},
                },
            )
            row["count"] += 1
            row["total_ms"] += span.duration * 1000.0
            row["exclusive_ms"] += max(0.0, span.duration - child_s) * 1000.0
            _add(row["counters"], exclusive)
    out = sorted(rows.values(), key=lambda r: -r["exclusive_ms"])
    for row in out:
        row["counters"] = _nonzero(row["counters"])
    return out


def build_explain(
    result: Any,
    *,
    operator: str,
    k: int,
    request: Any = None,
    counters: Mapping[str, int] | None = None,
) -> dict:
    """Node-side explain body for one :class:`ShardedResult`.

    ``counters`` overrides the reconciliation target (the router passes
    its fleet-merged bag); by default it is ``result.counters.snapshot()``
    — the exact bag the Prometheus bridge exports, so the identity

        sum(stage counters) + refine + untracked == bag

    holds field for field by construction, with ``untracked`` as the
    explicit (reported) residual of uninstrumented code paths.
    """
    buffers: list[Sequence[Any]] = []
    if request is not None:
        tracer = getattr(request, "tracer", None)
        spans = tracer.spans() if tracer is not None else []
        if spans:
            buffers.append(spans)
        for _shard, shard_buffer in getattr(request, "shard_spans", ()):
            buffers.append(shard_buffer)
    stages = stage_rows(buffers)
    bag = _nonzero(
        dict(counters)
        if counters is not None
        else result.counters.snapshot()
    )
    refine_counters = _nonzero(getattr(result, "refine_counters", {}) or {})
    tracked: dict[str, int] = {}
    for row in stages:
        _add(tracked, row["counters"])
    _add(tracked, refine_counters)
    untracked = _nonzero(
        {key: bag.get(key, 0) - tracked.get(key, 0) for key in bag}
    )
    degradation = getattr(result, "degradation", None)
    return {
        "operator": operator,
        "k": k,
        "backend": result.backend,
        "elapsed_ms": result.elapsed * 1000.0,
        "candidates": len(result.candidates),
        "sampled": bool(getattr(request, "sampled", False)),
        "stages": stages,
        "counters": bag,
        "refine": {
            "checks": result.refine_checks,
            "counters": refine_counters,
        },
        "untracked": untracked,
        "per_shard": list(getattr(result, "per_shard", ()) or ()),
        "fanout": result.fanout,
        "degraded": degradation is not None,
    }


def merge_explains(
    fetches: Sequence[Mapping[str, Any]],
    *,
    refine_checks: int,
    refine_counters: Mapping[str, int],
    hedged: bool,
) -> dict:
    """Router-side merge of per-node explain sections into one fleet view.

    Args:
        fetches: one entry per gathered shard read:
            ``{shard, node, hedged, explain}`` (``explain`` may be None
            when a node predates the feature — the merge degrades to
            timings only).
        refine_checks: the router's own cross-node refine checks.
        refine_counters: counter deltas of the router's refine phase.
        hedged: whether any shard read was hedged.

    Stage rows are summed across nodes; the merged ``counters`` bag is
    the sum of every node's bag plus the router's refine deltas, so the
    fleet-level reconciliation identity is inherited from the per-node
    ones.  Per-node timings (and which fetches were hedged) land in the
    ``nodes`` section.
    """
    stages: dict[str, dict] = {}
    counters: dict[str, int] = {}
    untracked: dict[str, int] = {}
    node_refine_checks = 0
    nodes: dict[str, dict] = {}
    for fetch in fetches:
        node_id = fetch.get("node")
        entry = nodes.setdefault(
            node_id, {"node": node_id, "fetches": [], "elapsed_ms": 0.0}
        )
        explain = fetch.get("explain")
        shard_row: dict[str, Any] = {
            "shard": fetch.get("shard"),
            "hedged": bool(fetch.get("hedged")),
        }
        if explain:
            shard_row["elapsed_ms"] = explain.get("elapsed_ms")
            entry["elapsed_ms"] += explain.get("elapsed_ms") or 0.0
            _add(counters, explain.get("counters") or {})
            _add(untracked, explain.get("untracked") or {})
            refine = explain.get("refine") or {}
            node_refine_checks += refine.get("checks") or 0
            for row in explain.get("stages") or ():
                merged = stages.setdefault(
                    row["stage"],
                    {
                        "stage": row["stage"],
                        "count": 0,
                        "total_ms": 0.0,
                        "exclusive_ms": 0.0,
                        "counters": {},
                    },
                )
                merged["count"] += row.get("count", 0)
                merged["total_ms"] += row.get("total_ms", 0.0)
                merged["exclusive_ms"] += row.get("exclusive_ms", 0.0)
                _add(merged["counters"], row.get("counters") or {})
            node_refine = refine.get("counters") or {}
            if node_refine:
                merged = stages.setdefault(
                    "node-refine",
                    {
                        "stage": "node-refine",
                        "count": 0,
                        "total_ms": 0.0,
                        "exclusive_ms": 0.0,
                        "counters": {},
                    },
                )
                merged["count"] += 1
                _add(merged["counters"], node_refine)
        entry["fetches"].append(shard_row)
    router_refine = _nonzero(dict(refine_counters))
    _add(counters, router_refine)
    return {
        "stages": sorted(stages.values(), key=lambda r: -r["exclusive_ms"]),
        "counters": _nonzero(counters),
        "refine": {
            "checks": refine_checks,
            "counters": router_refine,
            "node_checks": node_refine_checks,
        },
        "untracked": _nonzero(untracked),
        "nodes": {nid: nodes[nid] for nid in sorted(nodes)},
        "hedged": hedged,
    }
