"""Kill-a-replica smoke for the router tier (``repro.serve.router``).

Run as ``python -m repro.serve.routersmoke`` (CI job).  The scenario:

1. generates a dataset and starts three real ``repro serve`` node
   processes (``--partitioner hash --shards S --node-id nK``) plus a
   ``repro router`` subprocess fronting them with replication 2, an
   audit log, and end-to-end trace sampling,
2. drives mixed read/write traffic through the router over HTTP,
3. SIGKILLs one node mid-stream and keeps the traffic flowing — every
   read must keep answering 200 (hedging + breaker failover; writes may
   go partial, which is reported but legal with a surviving replica),
4. drains the router and the surviving nodes via SIGTERM,
5. runs ``repro replay --partitioner hash`` over the *router's* audit
   log — exit 0 proves the distributed answers were bit-identical to a
   single-process rebuild of the same mutation history,
6. checks the merged trace directory is non-empty (fleet-wide traces
   survived the kill).

Exit code 0 = the contract held; 1 = details on stderr, artifacts kept.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.objects.io import save_objects
from repro.objects.uncertain import UncertainObject

_PORT_RE = re.compile(r"http://[\d.]+:(\d+)")
OPERATORS = ("SSD", "SSSD", "PSD", "FSD", "F+SD")


class SmokeFailure(AssertionError):
    """The router smoke violated its availability/exactness contract."""


def _request(port: int, method: str, path: str, payload=None, timeout=15.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        if resp.getheader("Content-Type", "").startswith("application/json"):
            return resp.status, json.loads(data)
        return resp.status, data.decode()
    finally:
        conn.close()


class _Proc:
    """A ``repro`` subprocess with stdout-scraped port discovery."""

    def __init__(self, args: list[str]) -> None:
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=dict(os.environ),
        )
        self.lines: list[str] = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def wait_port(self, timeout: float = 60.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                m = _PORT_RE.search(line)
                if m:
                    return int(m.group(1))
            if self.proc.poll() is not None:
                raise SmokeFailure(
                    f"process exited rc={self.proc.returncode} before "
                    f"binding; stdout: {self.lines!r}"
                )
            time.sleep(0.02)
        raise SmokeFailure("process did not report its port in time")

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=30.0)

    def terminate(self, timeout: float = 60.0) -> int:
        if self.proc.poll() is not None:
            return self.proc.returncode
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


class _Traffic:
    """Mixed router traffic on a thread, with a read-failure ledger."""

    def __init__(self, port: int, rng: random.Random) -> None:
        self.port = port
        self.rng = rng
        self.stop = threading.Event()
        self.reads = 0
        self.read_failures: list[str] = []
        self.writes = 0
        self.partial_writes = 0
        self.write_failures = 0
        self.inserted: list[str] = []
        self._lock = threading.Lock()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self.stop.is_set():
            roll = self.rng.random()
            try:
                if roll < 0.6:
                    self._read()
                elif roll < 0.85:
                    self._insert()
                else:
                    self._delete()
            except (ConnectionError, OSError, http.client.HTTPException,
                    json.JSONDecodeError) as exc:
                # The router itself must stay reachable throughout: any
                # transport failure talking to it is a read failure even
                # if the request was a write (the ledger is what fails
                # the smoke, and a vanished router fails it loudly).
                self.read_failures.append(f"router transport: {exc!r}")
            time.sleep(0.002)

    def _read(self) -> None:
        pts = [[self.rng.uniform(0, 10_000) for _ in range(2)]
               for _ in range(3)]
        status, body = _request(self.port, "POST", "/query", {
            "points": pts,
            "operator": self.rng.choice(OPERATORS),
            "k": self.rng.randint(1, 3),
            "cache": False,
        })
        self.reads += 1
        if status != 200:
            self.read_failures.append(f"query -> {status}: {body}")

    def _insert(self) -> None:
        pts = [[self.rng.uniform(0, 10_000) for _ in range(2)]
               for _ in range(3)]
        status, body = _request(self.port, "POST", "/insert",
                                {"points": pts})
        self.writes += 1
        if status == 200:
            with self._lock:
                self.inserted.append(body["oid"])
            if body.get("partial"):
                self.partial_writes += 1
        elif status == 503:
            self.write_failures += 1
        else:
            self.read_failures.append(f"insert -> {status}: {body}")

    def _delete(self) -> None:
        with self._lock:
            oid = self.inserted.pop() if self.inserted else None
        if oid is None:
            return
        status, body = _request(self.port, "POST", "/delete", {"oid": oid})
        self.writes += 1
        if status == 200:
            if body.get("partial"):
                self.partial_writes += 1
        elif status == 503:
            self.write_failures += 1
        elif status != 404:
            self.read_failures.append(f"delete -> {status}: {body}")


def run_smoke(workdir: Path, *, seed: int, shards: int, n_objects: int,
              kill_after_s: float, run_after_kill_s: float) -> dict:
    """One fleet lifecycle; returns a summary dict, raises SmokeFailure."""
    workdir.mkdir(parents=True, exist_ok=True)
    dataset = workdir / "dataset.npz"
    audit = workdir / "router-audit.jsonl"
    trace_dir = workdir / "traces"
    nprng = np.random.default_rng(seed)
    objects = [
        UncertainObject(nprng.uniform(0, 10_000, size=(4, 2)), None, oid=i)
        for i in range(n_objects)
    ]
    save_objects(dataset, objects)

    node_ids = ("n1", "n2", "n3")
    nodes: dict[str, _Proc] = {}
    router: _Proc | None = None
    rng = random.Random(seed)
    try:
        for nid in node_ids:
            nodes[nid] = _Proc([
                "serve", "--dataset", str(dataset), "--port", "0",
                "--shards", str(shards), "--partitioner", "hash",
                "--backend", "serial", "--node-id", nid,
                "--compact-threshold", "1.0",
            ])
        ports = {nid: proc.wait_port() for nid, proc in nodes.items()}

        router_args = ["router", "--shards", str(shards),
                       "--replication", "2", "--port", "0",
                       "--hedge-ms", "50", "--health-interval-s", "0.5",
                       "--node-timeout-s", "5",
                       "--sample", "0.25", "--trace-dir", str(trace_dir),
                       "--audit-log", str(audit)]
        for nid, port in ports.items():
            router_args += ["--node", f"{nid}=http://127.0.0.1:{port}"]
        router = _Proc(router_args)
        router_port = router.wait_port()

        status, body = _request(router_port, "GET", "/healthz")
        if status != 200 or body.get("role") != "router":
            raise SmokeFailure(f"router /healthz -> {status}: {body}")

        traffic = _Traffic(router_port, rng)
        traffic.thread.start()
        time.sleep(kill_after_s)

        victim = rng.choice(node_ids)
        nodes[victim].kill()
        time.sleep(run_after_kill_s)

        traffic.stop.set()
        traffic.thread.join(timeout=60.0)
        if traffic.thread.is_alive():
            raise SmokeFailure("traffic thread failed to stop")
        if traffic.read_failures:
            sample = "\n  ".join(traffic.read_failures[:10])
            raise SmokeFailure(
                f"{len(traffic.read_failures)} failed request(s) with a "
                f"surviving replica for every shard:\n  {sample}"
            )
        if traffic.reads < 20:
            raise SmokeFailure(
                f"only {traffic.reads} reads completed — smoke too short "
                "to mean anything"
            )

        status, health = _request(router_port, "GET", "/healthz")
        if status != 200:
            raise SmokeFailure(f"post-kill /healthz -> {status}")
        dead_breaker = health["nodes"][victim]["breaker"]

        rc = router.terminate()
        if rc != 0:
            raise SmokeFailure(f"router drain exited rc={rc}")
        for nid, proc in nodes.items():
            if nid == victim:
                continue
            rc = proc.terminate()
            if rc != 0:
                raise SmokeFailure(f"node {nid} drain exited rc={rc}")
    finally:
        if router is not None:
            router.kill()
        for proc in nodes.values():
            proc.kill()

    # ---- the router's black box must replay bit-for-bit --------------- #
    replay = subprocess.run(
        [sys.executable, "-m", "repro", "replay", str(audit),
         "--dataset", str(dataset), "--shards", str(shards),
         "--partitioner", "hash"],
        capture_output=True, text=True, timeout=600.0,
    )
    if replay.returncode != 0:
        raise SmokeFailure(
            f"repro replay exited {replay.returncode}:\n"
            f"{replay.stdout}\n{replay.stderr}"
        )
    traces = sorted(trace_dir.glob("trace-*.json")) if trace_dir.is_dir() \
        else []
    if not traces:
        raise SmokeFailure("no merged traces were written")
    return {
        "reads": traffic.reads,
        "writes": traffic.writes,
        "partial_writes": traffic.partial_writes,
        "retryable_write_failures": traffic.write_failures,
        "victim": victim,
        "victim_breaker": dead_breaker,
        "traces": len(traces),
        "replay": replay.stdout.strip().splitlines()[-1]
        if replay.stdout.strip() else "",
    }


def main(argv=None) -> int:
    """Run the kill-a-replica smoke; exit 0 iff the contract held."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--n", type=int, default=80, dest="n_objects")
    parser.add_argument("--kill-after-s", type=float, default=3.0,
                        help="traffic warm-up before the SIGKILL")
    parser.add_argument("--run-after-kill-s", type=float, default=6.0,
                        help="traffic kept flowing against the degraded "
                        "fleet (longer than the breaker cooldown)")
    parser.add_argument("--workdir", metavar="DIR",
                        help="artifacts land here (kept on failure); "
                        "default: a temp dir, removed on success")
    args = parser.parse_args(argv)

    base = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="routersmoke-")
    )
    try:
        summary = run_smoke(
            base, seed=args.seed, shards=args.shards,
            n_objects=args.n_objects, kill_after_s=args.kill_after_s,
            run_after_kill_s=args.run_after_kill_s,
        )
    except SmokeFailure as exc:
        print(f"FAIL {exc}", file=sys.stderr)
        print(f"     artifacts kept in {base}", file=sys.stderr)
        return 1
    print(
        f"routersmoke: ok  reads={summary['reads']} "
        f"writes={summary['writes']} "
        f"(partial={summary['partial_writes']}, "
        f"retryable-failed={summary['retryable_write_failures']}) "
        f"victim={summary['victim']} "
        f"breaker={summary['victim_breaker']} "
        f"traces={summary['traces']}"
    )
    if summary["replay"]:
        print(f"routersmoke: {summary['replay']}")
    if not args.workdir:
        shutil.rmtree(base, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
