"""Sharded scatter-gather NNC search, exact by the Theorem-3 argument.

The object set is partitioned into K shards, Algorithm 1 runs per shard,
and a cross-shard refiner eliminates survivors dominated from other shards.
Correctness rests on two facts (DESIGN.md §13):

1. **Per-shard supersets.** A shard's k-NNC is computed against fewer
   objects, so every globally surviving object survives its own shard:
   the union of shard answers is a superset of the global answer.
2. **Skyband counting equivalence.** If ``u`` dominates ``v`` but ``u`` is
   not in its shard's k-skyband, then at least ``k`` shard members dominate
   ``u`` — and by transitivity (all five operators are strict partial
   orders) they dominate ``v`` too.  Counting dominators of ``v`` among
   *survivors only*, capped at ``k``, therefore reaches ``k`` exactly when
   the true global count does.  The refiner never needs eliminated objects.

Backends:

* ``serial`` — cascade: shards ordered by min-distance to the query; each
  shard search is *seeded* with the survivors found so far, so earlier
  survivors prune later shards and per-survivor counts already cover all
  earlier shards.  The refiner then only checks later-shard survivors.
* ``thread`` — independent shard searches on a thread pool (helps when the
  per-shard work releases the GIL inside NumPy kernels).
* ``process`` — fork-based ``multiprocessing`` pool; workers inherit the
  shard indexes by fork, results travel back as indices.  The pool is
  invalidated on any mutation and lazily re-forked.
* ``pool`` — persistent spawn-safe worker-process pool over shared-memory
  shard snapshots (:mod:`repro.serve.shm`).  Workers attach zero-copy
  NumPy views of instance matrices, probability vectors and flattened
  R-tree arrays; mutations publish a new epoch (append-then-swap) instead
  of tearing the pool down, and per-query messages carry only
  ``(query, operator params, epoch, request wire form)``.  A dead worker
  surfaces as :class:`ShardBackendError` (503 at the HTTP layer), never a
  hang.
* ``auto`` — ``serial`` on one core or one shard, else ``process`` where
  ``fork`` exists, else ``thread``.

The refine filter ``min(U_Q) <= min(V_Q) + tol`` is sound for all five
operators: dominance of ``v`` by ``u`` requires ``u`` to be at least as
close in the best case (Definition 5 / Theorem 4 lower-bound corner), so a
strictly farther minimum distance can never dominate.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.core.nnc import NNCSearch
from repro.core.operators import OperatorKind, _BaseOperator, make_operator
from repro.objects.uncertain import UncertainObject
from repro.obs.log import log_event
from repro.obs.metrics import query_metrics_from_counters
from repro.obs.request import RequestContext, bind
from repro.obs.tracer import SpanRecord, Tracer
from repro.resilience.budget import Budget, BudgetExhausted, DegradationReport
from repro.serve.placement import shard_of
from repro.serve.shm import (
    SegmentStore,
    pool_profile_snapshot,
    pool_run_one,
    pool_worker_init,
)

__all__ = [
    "BACKENDS",
    "PARTITIONERS",
    "FANOUT_BUCKETS",
    "ShardBackendError",
    "ShardedResult",
    "ShardedSearch",
    "partition_centroid",
    "partition_hash",
    "partition_round_robin",
    "refine_survivors",
]


class ShardBackendError(RuntimeError):
    """A parallel backend failed mid-query (e.g. a pool worker died).

    The request cannot be answered by this backend right now, but the
    service itself is healthy — the serving layer maps this to HTTP 503 so
    clients retry, and the pool backend rebuilds its workers on the next
    query (published shared-memory segments survive a worker loss).
    """

#: Safety margin for the refine filter (exact distances; the margin only
#: admits a few extra candidate pairs, never drops one).
_REFINE_TOL = 1e-7

BACKENDS: tuple[str, ...] = ("auto", "serial", "thread", "process", "pool")

FANOUT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)
"""Histogram buckets for the per-query shard fan-out metric."""


# --------------------------------------------------------------------- #
# Partitioners
# --------------------------------------------------------------------- #

def partition_round_robin(
    objects: Sequence[UncertainObject], shards: int
) -> list[list[UncertainObject]]:
    """Deal objects round-robin into ``shards`` lists (load-balanced)."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return [list(objects[i::shards]) for i in range(shards)]


def partition_centroid(
    objects: Sequence[UncertainObject],
    shards: int,
    *,
    iterations: int = 8,
    seed: int = 0,
) -> list[list[UncertainObject]]:
    """Spatial partition: k-means over MBR centers (deterministic).

    Farthest-point initialisation from a seeded pick, a few Lloyd rounds,
    then empty shards (possible with degenerate geometry) are repaired by
    stealing the farthest member of the largest shard.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    objects = list(objects)
    if shards == 1 or len(objects) <= shards:
        # Degenerate: round-robin gives the same one-object-per-shard split.
        return partition_round_robin(objects, shards)
    centers = np.array(
        [(o.mbr.lo + o.mbr.hi) / 2.0 for o in objects], dtype=float
    )
    rng = np.random.default_rng(seed)
    picked = [int(rng.integers(len(objects)))]
    best = ((centers - centers[picked[0]]) ** 2).sum(axis=1)
    for _ in range(shards - 1):
        nxt = int(np.argmax(best))
        picked.append(nxt)
        best = np.minimum(best, ((centers - centers[nxt]) ** 2).sum(axis=1))
    cents = centers[picked].copy()
    assign = np.zeros(len(objects), dtype=int)
    for _ in range(max(1, iterations)):
        d2 = ((centers[:, None, :] - cents[None, :, :]) ** 2).sum(axis=2)
        assign = d2.argmin(axis=1)
        for j in range(shards):
            mask = assign == j
            if mask.any():
                cents[j] = centers[mask].mean(axis=0)
    while True:
        sizes = np.bincount(assign, minlength=shards)
        empties = np.flatnonzero(sizes == 0)
        if empties.size == 0:
            break
        donor = int(sizes.argmax())
        members = np.flatnonzero(assign == donor)
        far = members[
            int(np.argmax(((centers[members] - cents[donor]) ** 2).sum(axis=1)))
        ]
        assign[far] = int(empties[0])
    return [
        [objects[i] for i in np.flatnonzero(assign == j)] for j in range(shards)
    ]


def partition_hash(
    objects: Sequence[UncertainObject], shards: int
) -> list[list[UncertainObject]]:
    """Partition by the *global* content hash of each oid.

    Shard index ``j`` holds exactly the objects with
    :func:`repro.serve.placement.shard_of` ``== j`` — the same function
    the router tier uses to place logical shards on nodes, so any server
    loaded with any subset of the data agrees with every other party
    about which shard each object belongs to.  Requires every object to
    carry an oid (the serving layer assigns them before partitioning).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    parts: list[list[UncertainObject]] = [[] for _ in range(shards)]
    for obj in objects:
        if obj.oid is None:
            raise ValueError("hash partitioner requires every object "
                             "to carry an oid")
        parts[shard_of(obj.oid, shards)].append(obj)
    return parts


PARTITIONERS: dict[str, Callable[..., list[list[UncertainObject]]]] = {
    "round-robin": partition_round_robin,
    "centroid": partition_centroid,
    "hash": partition_hash,
}


def _mbr_min_dist(q_lo, q_hi, lo, hi) -> float:
    gap = np.maximum(0.0, np.maximum(lo - q_hi, q_lo - hi))
    return float(np.sqrt((gap * gap).sum()))


# --------------------------------------------------------------------- #
# Result
# --------------------------------------------------------------------- #

@dataclass
class ShardedResult:
    """Outcome of a scatter-gather NNC search.

    ``candidates`` are sorted by exact min-distance (ties by shard order)
    and, absent degradation, are exactly the single-process answer set.
    """

    candidates: list[UncertainObject] = field(default_factory=list)
    #: Final dominator counts after cross-shard refinement, capped at ``k``.
    dominator_counts: list[int] = field(default_factory=list)
    elapsed: float = 0.0
    shards: int = 0
    backend: str = "serial"
    #: One dict per shard: ``objects``, ``survivors``, ``elapsed``,
    #: ``degraded``.
    per_shard: list[dict] = field(default_factory=list)
    #: Cross-shard dominance checks spent by the refiner.
    refine_checks: int = 0
    #: Shards that contributed at least one pre-refine survivor.
    fanout: int = 0
    degradation: DegradationReport | None = None
    counters: Counters = field(default_factory=Counters)
    #: Counter deltas of the cross-shard refine phase alone (already part
    #: of ``counters``); the explain breakdown reports them as their own
    #: stage so per-stage totals reconcile with the bag.
    refine_counters: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.candidates)

    @property
    def exact(self) -> bool:
        """Whether every shard answered exactly (no degradation)."""
        return self.degradation is None

    def oids(self) -> list:
        """Candidate object ids in final (min-distance) order."""
        return [c.oid for c in self.candidates]


# --------------------------------------------------------------------- #
# Fork-pool worker plumbing
# --------------------------------------------------------------------- #

#: Shard searches inherited by fork; set immediately before the pool is
#: created so workers snapshot exactly the current dataset version.
_FORK_SEARCHES: list[NNCSearch] | None = None


def _fork_run_one(task: tuple) -> tuple:
    """Run one shard search in a pool worker; results travel as indices.

    ``wire`` (when present) is a sampled request's child context in
    :meth:`repro.obs.request.RequestContext.to_wire` form; the worker
    rebuilds it, records shard spans against the parent's ``trace_epoch``
    (``perf_counter`` / ``CLOCK_MONOTONIC`` is system-wide across fork),
    and ships the span buffer back as plain dicts for reassembly.
    """
    shard_idx, query, operator, k, metric, kernels, limits, wire = task
    search = _FORK_SEARCHES[shard_idx]
    budget = Budget(**limits) if limits is not None else None
    spans: list[dict] | None = None
    if wire is not None:
        child = RequestContext.from_wire(wire)
        tracer = Tracer(epoch=child.trace_epoch)
        ctx = QueryContext(
            query, metric=metric, kernels=kernels, budget=budget, tracer=tracer
        )
        with bind(child):
            with tracer.span(
                "shard-search",
                shard=shard_idx,
                span_id=child.span_id,
                parent_span_id=child.parent_span_id,
            ):
                result = search.run(query, operator, k=k, ctx=ctx)
        spans = [s.to_dict() for s in tracer.spans()]
    else:
        ctx = QueryContext(query, metric=metric, kernels=kernels, budget=budget)
        result = search.run(query, operator, k=k, ctx=ctx)
    index_of = {id(o): i for i, o in enumerate(search.objects)}
    idxs = [index_of[id(c)] for c in result.candidates]
    report = (
        result.degradation.to_dict() if result.degradation is not None else None
    )
    return (
        idxs,
        list(result.dominator_counts),
        result.elapsed,
        report,
        result.counters.snapshot(),
        spans,
    )


def _counters_from_snapshot(snap: dict) -> Counters:
    c = Counters()
    names = {f.name for f in c.__dataclass_fields__.values()} - {"extra"}
    for key, value in snap.items():
        if key in names:
            setattr(c, key, value)
        elif key.startswith("extra."):
            c.extra[key[len("extra."):]] = value
        else:
            c.extra[key] = value
    return c


def _report_from_dict(d: dict) -> DegradationReport:
    return DegradationReport(
        reason=d["reason"],
        site=d["site"],
        phase=d["phase"],
        unresolved_checks=d["unresolved_checks"],
        conservative_accepts=d["conservative_accepts"],
        elapsed_ms=d["elapsed_ms"],
        budget=d.get("budget"),
        spent=dict(d.get("spent") or {}),
        events=[tuple(e) for e in d.get("events") or []],
    )


# --------------------------------------------------------------------- #
# ShardedSearch
# --------------------------------------------------------------------- #

class ShardedSearch:
    """K-shard scatter-gather NNC search with a cross-shard refiner.

    Args:
        objects: the dataset (partitioned once at construction).
        shards: number of shards K.
        partitioner: one of :data:`PARTITIONERS`.
        backend: one of :data:`BACKENDS` (``auto`` picks per the machine).
        global_fanout: R-tree fan-out per shard.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; feeds
            the ``repro_serve_shard_fanout`` histogram per query.
        workers: worker-process count for the ``pool`` backend (default:
            ``min(shards, cpu_count)``, at least 2).
        start_method: multiprocessing start method for the ``pool`` backend
            (default ``spawn`` — workers share *nothing* by inheritance;
            ``fork``/``forkserver`` are accepted where the platform has
            them, e.g. to cut pool boot time in tests).
        profile_hz: sampling rate for per-worker profilers in the ``pool``
            backend (each persistent worker starts its own
            :class:`repro.obs.profile.SamplingProfiler`; snapshots are
            collected by :meth:`worker_profiles`); 0 disables.
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        *,
        shards: int = 1,
        partitioner: str = "round-robin",
        backend: str = "auto",
        global_fanout: int = 16,
        metrics: Any = None,
        workers: int | None = None,
        start_method: str | None = None,
        profile_hz: float = 0.0,
    ) -> None:
        if partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {partitioner!r}; "
                f"expected one of {tuple(PARTITIONERS)}"
            )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.partitioner = partitioner
        self.requested_backend = backend
        self.metrics = metrics
        self._fanout = global_fanout
        self.workers = workers
        self.start_method = start_method
        self.profile_hz = float(profile_hz)
        parts = PARTITIONERS[partitioner](list(objects), shards)
        self.searches = [NNCSearch(p, global_fanout) for p in parts]
        #: Shard centroids (MBR centers) for partitioner-aware inserts;
        #: empty shards get +inf so they never attract until refilled.
        self._centroids = self._compute_centroids()
        self._pool = None
        self._executor: ThreadPoolExecutor | None = None
        # Pool-backend state: the segment store owns the shared-memory
        # snapshots; the executor holds the persistent spawn-safe workers.
        self._store = None
        self._pool_exec: ProcessPoolExecutor | None = None
        self._pool_epoch = 0
        #: Serialises pool bring-up/teardown: concurrent reader threads may
        #: race into the first pool query (mutations are externally
        #: serialised by the DatasetManager write lock).
        self._pool_lock = threading.Lock()
        #: Per shard: retained segment names, oldest..newest (last = live).
        self._shard_segments: list[list[str]] = []
        #: Segment name -> parent-side snapshot object list, in the order
        #: workers index into (kept as long as the segment is retained).
        self._snapshot_objects: dict[str, list[UncertainObject]] = {}

    @classmethod
    def from_searches(
        cls,
        searches: Sequence[NNCSearch],
        *,
        partitioner: str = "round-robin",
        backend: str = "auto",
        global_fanout: int = 16,
        metrics: Any = None,
        workers: int | None = None,
        start_method: str | None = None,
        profile_hz: float = 0.0,
    ) -> "ShardedSearch":
        """Adopt pre-built per-shard searches without re-partitioning.

        The durable tier's warm restart rebuilds each shard straight from
        a snapshot (:func:`repro.serve.shm.unpack_shard`) — skipping
        validation, partitioning, and the STR bulk loads is exactly the
        warm-over-cold speedup.  Shard order is preserved, so the oid
        registry and partitioner-aware insert routing keep working.
        """
        inst = cls(
            [],
            shards=max(1, len(searches)),
            partitioner=partitioner,
            backend=backend,
            global_fanout=global_fanout,
            metrics=metrics,
            workers=workers,
            start_method=start_method,
            profile_hz=profile_hz,
        )
        if searches:
            inst.searches = list(searches)
            inst._centroids = inst._compute_centroids()
        return inst

    # ------------------------------ topology --------------------------- #

    @property
    def shards(self) -> int:
        return len(self.searches)

    @property
    def backend(self) -> str:
        """The backend actually used (``auto`` resolved per machine)."""
        backend = self.requested_backend
        if backend != "auto":
            return backend
        if self.shards <= 1 or (os.cpu_count() or 1) <= 1:
            return "serial"
        if "fork" in multiprocessing.get_all_start_methods():
            return "process"
        return "thread"

    def shard_sizes(self) -> list[int]:
        """Live (unmasked) object count per shard."""
        return [len(s.objects) - s.masked_count for s in self.searches]

    @property
    def size(self) -> int:
        """Total live objects across shards."""
        return sum(self.shard_sizes())

    def live_objects(self) -> list[UncertainObject]:
        """All live objects, shard-major order."""
        out: list[UncertainObject] = []
        for s in self.searches:
            out.extend(s.live_objects())
        return out

    def _compute_centroids(self) -> np.ndarray | None:
        if self.partitioner != "centroid":
            return None
        dims = next(
            (s.objects[0].dim for s in self.searches if s.objects), None
        )
        if dims is None:
            return None
        cents = np.full((len(self.searches), dims), np.inf)
        for j, s in enumerate(self.searches):
            if s.objects:
                cents[j] = np.mean(
                    [(o.mbr.lo + o.mbr.hi) / 2.0 for o in s.objects], axis=0
                )
        return cents

    # ------------------------------ mutation --------------------------- #

    def choose_shard(self, obj: UncertainObject) -> int:
        """Partitioner-consistent shard for a new object.

        Hash partitioning is positional by oid (any party recomputes it);
        centroid partitioning sends the object to the nearest shard
        centroid; round-robin keeps shards balanced (smallest live shard).
        """
        if self.partitioner == "hash":
            return shard_of(obj.oid, self.shards)
        if self._centroids is not None:
            center = (obj.mbr.lo + obj.mbr.hi) / 2.0
            return int(
                np.argmin(((self._centroids - center) ** 2).sum(axis=1))
            )
        sizes = self.shard_sizes()
        return int(np.argmin(sizes))

    def insert(self, obj: UncertainObject, shard: int | None = None) -> int:
        """Insert ``obj`` (incremental R-tree insert); returns its shard."""
        if shard is None:
            shard = self.choose_shard(obj)
        self.searches[shard].add_object(obj)
        if self._centroids is not None and not np.isfinite(
            self._centroids[shard]
        ).all():
            self._centroids[shard] = (obj.mbr.lo + obj.mbr.hi) / 2.0
        self.invalidate_pool()
        self._publish_epoch([shard])
        return shard

    def mask(self, shard: int, obj: UncertainObject) -> bool:
        """Tombstone ``obj`` in its shard (O(1) logical delete)."""
        ok = self.searches[shard].mask_object(obj)
        if ok:
            self.invalidate_pool()
            self._publish_epoch([shard])
        return ok

    def compact(self, threshold: float = 0.0) -> int:
        """Rebuild shards whose masked fraction exceeds ``threshold``.

        Returns the total number of tombstones removed.
        """
        removed = 0
        rebuilt: list[int] = []
        for j, s in enumerate(self.searches):
            total = len(s.objects)
            if total and s.masked_count / total > threshold:
                dropped = s.compact()
                if dropped:
                    rebuilt.append(j)
                removed += dropped
        if removed:
            self.invalidate_pool()
            self._publish_epoch(rebuilt)
        return removed

    def invalidate_pool(self) -> None:
        """Drop the fork pool; the next process-backend query re-forks.

        The ``pool`` backend is *not* invalidated here — mutations publish
        a new shared-memory epoch instead (:meth:`_publish_epoch`), and the
        persistent workers re-attach without restarting.
        """
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def close(self) -> None:
        """Release pool/executor resources and unlink shared memory."""
        self.invalidate_pool()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool_exec is not None:
            self._pool_exec.shutdown(wait=True, cancel_futures=True)
            self._pool_exec = None
        if self._store is not None:
            self._store.close()
            self._store = None
            self._shard_segments = []
            self._snapshot_objects.clear()

    # ------------------------------ querying --------------------------- #

    def run(
        self,
        query: UncertainObject,
        operator: _BaseOperator | OperatorKind | str,
        *,
        k: int = 1,
        metric: str = "euclidean",
        kernels: bool = True,
        budget: Budget | None = None,
        request: RequestContext | None = None,
        shard_subset: Sequence[int] | None = None,
    ) -> ShardedResult:
        """Scatter-gather k-NNC; pinned equal to the single-shard answer.

        With a ``budget``, the serial backend shares it across the cascade
        (request-level semantics); parallel backends give each shard a
        fresh budget with the same limits.  Any shard degradation makes the
        combined answer a flagged superset, same contract as
        :class:`repro.core.nnc.NNCResult`.

        With a ``request`` (the serving layer's
        :class:`repro.obs.request.RequestContext`), a sampled request's
        shard searches are traced: the serial cascade records into the
        request's root tracer, thread workers bind a shard child context
        and hand span buffers back via ``add_shard_spans``, and fork
        workers ship the child over the wire and return span dicts.

        With a ``shard_subset``, only those shards are searched and the
        answer is the exact k-NNC over the *union of the subset's
        objects* — the node-role contract the router tier builds on: a
        node answers for the logical shards it owns, and the router's
        cross-node refine is sound because the subsets it gathers are
        disjoint and cover the dataset.
        """
        if not isinstance(operator, _BaseOperator):
            operator = make_operator(operator)
        targets = self._normalise_subset(shard_subset)
        start = time.perf_counter()
        backend = self.backend
        if backend == "serial" or self.shards == 1:
            survivors, covered, per_shard, merged, degradation, refine_ctx = (
                self._scatter_serial(
                    query, operator, k, metric, kernels, budget, request,
                    targets,
                )
            )
        elif backend == "thread":
            survivors, covered, per_shard, merged, degradation, refine_ctx = (
                self._scatter_thread(
                    query, operator, k, metric, kernels, budget, request,
                    targets,
                )
            )
        elif backend == "pool":
            survivors, covered, per_shard, merged, degradation, refine_ctx = (
                self._scatter_pool(
                    query, operator, k, metric, kernels, budget, request,
                    targets,
                )
            )
        else:
            survivors, covered, per_shard, merged, degradation, refine_ctx = (
                self._scatter_process(
                    query, operator, k, metric, kernels, budget, request,
                    targets,
                )
            )

        pre_refine = refine_ctx.counters.snapshot()
        final, counts, refine_checks, unresolved = refine_survivors(
            operator, k, survivors, covered, refine_ctx
        )
        post_refine = refine_ctx.counters.snapshot()
        refine_deltas = {
            key: post_refine[key] - pre_refine.get(key, 0)
            for key in post_refine
            if post_refine[key] - pre_refine.get(key, 0)
        }
        if refine_ctx.counters is not merged:
            # Parallel backends refine in a fresh context; fold its work
            # into the merged bag so the query's counters cover the whole
            # answer, same as the serial path (where the contexts alias).
            merged.merge(_counters_from_snapshot(refine_deltas))
        if unresolved and degradation is None:
            # The budget tripped during refinement with every shard exact:
            # unresolved cross-shard checks defaulted to non-dominance, so
            # the answer is a flagged superset (same contract as the engine).
            exhausted = budget.exhausted if budget is not None else None
            degradation = DegradationReport(
                reason=exhausted.reason if exhausted else "budget",
                site="refine",
                phase="refine",
                unresolved_checks=unresolved,
                conservative_accepts=0,
                elapsed_ms=(time.perf_counter() - start) * 1000.0,
                budget=budget.limits() if budget is not None else None,
                spent=budget.spent() if budget is not None else {},
            )
        result = ShardedResult(
            candidates=[obj for obj, _ in final],
            dominator_counts=counts,
            elapsed=time.perf_counter() - start,
            shards=self.shards,
            backend=backend,
            per_shard=per_shard,
            refine_checks=refine_checks,
            fanout=sum(1 for group in survivors if group),
            degradation=degradation,
            counters=merged,
            refine_counters=refine_deltas,
        )
        if self.metrics is not None:
            self.metrics.observe(
                "repro_serve_shard_fanout",
                result.fanout,
                {"operator": operator.name},
                buckets=FANOUT_BUCKETS,
            )
            for row in per_shard:
                self.metrics.observe(
                    "repro_serve_shard_seconds",
                    row["elapsed"],
                    {"shard": str(row["shard"]), "operator": operator.name},
                )
            query_metrics_from_counters(
                self.metrics,
                merged.snapshot(),
                operator=operator.name,
                elapsed=result.elapsed,
                candidates=len(result.candidates),
            )
        if degradation is not None:
            log_event(
                "search.degraded",
                level="warning",
                operator=operator.name,
                backend=backend,
                reason=degradation.reason,
                site=degradation.site,
                unresolved_checks=degradation.unresolved_checks,
            )
        return result

    # --------------------------- scatter phases ------------------------ #

    def _normalise_subset(
        self, shard_subset: Sequence[int] | None
    ) -> list[int]:
        """Validated, sorted shard indexes to scatter over."""
        if shard_subset is None:
            return list(range(self.shards))
        targets = sorted(set(int(s) for s in shard_subset))
        if not targets:
            raise ValueError("shard_subset must not be empty")
        if targets[0] < 0 or targets[-1] >= self.shards:
            raise ValueError(
                f"shard_subset {targets} out of range [0, {self.shards})"
            )
        return targets

    def _shard_order(self, query: UncertainObject) -> list[int]:
        """Shards by min-distance of the query MBR to the shard root MBR."""
        q = query.mbr
        keyed = []
        for j, s in enumerate(self.searches):
            root = s.tree.root.mbr
            key = (
                _mbr_min_dist(q.lo, q.hi, root.lo, root.hi)
                if root is not None
                else float("inf")
            )
            keyed.append((key, j))
        keyed.sort()
        return [j for _, j in keyed]

    def _scatter_serial(
        self, query, operator, k, metric, kernels, budget, request=None,
        targets: Sequence[int] | None = None,
    ):
        """Cascade: near shards first, survivors seed the later shards.

        Runs on the request thread, so a sampled request's shard spans land
        directly in its root tracer (wrapped in per-shard ``shard-search``
        spans) — no buffer hand-back needed.
        """
        tracer = (
            request.tracer
            if request is not None and request.sampled and request.tracer is not None
            else None
        )
        ctx = QueryContext(
            query, metric=metric, kernels=kernels, budget=budget, tracer=tracer
        )
        wanted = set(targets if targets is not None else range(self.shards))
        order = [j for j in self._shard_order(query) if j in wanted]
        survivors: list[list[tuple[UncertainObject, int]]] = [
            [] for _ in order
        ]
        covered: list[set[int]] = []
        rows: dict[int, dict] = {}
        degradation: DegradationReport | None = None
        seeds: list[UncertainObject] = []
        for pos, j in enumerate(order):
            search = self.searches[j]
            with ctx.tracer.span("shard-search", shard=j, cascade_pos=pos):
                res = search.run(query, operator, k=k, ctx=ctx, seeds=seeds)
            survivors[pos] = list(
                zip(res.candidates, res.dominator_counts)
            )
            # Seeds joined the accepted set, so counts cover this group AND
            # every earlier one in the cascade (group = cascade position).
            covered.append(set(range(pos + 1)))
            rows[j] = {
                "shard": j,
                "objects": len(search.objects) - search.masked_count,
                "survivors": len(res.candidates),
                "elapsed": res.elapsed,
                "degraded": res.degradation is not None,
            }
            if degradation is None and res.degradation is not None:
                degradation = res.degradation
            seeds.extend(res.candidates)
        per_shard = [rows[j] for j in sorted(rows)]
        return survivors, covered, per_shard, ctx.counters, degradation, ctx

    def _scatter_thread(
        self, query, operator, k, metric, kernels, budget, request=None,
        targets: Sequence[int] | None = None,
    ):
        """Independent shard searches on a thread pool, full refine.

        Each worker binds a shard child of the request context (fresh span
        id, parent = the request span), so log events emitted on the worker
        thread correlate, and — when sampled — records spans into a private
        tracer sharing the request's ``trace_epoch``, handed back via
        :meth:`RequestContext.add_shard_spans`.
        """
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=max(2, min(self.shards, (os.cpu_count() or 1))),
                thread_name_prefix="repro-shard",
            )
        limits = budget.limits() if budget is not None else None

        def one(j: int):
            shard_budget = Budget(**limits) if limits is not None else None
            if request is None:
                ctx = QueryContext(
                    query, metric=metric, kernels=kernels, budget=shard_budget
                )
                return j, self.searches[j].run(query, operator, k=k, ctx=ctx), None
            child = request.child(j)
            tracer = Tracer(epoch=child.trace_epoch) if child.sampled else None
            ctx = QueryContext(
                query,
                metric=metric,
                kernels=kernels,
                budget=shard_budget,
                tracer=tracer,
            )
            with bind(child):
                if tracer is None:
                    return j, self.searches[j].run(query, operator, k=k, ctx=ctx), None
                with tracer.span(
                    "shard-search",
                    shard=j,
                    span_id=child.span_id,
                    parent_span_id=child.parent_span_id,
                ):
                    res = self.searches[j].run(query, operator, k=k, ctx=ctx)
            return j, res, tracer.spans()

        results = []
        todo = list(targets) if targets is not None else list(range(self.shards))
        for j, res, spans in self._executor.map(one, todo):
            if spans is not None and request is not None:
                request.add_shard_spans(j, spans)
            results.append((j, res))
        return self._gather_independent(query, metric, kernels, results)

    def _scatter_process(
        self, query, operator, k, metric, kernels, budget, request=None,
        targets: Sequence[int] | None = None,
    ):
        """Fork-pool shard searches; falls back to threads when fork fails.

        A sampled request's shard child contexts cross the process boundary
        in wire form inside the task tuple; workers return their span
        buffers as dicts, reassembled here into the request context.
        """
        global _FORK_SEARCHES
        limits = budget.limits() if budget is not None else None
        if self._pool is None:
            try:
                mp = multiprocessing.get_context("fork")
                _FORK_SEARCHES = self.searches
                self._pool = mp.Pool(
                    processes=max(2, min(self.shards, (os.cpu_count() or 2)))
                )
            except (OSError, ValueError):
                return self._scatter_thread(
                    query, operator, k, metric, kernels, budget, request,
                    targets,
                )
        traced = request is not None and request.sampled
        todo = list(targets) if targets is not None else list(range(self.shards))
        tasks = [
            (
                j,
                query,
                operator,
                k,
                metric,
                kernels,
                limits,
                request.child(j).to_wire() if traced else None,
            )
            for j in todo
        ]
        raw = self._pool.map(_fork_run_one, tasks)
        results = []
        for j, (idxs, counts, elapsed, report, snap, spans) in zip(todo, raw):
            objs = self.searches[j].objects
            res = _RemoteShardResult(
                candidates=[objs[i] for i in idxs],
                dominator_counts=counts,
                elapsed=elapsed,
                degradation=_report_from_dict(report) if report else None,
                counters=_counters_from_snapshot(snap),
            )
            if spans and request is not None:
                request.add_shard_spans(
                    j, [SpanRecord.from_dict(d) for d in spans]
                )
            results.append((j, res))
        return self._gather_independent(query, metric, kernels, results)

    # --------------------------- pool backend -------------------------- #

    def _ensure_pool(self) -> None:
        """Bring up the segment store and persistent workers (idempotent).

        Segments and the executor have independent lifetimes: a worker
        crash tears down only the executor, and the next query rebuilds it
        here against the already-published segments.
        """
        with self._pool_lock:
            if self._store is None:
                store = SegmentStore()
                self._shard_segments = [[] for _ in range(self.shards)]
                self._store = store
                for j in range(self.shards):
                    self._publish_shard(j)
            if self._pool_exec is None:
                self._pool_exec = ProcessPoolExecutor(
                    max_workers=self.workers
                    or max(2, min(self.shards, os.cpu_count() or 2)),
                    mp_context=multiprocessing.get_context(
                        self.start_method or "spawn"
                    ),
                    initializer=pool_worker_init,
                    initargs=(self.profile_hz,),
                )

    def _publish_shard(self, j: int) -> None:
        """Publish shard ``j``'s current state; retire all but the last two.

        Keeping the previous segment alongside the new one is the retention
        half of append-then-swap: a task stamped just before the swap still
        attaches its pre-swap segment and answers against that snapshot.
        """
        search = self.searches[j]
        name = self._store.publish(self._pool_epoch, j, search)
        self._snapshot_objects[name] = list(search.objects)
        kept = self._shard_segments[j]
        kept.append(name)
        while len(kept) > 2:
            old = kept.pop(0)
            self._store.retire(old)
            self._snapshot_objects.pop(old, None)

    def _publish_epoch(self, shards: Sequence[int]) -> None:
        """Swap in a new pool epoch covering the mutated ``shards`` only.

        No-op until the pool backend has run once.  Untouched shards keep
        serving their existing segments — the per-task segment *name* is
        what workers attach by; the epoch is a monotonic stamp for
        diagnostics and lifecycle tests.  Workers are never restarted.
        """
        if self._store is None or not shards:
            return
        self._pool_epoch += 1
        for j in shards:
            self._publish_shard(j)

    def _teardown_pool_executor(self) -> None:
        """Drop the worker pool (e.g. after a worker death); keep segments."""
        with self._pool_lock:
            if self._pool_exec is not None:
                self._pool_exec.shutdown(wait=False, cancel_futures=True)
                self._pool_exec = None

    def pool_pids(self) -> list[int]:
        """Pids of live pool workers (empty before the first pool query)."""
        if self._pool_exec is None:
            return []
        return sorted(
            p.pid for p in self._pool_exec._processes.values()
        )

    def worker_profiles(self) -> dict[int, dict]:
        """Cumulative profiler snapshots from pool workers, keyed by pid.

        The executor gives no control over which worker picks up a task,
        so one snapshot task per worker is submitted and results are
        keyed by the responding pid — a worker answering twice simply
        overwrites its own (cumulative, so idempotent) snapshot, and a
        worker that answered none is picked up by a later call.  Empty
        for non-pool backends, a disabled profiler, or a cold pool.
        """
        executor = self._pool_exec
        if executor is None or self.profile_hz <= 0:
            return {}
        slots = max(1, len(self.pool_pids()))
        try:
            futures = [
                executor.submit(pool_profile_snapshot) for _ in range(slots)
            ]
        except RuntimeError:
            return {}
        out: dict[int, dict] = {}
        for future in futures:
            try:
                pid, prof = future.result(timeout=5.0)
            except Exception:  # noqa: BLE001 — profile is best-effort
                continue
            if prof is not None:
                out[pid] = prof
        return out

    def _scatter_pool(
        self, query, operator, k, metric, kernels, budget, request=None,
        targets: Sequence[int] | None = None,
    ):
        """Persistent shared-memory pool scatter (spawn-safe workers).

        Tasks carry only ``(shard, epoch, segment name, query, operator
        params, request wire form)`` — shard state crosses the process
        boundary through shared memory, never the task pipe.  Worker death
        (:class:`BrokenProcessPool`) surfaces as
        :class:`ShardBackendError`; the executor is torn down and lazily
        rebuilt on the next query, while published segments survive.
        """
        self._ensure_pool()
        executor = self._pool_exec
        limits = budget.limits() if budget is not None else None
        traced = request is not None and request.sampled
        names = [segs[-1] for segs in self._shard_segments]
        todo = list(targets) if targets is not None else list(range(self.shards))
        tasks = [
            (
                j,
                self._pool_epoch,
                names[j],
                query,
                operator,
                k,
                metric,
                kernels,
                limits,
                request.child(j).to_wire() if traced else None,
            )
            for j in todo
        ]
        raw = []
        try:
            futures = [executor.submit(pool_run_one, t) for t in tasks]
            for f in futures:
                raw.append(f.result())
        except (BrokenProcessPool, RuntimeError) as exc:
            # RuntimeError: a concurrent request's worker death shut this
            # executor down between our _ensure_pool and submit.
            self._teardown_pool_executor()
            raise ShardBackendError(
                "pool worker died mid-query; the backend rebuilds its "
                "workers on the next query"
            ) from exc
        results = []
        for j, payload in zip(todo, raw):
            if payload[0] == "error":
                _, pid, epoch, message = payload
                raise ShardBackendError(
                    f"pool worker {pid} failed on shard {j} "
                    f"(epoch {epoch}): {message}"
                )
            _, pid, _epoch, idxs, counts, elapsed, report, snap, spans = (
                payload
            )
            objs = self._snapshot_objects[names[j]]
            res = _RemoteShardResult(
                candidates=[objs[i] for i in idxs],
                dominator_counts=counts,
                elapsed=elapsed,
                degradation=_report_from_dict(report) if report else None,
                counters=_counters_from_snapshot(snap),
                pid=pid,
            )
            if spans and request is not None:
                request.add_shard_spans(j, spans)
            results.append((j, res))
        return self._gather_independent(query, metric, kernels, results)

    def _gather_independent(self, query, metric, kernels, results):
        """Shape independent per-shard results for the full refiner."""
        results.sort(key=lambda item: item[0])
        survivors = []
        covered = []
        per_shard = []
        merged = Counters()
        degradation: DegradationReport | None = None
        for pos, (j, res) in enumerate(results):
            survivors.append(list(zip(res.candidates, res.dominator_counts)))
            # Group ids in the refiner are positional, which only equals
            # the shard id when every shard was scattered — subset queries
            # must cover by position.
            covered.append({pos})
            search = self.searches[j]
            row = {
                "shard": j,
                "objects": len(search.objects) - search.masked_count,
                "survivors": len(res.candidates),
                "elapsed": res.elapsed,
                "degraded": res.degradation is not None,
            }
            pid = getattr(res, "pid", None)
            if pid is not None:
                row["pid"] = pid
            per_shard.append(row)
            merged.merge(res.counters)
            if degradation is None and res.degradation is not None:
                degradation = res.degradation
        refine_ctx = QueryContext(query, metric=metric, kernels=kernels)
        return survivors, covered, per_shard, merged, degradation, refine_ctx

    # ------------------------------ gather ----------------------------- #


def refine_survivors(operator, k, survivors, covered, ctx):
    """Count cross-group dominators among survivors; keep counts < k.

    ``survivors`` is a list of groups of ``(object, base_count)`` pairs;
    ``covered[gi]`` names the *positional* group indexes whose dominators
    are already included in group ``gi``'s base counts.  Sound because
    dominators of a survivor that were eliminated in their own group are
    themselves dominated by >= k survivors there, which dominate the
    target by transitivity (counting equivalence, DESIGN.md §13).

    Shared by :class:`ShardedSearch` (groups = local shards) and the
    router tier (groups = per-node answers gathered over HTTP) — one code
    path is what keeps distributed answers bit-identical to the
    single-process oracle.

    Returns:
        ``(kept, counts, checks, unresolved)`` where ``kept`` is a list of
        ``(object, min_distance)`` pairs sorted by distance.
    """
    flat: list[tuple[float, int, int, UncertainObject, int]] = []
    for gi, group in enumerate(survivors):
        for obj, base in group:
            flat.append((ctx.min_distance(obj), gi, len(flat), obj, base))
    flat.sort(key=lambda rec: (rec[0], rec[1], rec[2]))
    checks = 0
    unresolved = 0
    kept: list[tuple[UncertainObject, float]] = []
    counts: list[int] = []
    for dmin, gi, _, obj, base in flat:
        total = base
        if total < k:
            for gj, group in enumerate(survivors):
                if gj in covered[gi]:
                    continue
                for other, _ in group:
                    if other is obj:
                        continue
                    if ctx.min_distance(other) > dmin + _REFINE_TOL:
                        continue
                    checks += 1
                    try:
                        dominated = operator.dominates(other, obj, ctx)
                    except BudgetExhausted:
                        # Conservative non-dominance: the candidate is
                        # kept; run() flags the answer as degraded.
                        unresolved += 1
                        dominated = False
                    if dominated:
                        total += 1
                        if total >= k:
                            break
                if total >= k:
                    break
        if total < k:
            kept.append((obj, dmin))
            counts.append(total)
    return kept, counts, checks, unresolved


@dataclass
class _RemoteShardResult:
    """NNCResult-shaped view of a pool worker's return value."""

    candidates: list[UncertainObject]
    dominator_counts: list[int]
    elapsed: float
    degradation: DegradationReport | None
    counters: Counters
    #: Worker pid (pool backend only) — surfaces in ``per_shard`` rows so
    #: tests can pin "mutations do not restart workers".
    pid: int | None = None
