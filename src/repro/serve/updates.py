"""Dynamic dataset management: validated inserts, tombstone deletes, epochs.

A :class:`DatasetManager` owns a :class:`repro.serve.shard.ShardedSearch`
plus the bookkeeping a living dataset needs:

* an **oid registry** (every object addressable; duplicates rejected),
* an **epoch counter** bumped by every successful mutation — the cache key
  version that makes stale hits impossible (:mod:`repro.serve.cache`),
* **quarantine at the door**: inserts run :func:`repro.objects.validate
  .validate_objects` under the configured policy before touching an index,
* **O(1) deletes** via the engine's deletion mask, with automatic shard
  compaction once the tombstone fraction passes ``compact_threshold``,
* a **readers-writer lock**: queries share the dataset; mutations take it
  exclusively (and invalidate the fork pool via the sharded search; the
  ``pool`` backend instead gets a fresh shared-memory epoch published for
  the mutated shards — its workers persist across updates).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Sequence

from repro.objects.uncertain import UncertainObject
from repro.objects.validate import InvalidInputError, validate_objects
from repro.obs.log import log_event
from repro.serve.shard import ShardedSearch, ShardedResult

__all__ = ["DatasetManager", "DuplicateOidError", "UnknownOidError"]


class DuplicateOidError(ValueError):
    """An insert reused an oid that is already live."""


class UnknownOidError(KeyError):
    """A delete referenced an oid that is not live."""


class _RWLock:
    """Readers-writer lock, writer-preferring (updates cannot starve)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class DatasetManager:
    """A mutable, shard-served dataset with epoch-versioned reads.

    Args:
        objects: initial dataset (validated under ``on_invalid``).
        shards / partitioner / backend / global_fanout: forwarded to
            :class:`ShardedSearch`.
        on_invalid: quarantine policy for the initial load *and* inserts
            (``strict`` rejects, ``repair`` fixes what it can, ``skip``
            drops — a dropped single insert is reported as a rejection).
        compact_threshold: masked fraction above which a shard is rebuilt
            after a delete (1.0 disables automatic compaction).
        metrics: optional MetricsRegistry, forwarded to the sharded search
            and fed ``repro_serve_epoch`` / ``repro_serve_objects`` gauges.
        workers / start_method: forwarded to :class:`ShardedSearch` for the
            ``pool`` backend (worker count; multiprocessing start method,
            default ``spawn``).
        profile_hz: forwarded to :class:`ShardedSearch` — per-worker
            sampling profilers for the ``pool`` backend (0 disables).
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject],
        *,
        shards: int = 1,
        partitioner: str = "round-robin",
        backend: str = "auto",
        global_fanout: int = 16,
        on_invalid: str = "strict",
        compact_threshold: float = 0.3,
        metrics: Any = None,
        workers: int | None = None,
        start_method: str | None = None,
        profile_hz: float = 0.0,
    ) -> None:
        kept, load_report = validate_objects(
            list(objects), on_invalid=on_invalid, metrics=metrics
        )
        self._assign_missing_oids(kept)
        self._init_from_search(
            ShardedSearch(
                kept,
                shards=shards,
                partitioner=partitioner,
                backend=backend,
                global_fanout=global_fanout,
                metrics=metrics,
                workers=workers,
                start_method=start_method,
                profile_hz=profile_hz,
            ),
            on_invalid=on_invalid,
            compact_threshold=compact_threshold,
            metrics=metrics,
            load_report=load_report,
        )

    def _init_from_search(
        self,
        search: ShardedSearch,
        *,
        on_invalid: str,
        compact_threshold: float,
        metrics: Any,
        load_report: Any = None,
    ) -> None:
        """Shared construction tail for a pre-built sharded search.

        The normal constructor arrives here after validating and
        partitioning; the durable tier's warm restart arrives with shards
        rebuilt straight from a snapshot (no re-validation, no re-build —
        that skip *is* the warm-restart speedup)."""
        self.on_invalid = on_invalid
        self.compact_threshold = compact_threshold
        self.metrics = metrics
        self.load_report = load_report
        self.search = search
        self._lock = _RWLock()
        self._epoch = 0
        self._compacting = False
        self._closed = False
        #: oid -> (shard index, object); the only mutable name authority.
        self._registry = self._build_registry(search)
        self._export_gauges()

    @staticmethod
    def _build_registry(
        search: ShardedSearch,
    ) -> dict[Any, tuple[int, UncertainObject]]:
        """Oid registry over the *live* (unmasked) objects of a search."""
        registry: dict[Any, tuple[int, UncertainObject]] = {}
        for j, shard_search in enumerate(search.searches):
            for obj in shard_search.live_objects():
                if obj.oid in registry:
                    raise DuplicateOidError(
                        f"duplicate oid {obj.oid!r} in initial dataset"
                    )
                registry[obj.oid] = (j, obj)
        return registry

    # ------------------------------ state ------------------------------ #

    @property
    def epoch(self) -> int:
        """Dataset version; bumped by every successful insert/delete."""
        return self._epoch

    @property
    def size(self) -> int:
        """Number of live objects."""
        return len(self._registry)

    @property
    def compacting(self) -> bool:
        """True while a shard compaction is rebuilding indexes.

        Mid-compaction the write lock is held, so queries queue behind it;
        health checks report this instead of a plain "ok" so drain and
        latency monitoring stay truthful.
        """
        return self._compacting

    def get(self, oid) -> UncertainObject | None:
        """The live object with this oid, or None."""
        entry = self._registry.get(oid)
        return entry[1] if entry is not None else None

    def _assign_missing_oids(self, objects: list[UncertainObject]) -> None:
        taken = {o.oid for o in objects if o.oid is not None}
        fresh = (i for i in itertools.count() if i not in taken)
        for obj in objects:
            if obj.oid is None:
                obj.oid = next(fresh)

    def _next_oid(self):
        for i in itertools.count(len(self._registry)):
            if i not in self._registry:
                return i

    def _export_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("repro_serve_epoch", self._epoch)
            self.metrics.set_gauge("repro_serve_objects", len(self._registry))

    # ----------------------------- queries ----------------------------- #

    def query(
        self,
        query: UncertainObject,
        operator,
        *,
        k: int = 1,
        metric: str = "euclidean",
        kernels: bool = True,
        budget=None,
        request=None,
        shard_subset: Sequence[int] | None = None,
    ) -> tuple[ShardedResult, int]:
        """Run a sharded search under the read lock.

        ``request`` (a :class:`repro.obs.request.RequestContext`) rides
        through to :meth:`ShardedSearch.run` for trace propagation.
        ``shard_subset`` restricts the scatter to the named shards — the
        node-role contract behind router-scoped reads.

        Returns:
            ``(result, epoch)`` — the epoch the answer is valid for, read
            atomically with the search (cache entries must be keyed by it).
        """
        with self._lock.read():
            result = self.search.run(
                query, operator, k=k, metric=metric,
                kernels=kernels, budget=budget, request=request,
                shard_subset=shard_subset,
            )
            return result, self._epoch

    def cache_key(
        self, operator: str, metric: str, k: int, query: UncertainObject
    ) -> tuple:
        """Cache key for this query at the *current* epoch.

        Only for pre-flight lookups; when storing, use the epoch returned
        by :meth:`query` so a concurrent update cannot version-skew the
        entry forward.
        """
        from repro.serve.cache import ResultCache

        return ResultCache.key(self._epoch, operator, metric, k, query)

    # ---------------------------- mutations ---------------------------- #

    def insert(
        self,
        points,
        probs=None,
        *,
        oid=None,
    ) -> tuple[Any, int]:
        """Validate and insert one object.

        Returns:
            ``(oid, epoch)`` after the insert.

        Raises:
            InvalidInputError: the object failed validation (or was dropped
                by the ``skip``/``repair`` policy — for a single insert a
                drop *is* a rejection).
            DuplicateOidError: the oid is already live.
        """
        try:
            obj = UncertainObject(points, probs, oid=oid, normalize=True)
        except ValueError as exc:
            _invalid(str(exc))
        kept, report = validate_objects(
            [obj], on_invalid=self.on_invalid, metrics=self.metrics
        )
        if not kept:
            raise InvalidInputError(report)
        obj = kept[0]
        with self._lock.write():
            if oid is None:
                obj.oid = self._next_oid()
            elif oid in self._registry:
                raise DuplicateOidError(f"oid {oid!r} is already live")
            shard = self.search.insert(obj)
            self._registry[obj.oid] = (shard, obj)
            self._epoch += 1
            self._mutated("insert", oid=obj.oid, obj=obj, epoch=self._epoch)
            self._export_gauges()
            return obj.oid, self._epoch

    def delete(self, oid) -> tuple[bool, int]:
        """Tombstone the object with this oid; compact past the threshold.

        Returns:
            ``(True, epoch)`` after the delete.

        Raises:
            UnknownOidError: no live object has this oid.
        """
        with self._lock.write():
            entry = self._registry.pop(oid, None)
            if entry is None:
                raise UnknownOidError(oid)
            shard, obj = entry
            self.search.mask(shard, obj)
            if self.compact_threshold < 1.0:
                self._compact_locked(self.compact_threshold)
            self._epoch += 1
            self._mutated("delete", oid=oid, epoch=self._epoch)
            self._export_gauges()
            return True, self._epoch

    def _compact_locked(self, threshold: float) -> int:
        """Compact with the write lock held, flagged for health checks."""
        self._compacting = True
        try:
            removed = self.search.compact(threshold)
        finally:
            self._compacting = False
        if removed:
            log_event("serve.compacted", removed=removed, epoch=self._epoch)
        return removed

    def compact(self) -> int:
        """Force-compact all shards; returns tombstones removed."""
        with self._lock.write():
            removed = self._compact_locked(0.0)
            if removed:
                self._mutated("compact", epoch=self._epoch, removed=removed)
            return removed

    def _mutated(
        self, kind: str, *, oid=None, obj=None, epoch: int = 0,
        removed: int = 0,
    ) -> None:
        """Mutation hook, called inside the write lock *before* the ack.

        A no-op here; :class:`repro.serve.durable.DurableDatasetManager`
        overrides it to append a write-ahead-log frame (and, every
        ``snapshot_every`` mutations, checkpoint) so the epoch being
        acknowledged is on disk before any client can observe it.
        """

    def close(self) -> None:
        """Release worker pools held by the sharded search (idempotent)."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        self.search.close()


def _invalid(message: str) -> InvalidInputError:
    """InvalidInputError from a bare constructor failure (no report rows)."""
    from repro.objects.validate import ValidationIssue, ValidationReport

    report = ValidationReport(policy="strict")
    report.n_input = 1
    report.issues.append(
        ValidationIssue(0, None, "object", "malformed", message, "rejected")
    )
    raise InvalidInputError(report)
