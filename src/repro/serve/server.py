"""Asyncio JSON-over-HTTP front end for the sharded NNC service.

Stdlib only: a hand-rolled HTTP/1.1 loop over ``asyncio.start_server``
(``Connection: close`` per request — the protocol surface stays tiny and
auditable).  Engine work runs on a thread-pool executor so the event loop
never blocks on a search; NumPy kernels release the GIL for the heavy
part.

Admission control (ISSUE: per-request budget admission):

* ``max_inflight`` concurrent engine requests; beyond that → **429** with
  ``Retry-After`` (load shedding, the request was never started).
* draining (SIGTERM/SIGINT) → **503** for new engine requests while
  in-flight ones finish; ``/healthz`` and ``/metrics`` keep answering.
* a per-request :class:`repro.resilience.budget.Budget` (from the request
  body, else the server default) bounds each search; exhaustion returns a
  normal **200** with ``degraded: true`` — the PR-3 certified superset,
  the HTTP twin of the CLI's exit code 3.

Metric families (``repro_serve_*``) land in the shared registry exported
at ``/metrics``; see :mod:`repro.obs.metrics` for the catalogue.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.objects.validate import InvalidInputError
from repro.obs.alerts import BurnRateMonitor
from repro.obs.export import merged_chrome_trace
from repro.obs.log import log_event
from repro.obs.metrics import MetricsRegistry, slo_snapshot, update_slo_gauges
from repro.obs.profile import SamplingProfiler, merge_folded
from repro.obs.request import RequestContext, Sampler, bind
from repro.obs.tracer import Tracer
from repro.resilience.budget import Budget
from repro.serve import protocol
from repro.serve.explain import build_explain
from repro.serve.audit import AuditLog
from repro.serve.cache import ResultCache
from repro.serve.shard import ShardBackendError
from repro.serve.updates import (
    DatasetManager,
    DuplicateOidError,
    UnknownOidError,
)

__all__ = ["ServeApp", "NNCServer"]

_MAX_BODY = 16 * 1024 * 1024
_MAX_HEADER = 64 * 1024


class ServeApp:
    """Transport-independent request handlers (shared by server and tests).

    Args:
        manager: the dataset.
        cache: result cache (None disables caching).
        registry: metrics registry; created when None so ``/metrics``
            always works.
        max_inflight: concurrent engine-request cap (admission control).
        default_budget: limits dict applied when a query carries none
            (e.g. ``{"deadline_ms": 2000}``); None = unbudgeted default.
        sample_rate: fraction of engine requests traced end to end
            (deterministic :class:`repro.obs.request.Sampler`); 0 disables
            tracing entirely.
        audit: optional :class:`repro.serve.audit.AuditLog`; every served
            query/insert/delete appends one replayable JSONL record.
        trace_dir: directory receiving one merged Chrome trace JSON per
            sampled request (``trace-<request_id>.json``); the most recent
            document is also kept on :attr:`last_trace`.
        slo_latency_ms: per-request latency objective; engine requests
            slower than this burn ``repro_slo_burn_total{slo="latency"}``.
        node_id: identity of this server in a multi-node fleet (surfaced
            in ``/healthz``/``/status`` so the router can verify it is
            talking to the member it placed shards on); None = standalone.
        profile_hz: sampling rate of the continuous profiler
            (:class:`repro.obs.profile.SamplingProfiler`); 0 disables it.
            The profile is served at ``/profile`` (JSON, folded text at
            ``/profile.txt``) and rendered by the flamegraph figure.
    """

    def __init__(
        self,
        manager: DatasetManager,
        *,
        cache: ResultCache | None = None,
        registry: MetricsRegistry | None = None,
        max_inflight: int = 8,
        default_budget: dict | None = None,
        sample_rate: float = 0.0,
        audit: AuditLog | None = None,
        trace_dir: str | Path | None = None,
        slo_latency_ms: float | None = None,
        node_id: str | None = None,
        profile_hz: float = 0.0,
    ) -> None:
        self.manager = manager
        self.node_id = node_id
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = cache
        self.max_inflight = max_inflight
        self.default_budget = dict(default_budget) if default_budget else None
        self.sampler = Sampler(sample_rate)
        self.audit = audit
        self.trace_dir = Path(trace_dir) if trace_dir is not None else None
        self.slo_latency_ms = slo_latency_ms
        #: Merged Chrome-trace document of the most recent sampled request.
        self.last_trace: dict | None = None
        self.draining = False
        #: True while a deferred warm restart is still replaying the WAL;
        #: engine routes answer 503 ``retryable`` until it clears.
        self.recovering = False
        self._inflight = 0
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.profile_hz = float(profile_hz)
        self.profiler = SamplingProfiler(
            self.profile_hz, registry=self.registry
        ).start()
        #: Multi-window burn-rate alerting over the same SLOs the burn
        #: counters track; evaluated lazily on ``/status`` reads.
        self.alerts = BurnRateMonitor(registry=self.registry)

    # --------------------------- admission ----------------------------- #

    @property
    def inflight(self) -> int:
        return self._inflight

    def try_acquire(self) -> bool:
        """Reserve an engine-request slot; False = saturated (429)."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                return False
            self._inflight += 1
            self.registry.set_gauge("repro_serve_inflight", self._inflight)
            return True

    def release(self) -> None:
        """Return an engine-request slot taken by :meth:`try_acquire`."""
        with self._lock:
            self._inflight -= 1
            self.registry.set_gauge("repro_serve_inflight", self._inflight)

    def _observe(self, route: str, status: int, elapsed: float) -> None:
        self.registry.inc(
            "repro_serve_requests_total",
            1,
            {"route": route, "status": str(status)},
        )
        self.registry.observe(
            "repro_serve_request_seconds", elapsed, {"route": route}
        )

    # --------------------------- handlers ------------------------------ #

    def handle(
        self, method: str, path: str, payload: Any, request=None
    ) -> tuple[int, dict]:
        """Route one parsed request; returns ``(status, json_body)``."""
        try:
            if method == "GET" and path == "/healthz":
                return 200, self.healthz()
            if method == "GET" and path == "/status":
                return 200, self.status()
            if method == "GET" and path == "/metrics":
                # Caller special-cases the content type; body is text.
                update_slo_gauges(self.registry)
                return 200, {"text": self.registry.to_prometheus()}
            if method == "GET" and path == "/metrics.json":
                # The federation scraper's wire form: the registry's JSON
                # dump, so absorbing never parses Prometheus text.
                update_slo_gauges(self.registry)
                return 200, self.registry.to_json()
            if method == "GET" and path == "/profile":
                return 200, self.profile_body()
            if method == "GET" and path == "/profile.txt":
                # Caller special-cases the content type; body is text.
                return 200, {"text": self.profile_body().get("folded", "")}
            if method != "POST" or path not in ("/query", "/insert", "/delete"):
                return 404, protocol.error_body(f"no route {method} {path}")
            if self.recovering:
                return 503, protocol.recovering_body()
            if path == "/query":
                return self.handle_query(payload, request)
            if path == "/insert":
                return self.handle_insert(payload, request)
            return self.handle_delete(payload, request)
        except protocol.ProtocolError as exc:
            return 400, protocol.error_body(str(exc))
        except InvalidInputError as exc:
            return 422, protocol.error_body(
                "validation failed", report=exc.report.to_dict()
            )
        except DuplicateOidError as exc:
            return 409, protocol.error_body(str(exc))
        except UnknownOidError as exc:
            return 404, protocol.error_body(f"unknown oid {exc.args[0]!r}")
        except ShardBackendError as exc:
            # Transient: the pool backend lost a worker; it rebuilds on the
            # next query, so tell clients to retry rather than fail them.
            log_event(
                "serve.backend_error", level="error", route=path, error=str(exc)
            )
            return 503, protocol.backend_error_body(str(exc))

    def dispatch(
        self,
        method: str,
        path: str,
        payload: Any,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """handle() under a bound request context, plus metrics and SLOs.

        The single entry point for servers: engine requests get a
        :class:`RequestContext` (honouring a caller's ``X-Request-Id``,
        and joining a caller's trace via ``X-Trace-Id`` /
        ``X-Parent-Span-Id`` / ``X-Sampled: 1`` — how the router stitches
        fleet-wide traces), the per-request sampling decision, structured
        request logs, the merged-trace export, and SLO burn accounting.
        """
        start = time.perf_counter()
        engine = method == "POST" and path in ("/query", "/insert", "/delete")
        request = None
        if engine:
            # The HTTP front-end lowercases header names; in-process
            # callers (LocalNode) may not, so normalise here too.
            hdrs = {k.lower(): v for k, v in (headers or {}).items()}
            request_id = hdrs.get("x-request-id") or None
            # An upstream sampling decision forces ours: the router only
            # marks requests it is itself tracing, and a fleet trace with
            # holes in it is worse than none.  An explain query likewise
            # forces sampling — the breakdown is assembled from spans, so
            # it needs the full trace (and propagates the decision to
            # every shard/node via X-Sampled).
            explain = (
                path == "/query"
                and isinstance(payload, dict)
                and payload.get("explain") is True
            )
            sampled = (
                explain
                or hdrs.get("x-sampled") == "1"
                or self.sampler.decide()
            )
            request = RequestContext.new(
                request_id=request_id,
                sampled=sampled,
                trace_id=hdrs.get("x-trace-id") or None,
                parent_span_id=hdrs.get("x-parent-span-id") or None,
            )
            if request.sampled:
                request.tracer = Tracer(
                    metrics=self.registry, epoch=request.trace_epoch
                )
                self.registry.inc("repro_serve_sampled_total")
        with bind(request):
            try:
                status, body = self.handle(method, path, payload, request)
            except Exception as exc:  # noqa: BLE001 — boundary: 500, not a crash
                log_event(
                    "serve.error", level="error", route=path, error=repr(exc)
                )
                status, body = 500, protocol.error_body("internal error")
            elapsed = time.perf_counter() - start
            self._observe(path, status, elapsed)
            if engine:
                self._slo_account(status, body, elapsed)
                if request.sampled:
                    self.export_trace(request)
                log_event(
                    "serve.request",
                    route=path,
                    status=status,
                    elapsed_ms=elapsed * 1000.0,
                    sampled=request.sampled,
                    cached=bool(body.get("cached")),
                    degraded=bool(body.get("degraded")),
                )
        return status, body

    def _slo_account(self, status: int, body: dict, elapsed: float) -> None:
        """Burn counters: one increment per request that misses an SLO."""
        error = status >= 500
        degraded = status == 200 and bool(body.get("degraded"))
        latency_bad = (
            self.slo_latency_ms is not None
            and elapsed * 1000.0 > self.slo_latency_ms
        )
        if error:
            self.registry.inc("repro_slo_burn_total", 1, {"slo": "error"})
        if degraded:
            self.registry.inc("repro_slo_burn_total", 1, {"slo": "degraded"})
        if latency_bad:
            self.registry.inc("repro_slo_burn_total", 1, {"slo": "latency"})
        self.alerts.record(
            latency_bad=latency_bad, error=error, degraded=degraded
        )

    def export_trace(self, request) -> dict:
        """Merge a sampled request's span buffers into one Chrome trace.

        Root (handler + serial-cascade) spans come from the request's own
        tracer; thread/fork shard buffers were attached by the scatter via
        :meth:`RequestContext.add_shard_spans`.  Written to ``trace_dir``
        (when set) and kept on :attr:`last_trace`.
        """
        spans = request.tracer.spans() if request.tracer is not None else []
        doc = merged_chrome_trace(
            spans,
            request.shard_spans,
            trace_id=request.trace_id,
            request_id=request.request_id,
        )
        self.last_trace = doc
        if self.trace_dir is not None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            path = self.trace_dir / f"trace-{request.request_id}.json"
            # Atomic publish: a crash mid-write must not leave a torn trace
            # for tooling that tails the directory.
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(doc, indent=1) + "\n")
            os.replace(tmp, path)
        return doc

    def handle_query(self, payload: Any, request=None) -> tuple[int, dict]:
        """POST /query: cache lookup, sharded search, epoch-keyed store."""
        req = protocol.parse_query_request(payload)
        shard_subset = req["shards"]
        if shard_subset is not None:
            total = self.manager.search.shards
            if shard_subset[-1] >= total:
                raise protocol.ProtocolError(
                    f"'shards' {shard_subset} out of range [0, {total})"
                )
        budget = req["budget"]
        if budget is None and self.default_budget:
            budget = Budget(**self.default_budget)
        # Budgeted answers depend on the request's budget, not just the
        # dataset — never cached, never served from cache.  Shard-scoped
        # and geometry-bearing answers (the router's node reads) are also
        # uncacheable: the cache key doesn't encode either.  Explain
        # answers bypass the cache both ways: the breakdown describes the
        # work of *this* execution, and a cached body has none.
        use_cache = (
            self.cache is not None and req["cache"] and budget is None
            and shard_subset is None and not req["include_objects"]
            and not req["explain"]
        )
        if use_cache:
            key = ResultCache.key(
                self.manager.epoch, req["operator"], req["metric"],
                req["k"], req["query"],
            )
            hit = self.cache.get(key)
            if hit is not None:
                body = dict(hit)
                body["cached"] = True
                if request is not None:
                    body["request_id"] = request.request_id
                    body["trace_id"] = request.trace_id
                    body["sampled"] = request.sampled
                self._audit_query(req, body, body["epoch"], request, True)
                return 200, body
        if request is not None and request.tracer is not None:
            # The request's root span (tid 0 on the merged timeline);
            # serial-backend shard spans nest under it, parallel backends
            # attach their buffers to the context instead.
            with request.tracer.span(
                "query",
                op=req["operator"],
                k=req["k"],
                request_id=request.request_id,
                span_id=request.span_id,
            ):
                result, epoch = self.manager.query(
                    req["query"], req["operator"], k=req["k"],
                    metric=req["metric"], budget=budget, request=request,
                    shard_subset=shard_subset,
                )
        else:
            result, epoch = self.manager.query(
                req["query"], req["operator"], k=req["k"],
                metric=req["metric"], budget=budget, request=request,
                shard_subset=shard_subset,
            )
        body = protocol.query_response(
            result, epoch, request=request,
            include_objects=req["include_objects"],
        )
        if req["explain"]:
            body["explain"] = build_explain(
                result, operator=req["operator"], k=req["k"], request=request
            )
        if result.degradation is not None:
            self.registry.inc(
                "repro_serve_degraded_total", 1, {"operator": req["operator"]}
            )
        if use_cache and result.degradation is None:
            # Keyed by the epoch the answer was computed under (atomic with
            # the search), so a concurrent update can't version-skew it.
            # Request-scoped ids are stripped; hits re-stamp their own.
            cacheable = {
                key: value
                for key, value in body.items()
                if key not in protocol.REQUEST_SCOPED_KEYS
            }
            self.cache.put(
                ResultCache.key(
                    epoch, req["operator"], req["metric"],
                    req["k"], req["query"],
                ),
                cacheable,
            )
        self._audit_query(req, body, epoch, request, False)
        return 200, body

    def _audit_query(
        self, req: dict, body: dict, epoch: int, request, cached: bool
    ) -> None:
        if self.audit is not None:
            self.audit.record_query(
                req,
                body,
                epoch,
                request_id=request.request_id if request is not None else None,
                cached=cached,
            )

    def handle_insert(self, payload: Any, request=None) -> tuple[int, dict]:
        """POST /insert: validate and index one object (422/409 on failure)."""
        obj = protocol.parse_insert_request(payload)
        oid, epoch = self.manager.insert(obj.points, obj.probs, oid=obj.oid)
        self.registry.inc("repro_serve_updates_total", 1, {"op": "insert"})
        if self.audit is not None:
            self.audit.record_insert(
                obj, oid, epoch,
                request_id=request.request_id if request is not None else None,
            )
        return 200, protocol.insert_response(oid, epoch)

    def handle_delete(self, payload: Any, request=None) -> tuple[int, dict]:
        """POST /delete: tombstone by oid (404 when not live)."""
        oid = protocol.parse_delete_request(payload)
        _, epoch = self.manager.delete(oid)
        self.registry.inc("repro_serve_updates_total", 1, {"op": "delete"})
        if self.audit is not None:
            self.audit.record_delete(
                oid, epoch,
                request_id=request.request_id if request is not None else None,
            )
        return 200, protocol.delete_response(oid, epoch)

    def profile_body(self, *, top: int | None = 50) -> dict:
        """GET /profile body: this process's profile plus pool workers'.

        With the pool backend the query path runs in persistent worker
        processes the in-process sampler cannot see; each worker runs its
        own profiler (started by ``pool_worker_init``) and this merges
        their cumulative folded stacks into the served aggregate.
        """
        body = self.profiler.snapshot(top=top)
        body["node_id"] = self.node_id
        search = (
            getattr(self.manager, "search", None)
            if self.manager is not None
            else None
        )
        collect = getattr(search, "worker_profiles", None)
        worker_profiles = (
            collect() if collect is not None and self.profile_hz > 0 else {}
        )
        if worker_profiles:
            merged = self.profiler.stacks()
            workers = {}
            for pid, prof in sorted(worker_profiles.items()):
                merge_folded(merged, prof.get("stacks") or {})
                workers[str(pid)] = {
                    "samples": prof.get("samples", 0),
                    "attributed": prof.get("attributed", 0),
                }
                body["samples"] += prof.get("samples", 0)
                body["attributed"] += prof.get("attributed", 0)
            items = sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
            body["workers"] = workers
            body["distinct_stacks"] = len(items)
            body["stacks"] = [
                {"stack": stack, "count": count}
                for stack, count in (items if top is None else items[:top])
            ]
            body["folded"] = "\n".join(
                f"{stack} {count}" for stack, count in items
            )
        return body

    def healthz(self) -> dict:
        """GET /healthz body: liveness, epoch, sizes, drain/compaction truth.

        ``status`` is ``ok`` only when the service is neither draining nor
        mid-compaction; the epoch, shard count, and in-flight gauge let a
        drain monitor verify quiescence instead of trusting the label.
        """
        compacting = self.manager.compacting
        if self.draining:
            status = "draining"
        elif self.recovering:
            status = "recovering"
        elif compacting:
            status = "compacting"
        else:
            status = "ok"
        return {
            "status": status,
            "node_id": self.node_id,
            "epoch": self.manager.epoch,
            "objects": self.manager.size,
            "shards": self.manager.search.shards,
            "backend": self.manager.search.backend,
            "inflight": self._inflight,
            "compacting": compacting,
            "uptime_s": time.time() - self.started_at,
            "start_time": self.started_at,
            "uptime_seconds": time.time() - self.started_at,
            "cache": self.cache.stats() if self.cache is not None else None,
        }

    def status(self) -> dict:
        """GET /status body: health plus SLO accounting, JSON-native.

        Recomputes the derived SLO gauges from the live histograms at read
        time, so the quantiles are current without a scrape loop.  When the
        manager is durable (:class:`repro.serve.durable
        .DurableDatasetManager`) a ``durability`` section rides along, with
        ``wal_seq`` / ``last_snapshot_epoch`` / ``recovery`` also hoisted
        to the top level for one-glance clients.
        """
        body = {
            **self.healthz(),
            "sampler": {
                "rate": self.sampler.rate,
                "decisions": self.sampler.decisions,
                "sampled": self.sampler.sampled,
            },
            "audit": self.audit.stats() if self.audit is not None else None,
            "slo": slo_snapshot(self.registry, self.slo_latency_ms),
            "alerts": self.alerts.snapshot(),
        }
        durability = getattr(self.manager, "durability_status", None)
        if durability is not None:
            section = durability()
            body["durability"] = section
            body["wal_seq"] = section["wal_seq"]
            body["last_snapshot_epoch"] = section["last_snapshot_epoch"]
            body["recovery"] = section["recovery"]
        return body

    def close(self) -> None:
        """Release backend resources (subclasses may own more than a
        manager — the router closes node connections and its health
        thread instead)."""
        self.profiler.stop()
        self.manager.close()


class NNCServer:
    """Asyncio HTTP server wrapping a :class:`ServeApp`.

    Usage::

        server = NNCServer(app, host="127.0.0.1", port=8080)
        asyncio.run(server.run())          # serves until SIGTERM/SIGINT

    or, embedded (tests / smoke)::

        await server.start()               # binds; server.port is real
        ...
        await server.drain()
    """

    def __init__(
        self,
        app: ServeApp,
        *,
        host: str = "127.0.0.1",
        port: int = 8080,
        drain_timeout: float = 30.0,
    ) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: asyncio.AbstractServer | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(2, app.max_inflight),
            thread_name_prefix="repro-serve",
        )

    async def start(self) -> None:
        """Bind and start accepting; updates ``self.port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, release workers."""
        self.app.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_timeout
        while self.app.inflight > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        self._executor.shutdown(wait=True)
        self.app.close()

    # ----------------------------- plumbing ---------------------------- #

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                await self._respond(
                    writer, 400, protocol.error_body("malformed request")
                )
                return
            method, path, payload, headers = request
            await self._route(writer, method, path, payload, headers)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (asyncio.LimitOverrunError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            return None
        if len(head) > _MAX_HEADER:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, value = line.split(":", 1)
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length < 0 or length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        payload = None
        if body:
            try:
                payload = json.loads(body)
            except json.JSONDecodeError:
                return None
        return method.upper(), path, payload, headers

    async def _route(
        self, writer, method: str, path: str, payload, headers=None
    ) -> None:
        app = self.app
        engine_route = method == "POST" and path in (
            "/query", "/insert", "/delete"
        )
        if engine_route and app.draining:
            app._observe(path, 503, 0.0)
            await self._respond(
                writer, 503, protocol.error_body("draining"),
                headers=[("Retry-After", "1")],
            )
            return
        if engine_route:
            if not app.try_acquire():
                app._observe(path, 429, 0.0)
                await self._respond(
                    writer, 429, protocol.error_body("saturated"),
                    headers=[("Retry-After", "1")],
                )
                return
            loop = asyncio.get_running_loop()
            try:
                status, body = await loop.run_in_executor(
                    self._executor, app.dispatch, method, path, payload, headers
                )
            finally:
                app.release()
            await self._respond(writer, status, body)
            return
        status, body = app.dispatch(method, path, payload, headers)
        if path in ("/metrics", "/profile.txt") and status == 200:
            await self._respond_text(writer, 200, body["text"])
        else:
            await self._respond(writer, status, body)

    async def _respond(
        self, writer, status: int, body: dict, headers=None
    ) -> None:
        data = json.dumps(body).encode()
        await self._write(
            writer, status, data, "application/json", headers
        )

    async def _respond_text(self, writer, status: int, text: str) -> None:
        await self._write(
            writer, status, text.encode(), "text/plain; version=0.0.4"
        )

    async def _write(
        self, writer, status: int, data: bytes, ctype: str, headers=None
    ) -> None:
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            409: "Conflict", 422: "Unprocessable Entity",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "Error")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        for name, value in headers or ():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
        await writer.drain()
