"""Durable dataset tier: snapshots + WAL + crash-safe warm restart.

The serve layer's :class:`~repro.serve.updates.DatasetManager` keeps the
dataset in process memory; this module gives it a disk life:

* every acknowledged insert/delete (and forced compaction) appends one
  CRC-checked frame to a :class:`~repro.serve.wal.WriteAheadLog` *before*
  the acknowledgement,
* every ``snapshot_every`` mutations (and on close/drain) the full dataset
  is checkpointed into a **snapshot file** and the WAL truncated,
* on restart, :meth:`DurableDatasetManager.recover` loads the newest valid
  snapshot (zero-copy via ``numpy.memmap``), replays the WAL tail, and
  recovers the **exact** pre-crash durable epoch — a torn final WAL frame
  is tolerated and flagged, never silently dropped.

Snapshot file format (``snap-<epoch>.snap``, atomic tmp+rename)::

    [8B magic "RSNAP1\\n\\0"][u64 manifest_len][manifest JSON][pad to 64]
    [shard 0 blob][pad][shard 1 blob][pad]...

Each shard blob is exactly a :func:`repro.serve.shm.pack_shard` segment —
the same preorder-flattened R-tree + instance-matrix layout the pool
backend publishes to shared memory — so :func:`repro.serve.shm
.unpack_shard` rebuilds a structurally identical search from a memory-map
without copying: instance matrices, probability vectors, MBR corners, and
R-tree node boxes are read-only views into the mapped file.  Objects
larger than RAM page in lazily; :meth:`Snapshot.warm` optionally touches
one byte per page up front so first-query latency is paid at startup.

Crash-exactness contract: under ``fsync=always`` (the default) every
epoch a client saw an acknowledgement for is recoverable after SIGKILL at
*any* instant, including mid-frame (torn tail).  Under ``interval`` /
``never`` the un-synced tail may be lost — the recovered epoch is then the
durable prefix, still self-consistent, and ``repro replay`` will report
the audit records that outran the log.  See DESIGN.md §17.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core.nnc import NNCSearch
from repro.objects.uncertain import UncertainObject
from repro.objects.validate import ValidationReport
from repro.obs.log import log_event
from repro.serve.shard import ShardedSearch
from repro.serve.shm import _aligned, pack_shard, unpack_shard
from repro.serve.updates import DatasetManager
from repro.serve.wal import TornTail, WriteAheadLog, read_wal

__all__ = [
    "DurableDatasetManager",
    "RecoveryError",
    "RecoveryReport",
    "Snapshot",
    "durable_epoch",
    "latest_snapshot",
    "load_snapshot",
    "read_manifest",
    "write_snapshot",
]

SNAP_MAGIC = b"RSNAP1\n\0"
_SNAP_GLOB = "snap-*.snap"
_PAGE = 4096
_MAX_MANIFEST = 64 * 1024 * 1024
#: Snapshot generations kept on disk (newest + one fallback).
_KEEP_SNAPSHOTS = 2


class RecoveryError(RuntimeError):
    """Recovery could not reconstruct a consistent dataset.

    Raised when WAL replay lands on a different epoch than the frame
    recorded — serving would hand out answers for a dataset that never
    existed, so the manager refuses to come up instead.
    """


# --------------------------------------------------------------------- #
# Snapshot files
# --------------------------------------------------------------------- #


class Snapshot:
    """A loaded snapshot: manifest + per-shard searches over a memmap.

    The searches' arrays are zero-copy views into :attr:`mm`; keep the
    handle referenced for as long as the searches serve (the manager holds
    it for its lifetime).  Deleting the file while mapped is safe on
    POSIX — the pages live until the mapping drops.
    """

    def __init__(
        self, path: Path, manifest: dict, searches: list[NNCSearch], mm
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.searches = searches
        self.mm = mm

    def warm(self) -> int:
        """Touch one byte per page so queries never fault cold; returns
        the number of pages walked."""
        view = np.frombuffer(self.mm, dtype=np.uint8)[:: _PAGE]
        # The reduction forces a read of every strided element (= page).
        int(np.add.reduce(view.astype(np.int64)))
        return int(view.shape[0])


def write_snapshot(
    data_dir: str | Path,
    searches: Sequence[NNCSearch],
    *,
    epoch: int,
    wal_seq: int,
    extra: dict | None = None,
    metrics: Any = None,
) -> Path:
    """Checkpoint per-shard searches into ``snap-<epoch>.snap``, atomically.

    The file is fully written and fsynced under a ``.tmp`` name, then
    ``os.replace``d into place and the directory fsynced — a crash at any
    point leaves either the previous snapshot set or the new file, never a
    half-written ``.snap``.
    """
    data_dir = Path(data_dir)
    data_dir.mkdir(parents=True, exist_ok=True)
    blobs = [pack_shard(s) for s in searches]
    spans = []
    off = 0
    for blob in blobs:
        spans.append([off, len(blob), zlib.crc32(blob)])
        off += _aligned(len(blob))
    manifest = {
        "version": 1,
        "epoch": epoch,
        "wal_seq": wal_seq,
        "shards": len(blobs),
        "created": time.time(),
        "spans": spans,
        **(extra or {}),
    }
    mbytes = json.dumps(manifest, separators=(",", ":")).encode()
    data_start = _aligned(len(SNAP_MAGIC) + 8 + len(mbytes))
    path = data_dir / f"snap-{epoch:016d}.snap"
    tmp = path.with_suffix(".snap.tmp")
    with tmp.open("wb") as fh:
        fh.write(SNAP_MAGIC)
        fh.write(len(mbytes).to_bytes(8, "little"))
        fh.write(mbytes)
        fh.write(b"\0" * (data_start - len(SNAP_MAGIC) - 8 - len(mbytes)))
        for i, blob in enumerate(blobs):
            fh.write(blob)
            fh.write(b"\0" * (_aligned(len(blob)) - len(blob)))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(data_dir)
    size = path.stat().st_size
    if metrics is not None:
        metrics.set_gauge("repro_snapshot_bytes", size)
        metrics.inc("repro_snapshots_total")
    return path


def read_manifest(path: str | Path) -> dict:
    """Parse just a snapshot's manifest (no shard rebuild, no data IO)."""
    with Path(path).open("rb") as fh:
        magic = fh.read(len(SNAP_MAGIC))
        if magic != SNAP_MAGIC:
            raise ValueError(f"{path}: bad snapshot magic")
        mlen = int.from_bytes(fh.read(8), "little")
        if mlen <= 0 or mlen > _MAX_MANIFEST:
            raise ValueError(f"{path}: manifest length out of bounds")
        raw = fh.read(mlen)
    if len(raw) != mlen:
        raise ValueError(f"{path}: truncated manifest")
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: manifest is not valid JSON: {exc}")


def load_snapshot(path: str | Path, *, verify: bool = True) -> Snapshot:
    """Map a snapshot and rebuild its per-shard searches, zero-copy.

    Args:
        verify: CRC-check every shard blob (one sequential read of the
            file).  Pass False to defer all IO to query-time paging for
            datasets far larger than RAM.

    Raises:
        ValueError: the file is not a valid snapshot (bad magic, manifest,
            span bounds, or CRC).
    """
    path = Path(path)
    mm = np.memmap(path, dtype=np.uint8, mode="r")
    buf = memoryview(mm)
    if bytes(buf[: len(SNAP_MAGIC)]) != SNAP_MAGIC:
        raise ValueError(f"{path}: bad snapshot magic")
    mlen = int.from_bytes(bytes(buf[len(SNAP_MAGIC): len(SNAP_MAGIC) + 8]),
                          "little")
    mstart = len(SNAP_MAGIC) + 8
    if mlen <= 0 or mstart + mlen > len(buf):
        raise ValueError(f"{path}: manifest length out of bounds")
    try:
        manifest = json.loads(bytes(buf[mstart: mstart + mlen]))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: manifest is not valid JSON: {exc}")
    data_start = _aligned(mstart + mlen)
    searches: list[NNCSearch] = []
    for j, (off, length, crc) in enumerate(manifest["spans"]):
        lo = data_start + off
        if lo + length > len(buf):
            raise ValueError(f"{path}: shard {j} span out of bounds")
        blob = buf[lo: lo + length]
        if verify and zlib.crc32(blob) != crc:
            raise ValueError(f"{path}: shard {j} CRC mismatch")
        searches.append(unpack_shard(blob))
    return Snapshot(path, manifest, searches, mm)


def _load_latest(data_dir: str | Path) -> tuple[Path, "Snapshot"] | None:
    """Newest valid snapshot, loaded (stale ``.tmp`` files cleaned).

    Snapshot names embed the epoch zero-padded, so lexical order is epoch
    order; invalid files (a crash can't produce one, but disks can) are
    skipped in favour of the next older generation.  Returning the loaded
    handle lets recovery reuse the validation load instead of mapping the
    file twice.
    """
    data_dir = Path(data_dir)
    if not data_dir.is_dir():
        return None
    for tmp in data_dir.glob("*.tmp"):
        tmp.unlink(missing_ok=True)
    for path in sorted(data_dir.glob(_SNAP_GLOB), reverse=True):
        try:
            return path, load_snapshot(path)
        except (ValueError, OSError) as exc:
            log_event(
                "durable.snapshot_invalid", level="error",
                path=str(path), error=str(exc),
            )
    return None


def latest_snapshot(data_dir: str | Path) -> Path | None:
    """Path of the newest *valid* snapshot in ``data_dir``, if any."""
    found = _load_latest(data_dir)
    return found[0] if found is not None else None


def durable_epoch(data_dir: str | Path) -> tuple[int, TornTail | None]:
    """The exact epoch a warm restart of ``data_dir`` must recover.

    Newest valid snapshot epoch, advanced by every intact WAL frame past
    it.  Also returns the WAL torn-tail flag, if any — the crashsmoke
    harness uses this as the ground truth to hold a restarted server to.
    """
    snap = latest_snapshot(data_dir)
    epoch = 0
    if snap is not None:
        epoch = int(read_manifest(snap)["epoch"])
    records, torn = read_wal(Path(data_dir) / "wal.log")
    for rec in records:
        if rec.get("epoch", 0) > epoch:
            epoch = int(rec["epoch"])
    return epoch, torn


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# --------------------------------------------------------------------- #
# Recovery report
# --------------------------------------------------------------------- #


@dataclass
class RecoveryReport:
    """What a warm restart did, surfaced on ``/status`` and the CLI."""

    source: str = "cold"  #: "cold" | "snapshot" | "wal-only"
    snapshot_path: str | None = None
    snapshot_epoch: int | None = None
    wal_frames_replayed: int = 0
    wal_torn: dict | None = None  #: TornTail.to_dict() of a torn WAL frame
    audit_torn: dict | None = None  #: torn audit line repaired at restart
    audit_reconciled: int = 0  #: WAL mutations re-appended to the audit log
    repartitioned: bool = False  #: snapshot layout mismatched; rebuilt
    pages_warmed: int = 0
    recovered_epoch: int = 0
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        """JSON-ready form, as served under ``/status``'s ``recovery``."""
        return {
            "source": self.source,
            "snapshot_path": self.snapshot_path,
            "snapshot_epoch": self.snapshot_epoch,
            "wal_frames_replayed": self.wal_frames_replayed,
            "wal_torn": self.wal_torn,
            "audit_torn": self.audit_torn,
            "audit_reconciled": self.audit_reconciled,
            "repartitioned": self.repartitioned,
            "pages_warmed": self.pages_warmed,
            "recovered_epoch": self.recovered_epoch,
            "elapsed_s": self.elapsed_s,
        }


# --------------------------------------------------------------------- #
# Durable manager
# --------------------------------------------------------------------- #


class DurableDatasetManager(DatasetManager):
    """A :class:`DatasetManager` whose dataset survives the process.

    Args:
        objects: the *cold-start* dataset — used only when ``data_dir``
            holds no snapshot and no WAL; a warm restart ignores it and
            recovers the durable state instead.
        data_dir: directory owning ``wal.log`` and ``snap-*.snap``.
        fsync / fsync_interval_s: WAL durability policy
            (:class:`repro.serve.wal.FsyncPolicy`).
        snapshot_every: mutations between checkpoints (0 disables periodic
            snapshots; close/drain still checkpoints).
        warm_pages: touch every snapshot page during recovery so first
            queries never fault cold.
        audit_path: the server's audit log; recovery repairs a torn final
            line and re-appends WAL mutations the audit lost in the crash
            window (flagged ``"recovered": true``) so ``repro replay``
            stays exit-0 after a kill.
        defer_recovery: skip recovery in the constructor; the caller must
            invoke :meth:`recover` before serving engine traffic (the
            HTTP layer answers 503 ``retryable`` meanwhile).
        **kwargs: the :class:`DatasetManager` knobs (shards, partitioner,
            backend, global_fanout, on_invalid, compact_threshold,
            metrics, workers, start_method, profile_hz).
    """

    def __init__(
        self,
        objects: Sequence[UncertainObject] = (),
        *,
        data_dir: str | Path,
        fsync: str = "always",
        fsync_interval_s: float = 0.5,
        snapshot_every: int = 256,
        warm_pages: bool = False,
        audit_path: str | Path | None = None,
        defer_recovery: bool = False,
        shards: int = 1,
        partitioner: str = "round-robin",
        backend: str = "auto",
        global_fanout: int = 16,
        on_invalid: str = "strict",
        compact_threshold: float = 0.3,
        metrics: Any = None,
        workers: int | None = None,
        start_method: str | None = None,
        profile_hz: float = 0.0,
    ) -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_interval_s = fsync_interval_s
        self.snapshot_every = snapshot_every
        self.warm_pages = warm_pages
        self.audit_path = Path(audit_path) if audit_path else None
        self._cfg = {
            "shards": shards,
            "partitioner": partitioner,
            "backend": backend,
            "global_fanout": global_fanout,
            "workers": workers,
            "start_method": start_method,
            "profile_hz": profile_hz,
        }
        self._pending_objects = list(objects)
        self._durable_ready = False
        self._since_snapshot = 0
        self._last_snapshot_epoch: int | None = None
        self._snapshot: Snapshot | None = None
        self.wal: WriteAheadLog | None = None
        self.recovery: RecoveryReport | None = None
        # Minimal pre-recovery state (empty dataset): health endpoints work
        # and the write lock exists; engine traffic is gated by the HTTP
        # layer's `recovering` 503 until recover() swaps the real data in.
        self._init_from_search(
            ShardedSearch([], shards=shards, partitioner=partitioner,
                          backend=backend, global_fanout=global_fanout,
                          metrics=metrics, workers=workers,
                          start_method=start_method, profile_hz=profile_hz),
            on_invalid=on_invalid,
            compact_threshold=compact_threshold,
            metrics=metrics,
            load_report=ValidationReport(policy=on_invalid),
        )
        if not defer_recovery:
            self.recover()

    # ----------------------------- recovery ---------------------------- #

    def recover(self) -> RecoveryReport:
        """Load snapshot + replay WAL tail; returns the recovery report.

        Idempotent in effect (a second call re-derives the same state from
        disk) but intended to run exactly once, before serving.
        """
        t0 = time.perf_counter()
        report = RecoveryReport()
        wal_path = self.data_dir / "wal.log"
        records, torn = read_wal(wal_path)
        if torn is not None:
            report.wal_torn = torn.to_dict()
            log_event(
                "durable.wal_torn_tail", level="error",
                path=str(wal_path), **torn.to_dict(),
            )
        found = _load_latest(self.data_dir)
        handle: Snapshot | None = None
        base_epoch = 0
        snap_wal_seq = None
        cfg = self._cfg
        if found is not None:
            snap_path, handle = found
            base_epoch = int(handle.manifest["epoch"])
            snap_wal_seq = int(handle.manifest.get("wal_seq", 0))
            report.source = "snapshot"
            report.snapshot_path = str(snap_path)
            report.snapshot_epoch = base_epoch
            compatible = (
                len(handle.searches) == cfg["shards"]
                and handle.manifest.get("partitioner") == cfg["partitioner"]
            )
            if compatible:
                new_search = ShardedSearch.from_searches(
                    handle.searches,
                    partitioner=cfg["partitioner"],
                    backend=cfg["backend"],
                    global_fanout=cfg["global_fanout"],
                    metrics=self.metrics,
                    workers=cfg["workers"],
                    start_method=cfg["start_method"],
                    profile_hz=cfg["profile_hz"],
                )
            else:
                # Layout changed across the restart (different --shards /
                # --partitioner): materialise the live objects out of the
                # map and repartition from scratch.  Same epoch, same
                # answers — just no longer zero-copy.
                report.repartitioned = True
                objs = [
                    UncertainObject(
                        np.array(o.points), np.array(o.probs), oid=o.oid
                    )
                    for s in handle.searches
                    for o in s.live_objects()
                ]
                new_search = self._build_search(objs)
                handle = None
        else:
            if records:
                report.source = "wal-only"
            from repro.objects.validate import validate_objects

            kept, self.load_report = validate_objects(
                self._pending_objects,
                on_invalid=self.on_invalid,
                metrics=self.metrics,
            )
            self._assign_missing_oids(kept)
            new_search = self._build_search(kept)
        if handle is not None and self.warm_pages:
            report.pages_warmed = handle.warm()
        with self._lock.write():
            old = self.search
            self.search = new_search
            self._registry = self._build_registry(new_search)
            self._epoch = base_epoch
            self._export_gauges()
        old.close()
        self._snapshot = handle
        self._last_snapshot_epoch = (
            report.snapshot_epoch if found is not None else None
        )
        start_seq = max(
            [snap_wal_seq or 0]
            + [int(r.get("seq", -1)) + 1 for r in records]
        )
        self.wal = WriteAheadLog(
            wal_path,
            fsync=self.fsync,
            fsync_interval_s=self.fsync_interval_s,
            metrics=self.metrics,
            start_seq=start_seq,
        )
        report.wal_frames_replayed = self._replay(records, base_epoch)
        if self.audit_path is not None:
            self._reconcile_audit(records, report)
        self._durable_ready = True
        # Checkpoint now when the WAL carried state (or was torn): folds the
        # replayed tail into a fresh snapshot, truncates the log, and makes
        # the very first boot durable before any traffic.
        if (
            report.source == "cold"
            or report.wal_frames_replayed
            or report.repartitioned
            or torn is not None
        ):
            with self._lock.write():
                self._snapshot_locked()
        report.recovered_epoch = self._epoch
        report.elapsed_s = time.perf_counter() - t0
        self.recovery = report
        if self.metrics is not None:
            self.metrics.observe("repro_recovery_seconds", report.elapsed_s)
        log_event("durable.recovered", **report.to_dict())
        return report

    def _build_search(self, objects: list[UncertainObject]) -> ShardedSearch:
        cfg = self._cfg
        return ShardedSearch(
            objects,
            shards=cfg["shards"],
            partitioner=cfg["partitioner"],
            backend=cfg["backend"],
            global_fanout=cfg["global_fanout"],
            metrics=self.metrics,
            workers=cfg["workers"],
            start_method=cfg["start_method"],
            profile_hz=cfg["profile_hz"],
        )

    def _replay(self, records: list[dict], base_epoch: int) -> int:
        """Re-apply WAL frames past the snapshot; exact-epoch asserted."""
        replayed = 0
        for rec in records:
            epoch = int(rec.get("epoch", 0))
            kind = rec.get("kind")
            # A frame the snapshot already covers is skipped (the log can
            # trail a crash between snapshot-rename and truncate).  Compact
            # frames don't bump the epoch, so one recorded *at* the base
            # epoch re-runs — re-compacting is an idempotent no-op.
            if epoch <= base_epoch and not (
                kind == "compact" and epoch == base_epoch
            ):
                continue
            if kind == "insert":
                _, got = self.insert(
                    rec["points"], rec["probs"], oid=rec["oid"]
                )
            elif kind == "delete":
                _, got = self.delete(rec["oid"])
            elif kind == "compact":
                with self._lock.write():
                    self._compact_locked(0.0)
                got = self._epoch
            else:
                raise RecoveryError(
                    f"unknown WAL record kind {kind!r} (seq {rec.get('seq')})"
                )
            if got != epoch:
                raise RecoveryError(
                    f"WAL replay diverged: frame seq {rec.get('seq')} "
                    f"({kind}) recorded epoch {epoch}, replay reached {got}"
                )
            replayed += 1
        return replayed

    def _reconcile_audit(
        self, records: list[dict], report: RecoveryReport
    ) -> None:
        """Repair the audit log's crash window so ``repro replay`` passes.

        Two crash artifacts are possible: a torn final JSONL line (the
        process died mid-append) and WAL-durable mutations whose audit
        record never made it (died between the WAL fsync and the audit
        write).  The first is truncated away, the second re-appended from
        the WAL frame — which carries the full instance matrix — flagged
        ``"recovered": true``.
        """
        from repro.serve.audit import load_audit

        if not self.audit_path.exists():
            audit_records: list[dict] = []
        else:
            audit_records = load_audit(self.audit_path)
            tail = getattr(audit_records, "torn_tail", None)
            if tail is not None:
                report.audit_torn = tail.to_dict()
                with self.audit_path.open("rb+") as fh:
                    fh.truncate(tail.offset)
                    fh.flush()
                    os.fsync(fh.fileno())
                log_event(
                    "durable.audit_torn_tail", level="error",
                    path=str(self.audit_path), **tail.to_dict(),
                )
        audited = max(
            (
                int(r.get("epoch", 0))
                for r in audit_records
                if r.get("kind") in ("insert", "delete")
            ),
            default=0,
        )
        missing = [
            r for r in records
            if r.get("kind") in ("insert", "delete")
            and int(r.get("epoch", 0)) > audited
        ]
        if not missing:
            return
        with self.audit_path.open("a", encoding="utf-8") as fh:
            for rec in missing:
                row = {
                    "kind": rec["kind"],
                    "seq": rec.get("seq", 0),
                    "ts": time.time(),
                    "request_id": None,
                    "epoch": rec["epoch"],
                    "oid": rec["oid"],
                    "recovered": True,
                }
                if rec["kind"] == "insert":
                    row["points"] = rec["points"]
                    row["probs"] = rec["probs"]
                fh.write(json.dumps(row, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        report.audit_reconciled = len(missing)
        log_event(
            "durable.audit_reconciled", count=len(missing),
            path=str(self.audit_path),
        )

    # ------------------------- mutation logging ------------------------ #

    def _mutated(self, kind: str, *, oid=None, obj=None, epoch: int = 0,
                 removed: int = 0) -> None:
        """WAL-append the mutation (inside the write lock, pre-ack)."""
        if not self._durable_ready or self.wal is None:
            return  # recovery replay / pre-recovery: already on disk
        rec: dict = {"kind": kind, "epoch": epoch}
        if kind == "insert":
            rec["oid"] = oid
            rec["points"] = [list(map(float, p)) for p in obj.points]
            rec["probs"] = [float(p) for p in obj.probs]
        elif kind == "delete":
            rec["oid"] = oid
        else:
            rec["removed"] = removed
        self.wal.append(rec)
        self._since_snapshot += 1
        if self.snapshot_every and self._since_snapshot >= self.snapshot_every:
            self._snapshot_locked()

    def _snapshot_locked(self) -> None:
        """Checkpoint + WAL truncate; caller holds the write lock."""
        path = write_snapshot(
            self.data_dir,
            self.search.searches,
            epoch=self._epoch,
            wal_seq=self.wal.seq if self.wal is not None else 0,
            extra={
                "partitioner": self._cfg["partitioner"],
                "fanout": self._cfg["global_fanout"],
                "objects": len(self._registry),
            },
            metrics=self.metrics,
        )
        if self.wal is not None:
            self.wal.reset()
        self._since_snapshot = 0
        self._last_snapshot_epoch = self._epoch
        self._prune_snapshots()
        log_event(
            "durable.snapshot", path=str(path), epoch=self._epoch,
            bytes=path.stat().st_size,
        )

    def _prune_snapshots(self) -> None:
        snaps = sorted(self.data_dir.glob(_SNAP_GLOB))
        for stale in snaps[:-_KEEP_SNAPSHOTS]:
            # Unlink-while-mapped is safe: an open memmap keeps the pages.
            stale.unlink(missing_ok=True)

    # ------------------------------ status ----------------------------- #

    def durability_status(self) -> dict:
        """``/status`` durability section (wal_seq, snapshots, recovery)."""
        return {
            "data_dir": str(self.data_dir),
            "fsync": self.fsync,
            "wal_seq": self.wal.seq if self.wal is not None else 0,
            "wal_appends": self.wal.appends if self.wal is not None else 0,
            "last_snapshot_epoch": self._last_snapshot_epoch,
            "snapshot_every": self.snapshot_every,
            "since_snapshot": self._since_snapshot,
            "recovery": (
                self.recovery.to_dict() if self.recovery is not None else None
            ),
        }

    def close(self) -> None:
        """Final checkpoint, WAL close, then the base teardown.

        Ordering matters at SIGTERM: the snapshot (atomic tmp+rename) and
        WAL truncate happen while the search is still alive, then pools and
        shared memory are released.  Idempotent.
        """
        if getattr(self, "_closed", False):
            return
        if self._durable_ready and self.wal is not None:
            with self._lock.write():
                if self._since_snapshot:
                    self._snapshot_locked()
            self.wal.close()
        super().close()

