"""Serving layer: sharded, cached, concurrent NNC queries with updates.

Layers (bottom-up):

* :mod:`repro.serve.shard` — scatter-gather search over K shards, pinned
  equal to the single-shard answer via the Theorem-3 superset argument.
* :mod:`repro.serve.cache` — versioned LRU result cache keyed by dataset
  epoch (stale hits are structurally impossible).
* :mod:`repro.serve.updates` — dynamic inserts/deletes with validation,
  tombstone deletes, periodic compaction, and epoch bumps.
* :mod:`repro.serve.audit` — per-query JSONL audit log with SHA-1 answer
  digests, plus deterministic replay verification (``repro replay``).
* :mod:`repro.serve.wal` / :mod:`repro.serve.durable` — durable tier:
  CRC-framed write-ahead log, atomic memory-mapped snapshots, and a
  crash-safe warm restart that recovers the exact pre-crash epoch
  (DESIGN.md §17; kill-tested by ``python -m repro.serve.crashsmoke``).
* :mod:`repro.serve.protocol` / :mod:`repro.serve.server` — JSON-over-HTTP
  front end (stdlib asyncio) with budget admission, graceful drain,
  request-scoped tracing (one merged Chrome trace per sampled request),
  structured logs, and SLO accounting on ``/metrics`` + ``/status``.
"""

from repro.serve.audit import AuditLog, ReplayReport, answer_digest, load_audit, replay_audit
from repro.serve.cache import ResultCache, query_digest
from repro.serve.durable import (
    DurableDatasetManager,
    RecoveryReport,
    durable_epoch,
    load_snapshot,
    write_snapshot,
)
from repro.serve.shard import (
    BACKENDS,
    PARTITIONERS,
    ShardedResult,
    ShardedSearch,
    partition_centroid,
    partition_round_robin,
)
from repro.serve.updates import DatasetManager
from repro.serve.wal import TornTail, WriteAheadLog, read_wal

__all__ = [
    "AuditLog",
    "BACKENDS",
    "PARTITIONERS",
    "DatasetManager",
    "DurableDatasetManager",
    "RecoveryReport",
    "ReplayReport",
    "ResultCache",
    "ShardedResult",
    "ShardedSearch",
    "TornTail",
    "WriteAheadLog",
    "answer_digest",
    "durable_epoch",
    "load_audit",
    "load_snapshot",
    "partition_centroid",
    "partition_round_robin",
    "query_digest",
    "read_wal",
    "replay_audit",
    "write_snapshot",
]
