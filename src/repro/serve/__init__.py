"""Serving layer: sharded, cached, concurrent NNC queries with updates.

Layers (bottom-up):

* :mod:`repro.serve.shard` — scatter-gather search over K shards, pinned
  equal to the single-shard answer via the Theorem-3 superset argument.
* :mod:`repro.serve.cache` — versioned LRU result cache keyed by dataset
  epoch (stale hits are structurally impossible).
* :mod:`repro.serve.updates` — dynamic inserts/deletes with validation,
  tombstone deletes, periodic compaction, and epoch bumps.
* :mod:`repro.serve.protocol` / :mod:`repro.serve.server` — JSON-over-HTTP
  front end (stdlib asyncio) with budget admission and graceful drain.
"""

from repro.serve.cache import ResultCache, query_digest
from repro.serve.shard import (
    BACKENDS,
    PARTITIONERS,
    ShardedResult,
    ShardedSearch,
    partition_centroid,
    partition_round_robin,
)
from repro.serve.updates import DatasetManager

__all__ = [
    "BACKENDS",
    "PARTITIONERS",
    "DatasetManager",
    "ResultCache",
    "ShardedResult",
    "ShardedSearch",
    "partition_centroid",
    "partition_round_robin",
    "query_digest",
]
