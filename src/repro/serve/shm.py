"""Shared-memory shard snapshots for the persistent worker-pool backend.

The ``pool`` backend of :class:`repro.serve.shard.ShardedSearch` keeps one
long-lived, spawn-safe worker-process pool across queries **and** mutations.
Workers never inherit shard state by fork; instead each shard is *published*
into a :class:`multiprocessing.shared_memory.SharedMemory` segment that
workers attach read-only and wrap in zero-copy NumPy views.

Segment layout (one segment per ``(epoch, shard)``)::

    [u64 header_len][header JSON][pad to 64][array blob ...]

The header records, for each named array, ``(dtype, shape, offset)`` into
the blob, plus tree metadata.  The arrays are::

    points   (M, d) f8   all instance coordinates, object-major
    probs    (M,)   f8   matching instance probabilities
    offsets  (n+1,) i8   object i's instances are rows [offsets[i], offsets[i+1])
    obj_lo   (n, d) f8   per-object MBR corners (the R-tree entry boxes)
    obj_hi   (n, d) f8
    node_lo  (N, d) f8   flattened R-tree node MBRs (preorder, root first)
    node_hi  (N, d) f8
    node_meta (N, 3) i8  (is_leaf, first, count) — leaves slice ``leaf_entry``,
                         internal nodes slice ``child_idx``
    child_idx (C,)  i8   node indices of internal children
    leaf_entry (L,) i8   object indices of leaf entries
    masked    (t,)  i8   object indices currently tombstoned

Publishing follows an **append-then-swap** protocol: the parent writes the
new epoch's segments *first* (append), then flips the epoch stamped into
task tuples (swap), and only unlinks a segment once a newer epoch has
retired it.  The previous epoch is always retained, so a task that was
submitted just before a mutation still attaches its pre-swap segment and
answers against the pre-swap dataset.  Workers re-attach lazily when a task
names a segment they have not mapped, and drop older mappings then — they
are never restarted on mutation.

The per-shard :class:`~repro.core.nnc.NNCSearch` a worker rebuilds from a
segment is structurally identical to the parent's (same object order, same
tree topology, same tombstones), so answers are bit-identical to the serial
cascade — the exactness pin extends to this backend unchanged.
"""

from __future__ import annotations

import gc
import json
import os
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.geometry.mbr import MBR
from repro.index.rtree import RTree, RTreeNode
from repro.objects.uncertain import UncertainObject
from repro.obs.request import RequestContext, bind
from repro.obs.tracer import Tracer
from repro.resilience.budget import Budget

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = [
    "SegmentStore",
    "attach_shard",
    "pack_shard",
    "segment_exists",
    "unpack_shard",
]

_ALIGN = 64
_MAGIC_PAD = b"\x00"

#: Process-wide sequence for unique segment name prefixes (several
#: ShardedSearch instances may coexist in one process, e.g. under pytest).
_PREFIX_SEQ = 0


def make_prefix() -> str:
    """A short, process-unique shared-memory name prefix."""
    global _PREFIX_SEQ
    _PREFIX_SEQ += 1
    return f"repro{os.getpid():x}x{_PREFIX_SEQ:x}"


# --------------------------------------------------------------------- #
# Packing (parent side)
# --------------------------------------------------------------------- #


def _flatten_tree(tree: RTree, index_of: dict[int, int]):
    """Preorder-flatten an R-tree into the segment's node/entry arrays.

    ``index_of`` maps ``id(obj) -> snapshot index``; leaf entries are stored
    as those indices so the worker can rebuild entries against its own
    zero-copy objects.
    """
    if tree.root.mbr is None:
        d = 0
        return (
            np.empty((0, d)), np.empty((0, d)),
            np.empty((0, 3), dtype=np.int64),
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
        )
    order: list[RTreeNode] = [tree.root]
    i = 0
    while i < len(order):
        node = order[i]
        i += 1
        if not node.is_leaf:
            order.extend(node.children)
    node_index = {id(n): i for i, n in enumerate(order)}
    d = tree.root.mbr.dim
    node_lo = np.empty((len(order), d))
    node_hi = np.empty((len(order), d))
    node_meta = np.empty((len(order), 3), dtype=np.int64)
    child_idx: list[int] = []
    leaf_entry: list[int] = []
    for i, node in enumerate(order):
        mbr = node.mbr
        if mbr is None:  # empty node (possible transiently after deletes)
            node_lo[i] = np.zeros(d)
            node_hi[i] = np.zeros(d)
        else:
            node_lo[i] = mbr.lo
            node_hi[i] = mbr.hi
        if node.is_leaf:
            node_meta[i] = (1, len(leaf_entry), len(node.entries))
            leaf_entry.extend(index_of[id(obj)] for _, obj in node.entries)
        else:
            node_meta[i] = (0, len(child_idx), len(node.children))
            child_idx.extend(node_index[id(c)] for c in node.children)
    return (
        node_lo,
        node_hi,
        node_meta,
        np.asarray(child_idx, dtype=np.int64),
        np.asarray(leaf_entry, dtype=np.int64),
    )


def pack_shard(search: NNCSearch) -> bytes:
    """Serialize one shard's full search state into a segment blob.

    The snapshot covers **all** objects of the shard, including tombstoned
    ones (the ``masked`` array carries the tombstones), so the worker's
    rebuilt search traverses exactly the structures the parent would.
    """
    objects = list(search.objects)
    index_of = {id(o): i for i, o in enumerate(objects)}
    d = objects[0].dim if objects else 0
    counts = [len(o) for o in objects]
    offsets = np.zeros(len(objects) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if objects:
        points = np.concatenate([o.points for o in objects], axis=0)
        probs = np.concatenate([o.probs for o in objects])
        obj_lo = np.stack([o.mbr.lo for o in objects])
        obj_hi = np.stack([o.mbr.hi for o in objects])
    else:
        points = np.empty((0, d))
        probs = np.empty(0)
        obj_lo = np.empty((0, d))
        obj_hi = np.empty((0, d))
    node_lo, node_hi, node_meta, child_idx, leaf_entry = _flatten_tree(
        search.tree, index_of
    )
    masked = np.asarray(
        sorted(index_of[key] for key in search._masked), dtype=np.int64
    )
    arrays = {
        "points": np.ascontiguousarray(points, dtype=np.float64),
        "probs": np.ascontiguousarray(probs, dtype=np.float64),
        "offsets": offsets,
        "obj_lo": np.ascontiguousarray(obj_lo, dtype=np.float64),
        "obj_hi": np.ascontiguousarray(obj_hi, dtype=np.float64),
        "node_lo": np.ascontiguousarray(node_lo, dtype=np.float64),
        "node_hi": np.ascontiguousarray(node_hi, dtype=np.float64),
        "node_meta": np.ascontiguousarray(node_meta, dtype=np.int64),
        "child_idx": child_idx,
        "leaf_entry": leaf_entry,
        "masked": masked,
    }
    layout: dict[str, list] = {}
    off = 0
    for name, arr in arrays.items():
        layout[name] = [arr.dtype.str, list(arr.shape), off]
        off += _aligned(arr.nbytes)
    header = {
        "arrays": layout,
        "dim": d,
        "n_objects": len(objects),
        "oids": [o.oid for o in objects],
        "tree_size": len(search.tree),
        "max_entries": search.tree.max_entries,
        "min_entries": search.tree.min_entries,
        "fanout": search._fanout,
    }
    header_bytes = json.dumps(header).encode()
    data_start = _aligned(8 + len(header_bytes))
    blob = bytearray(data_start + off)
    blob[:8] = len(header_bytes).to_bytes(8, "little")
    blob[8:8 + len(header_bytes)] = header_bytes
    for name, arr in arrays.items():
        start = data_start + layout[name][2]
        blob[start:start + arr.nbytes] = arr.tobytes()
    return bytes(blob)


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


# --------------------------------------------------------------------- #
# Segment ownership (parent side)
# --------------------------------------------------------------------- #


class SegmentStore:
    """Owner of the shared-memory segments a pool's workers attach.

    One store per :class:`~repro.serve.shard.ShardedSearch`; the store
    creates, retains, and unlinks segments.  ``publish`` implements the
    append half of the append-then-swap protocol; callers flip the epoch in
    their task tuples afterwards (the swap).  Per shard, the current and
    previous segments are retained so in-flight tasks stamped with the
    previous epoch still attach; anything older is unlinked.
    """

    def __init__(self, prefix: str | None = None) -> None:
        self.prefix = prefix or make_prefix()
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def publish(self, epoch: int, shard_idx: int, search: NNCSearch) -> str:
        """Write one shard's snapshot as a fresh segment; returns its name."""
        blob = pack_shard(search)
        name = f"{self.prefix}e{epoch}s{shard_idx}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, len(blob))
        )
        shm.buf[: len(blob)] = blob
        self._segments[name] = shm
        return name

    def retire(self, name: str) -> None:
        """Unlink one segment (no-op if already gone).

        Safe while a worker still maps it: the OS frees the pages only when
        the last attachment closes; only *new* attaches by name will fail.
        """
        shm = self._segments.pop(name, None)
        if shm is None:
            return
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def names(self) -> list[str]:
        """Names of all live (not yet retired) segments."""
        return sorted(self._segments)

    def close(self) -> None:
        """Unlink every remaining segment (drain/SIGTERM path)."""
        for name in list(self._segments):
            self.retire(name)


def segment_exists(name: str) -> bool:
    """Probe whether a segment is still linked (test/diagnostic helper)."""
    try:
        shm = _attach_untracked(name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


# --------------------------------------------------------------------- #
# Attaching (worker side)
# --------------------------------------------------------------------- #

_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment *without* registering it with the resource tracker.

    Before Python 3.13 every ``SharedMemory`` registers with the tracker
    even when merely attaching; left alone, a worker exit would unlink
    segments the parent still owns.  Unregistering after the fact is wrong
    under the ``fork`` start method (parent and worker share one tracker,
    so the worker would erase the *owner's* registration); suppressing the
    registration during the attach call is safe under every start method.
    """
    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def attach_shard(name: str) -> tuple[shared_memory.SharedMemory, NNCSearch]:
    """Attach a published segment and rebuild its shard search, zero-copy.

    Raises:
        FileNotFoundError: the segment was retired (the caller should treat
            this as a stale-epoch task and surface a backend error).
    """
    shm = _attach_untracked(name)
    return shm, unpack_shard(shm.buf)


def unpack_shard(buf) -> NNCSearch:
    """Rebuild a shard search over any :func:`pack_shard` blob, zero-copy.

    ``buf`` is any buffer holding a pack_shard blob — a shared-memory
    segment's ``.buf`` (the pool backend) or a memoryview into a
    memory-mapped snapshot file (:mod:`repro.serve.durable`).  Every
    instance matrix, probability vector, MBR corner, and R-tree node box
    is a read-only NumPy view into that buffer; only the Python object
    shells (``UncertainObject``, ``RTreeNode``) are materialised.  The
    rebuilt search is structurally identical to the packed one (same
    object order, tree topology, tombstones), so its answers are
    bit-identical — the exactness pin extends to every consumer of this
    layout.
    """
    header_len = int.from_bytes(bytes(buf[:8]), "little")
    header = json.loads(bytes(buf[8:8 + header_len]))
    data_start = _aligned(8 + header_len)
    arrays: dict[str, np.ndarray] = {}
    for arr_name, (dtype, shape, off) in header["arrays"].items():
        count = int(np.prod(shape)) if shape else 1
        arr = np.frombuffer(
            buf, dtype=np.dtype(dtype), count=count, offset=data_start + off
        ).reshape(shape)
        arr.flags.writeable = False
        arrays[arr_name] = arr

    offsets = arrays["offsets"]
    points, probs = arrays["points"], arrays["probs"]
    obj_lo, obj_hi = arrays["obj_lo"], arrays["obj_hi"]
    objects: list[UncertainObject] = []
    for i, oid in enumerate(header["oids"]):
        lo, hi = offsets[i], offsets[i + 1]
        obj = UncertainObject.__new__(UncertainObject)
        obj.points = points[lo:hi]
        obj.probs = probs[lo:hi]
        obj.oid = oid
        obj._mbr = MBR(obj_lo[i], obj_hi[i])
        obj._local_tree = None
        objects.append(obj)

    tree = RTree(
        max_entries=header["max_entries"], min_entries=header["min_entries"]
    )
    tree._size = header["tree_size"]
    node_lo, node_hi = arrays["node_lo"], arrays["node_hi"]
    node_meta = arrays["node_meta"]
    child_idx, leaf_entry = arrays["child_idx"], arrays["leaf_entry"]
    if len(node_meta):
        nodes = [RTreeNode(bool(meta[0])) for meta in node_meta]
        for i, node in enumerate(nodes):
            is_leaf, first, count = (int(v) for v in node_meta[i])
            if count:
                node.mbr = MBR(node_lo[i], node_hi[i])
            if is_leaf:
                node.entries = [
                    (objects[j].mbr, objects[j])
                    for j in leaf_entry[first:first + count]
                ]
            else:
                node.children = [
                    nodes[c] for c in child_idx[first:first + count]
                ]
        tree.root = nodes[0]

    search = NNCSearch([], header["fanout"])
    search.objects = objects
    search.tree = tree
    search._masked = {
        id(objects[i]): objects[i] for i in arrays["masked"]
    }
    return search


# --------------------------------------------------------------------- #
# Pool worker entry points (importable, hence spawn-safe)
# --------------------------------------------------------------------- #

#: Worker-local attachment cache: shard index -> (segment name, shm, search).
#: At most one epoch per shard is kept mapped; a task naming a different
#: segment re-attaches and closes the stale mapping.
_ATTACHED: dict[int, tuple[str, shared_memory.SharedMemory, NNCSearch]] = {}


def _worker_search(shard_idx: int, name: str) -> NNCSearch:
    cached = _ATTACHED.get(shard_idx)
    if cached is not None and cached[0] == name:
        return cached[2]
    shm, search = attach_shard(name)
    _ATTACHED[shard_idx] = (name, shm, search)
    if cached is not None:
        _release(cached)
    return search


def _release(cached: tuple[str, shared_memory.SharedMemory, NNCSearch]) -> None:
    """Unmap a stale epoch's segment once its NumPy views are collectable.

    The search's arrays are zero-copy views into the mapping, so the mmap
    cannot close while any survive; dropping the cache entry makes them
    unreachable, and a collect sweeps the R-tree node graph.  If a view
    still escaped (e.g. a result held by the caller), closing would raise
    ``BufferError`` — then we simply leave the mapping to close with the
    view's finalizer instead of failing the query.
    """
    _, shm, search = cached
    del cached, search
    gc.collect()
    try:
        shm.close()
    except BufferError:  # pragma: no cover - escaped view; close deferred
        pass


def pool_run_one(task: tuple) -> tuple:
    """Execute one shard search inside a pool worker.

    The task tuple is ``(shard_idx, epoch, segment_name, query, operator,
    k, metric, kernels, budget_limits, request_wire)`` — a few hundred
    bytes regardless of dataset size; shard state arrives through shared
    memory only.  The return contract matches the fork backend: candidate
    *indices* into the snapshot order, counts, elapsed, degradation report
    dict, counters snapshot, span dicts — plus the worker pid and the epoch
    answered, for lifecycle assertions and diagnostics.
    """
    (
        shard_idx, epoch, name, query, operator,
        k, metric, kernels, limits, wire,
    ) = task
    try:
        search = _worker_search(shard_idx, name)
    except FileNotFoundError:
        return ("error", os.getpid(), epoch, f"segment {name} retired")
    budget = Budget(**limits) if limits is not None else None
    spans: list[dict] | None = None
    if wire is not None:
        child = RequestContext.from_wire(wire)
        tracer = Tracer(epoch=child.trace_epoch)
        ctx = QueryContext(
            query, metric=metric, kernels=kernels, budget=budget, tracer=tracer
        )
        with bind(child):
            with tracer.span(
                "shard-search",
                shard=shard_idx,
                span_id=child.span_id,
                parent_span_id=child.parent_span_id,
            ):
                result = search.run(query, operator, k=k, ctx=ctx)
        spans = [s.to_dict() for s in tracer.spans()]
    else:
        ctx = QueryContext(query, metric=metric, kernels=kernels, budget=budget)
        result = search.run(query, operator, k=k, ctx=ctx)
    index_of = {id(o): i for i, o in enumerate(search.objects)}
    idxs = [index_of[id(c)] for c in result.candidates]
    report = (
        result.degradation.to_dict() if result.degradation is not None else None
    )
    return (
        "ok",
        os.getpid(),
        epoch,
        idxs,
        list(result.dominator_counts),
        result.elapsed,
        report,
        result.counters.snapshot(),
        spans,
    )


#: Worker-local continuous profiler, started by :func:`pool_worker_init`
#: when the parent serves with ``--profile-hz``.  Sampled stacks attribute
#: to requests through the same ``bind()`` thread mirror the parent uses
#: (the request context crosses in the task's wire form).
_WORKER_PROFILER = None


def pool_worker_init(profile_hz: float = 0.0) -> None:
    """Pool worker initializer: clean attachment cache, optional profiler."""
    global _WORKER_PROFILER
    _ATTACHED.clear()
    if profile_hz and profile_hz > 0:
        from repro.obs.profile import SamplingProfiler

        _WORKER_PROFILER = SamplingProfiler(profile_hz).start()


def pool_profile_snapshot() -> tuple[int, dict | None]:
    """Snapshot this worker's cumulative profile: ``(pid, profile|None)``.

    Submitted by :meth:`ShardedSearch.worker_profiles`; cumulative, so a
    worker answering the same request twice is harmless (the caller keys
    by pid and overwrites).  ``None`` when profiling is disabled.
    """
    if _WORKER_PROFILER is None:
        return os.getpid(), None
    return os.getpid(), {
        "stacks": _WORKER_PROFILER.stacks(),
        "samples": _WORKER_PROFILER.samples,
        "attributed": _WORKER_PROFILER.attributed,
        "hz": _WORKER_PROFILER.hz,
    }
