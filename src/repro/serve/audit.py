"""Per-query audit log and deterministic replay verification.

Every served mutation and query appends one JSONL record to an
:class:`AuditLog`: the full request (points, probs, operator, k, metric),
the dataset **epoch** it executed against, a SHA-1 **answer digest**, and
the degradation/cache flags.  The log is the service's black box — and,
because the engine is deterministic for exact (non-degraded) answers, it
is also *replayable*: :func:`replay_audit` rebuilds the dataset, re-applies
the recorded mutations in epoch order, re-executes each exact query at its
recorded epoch, and verifies the answer digests bit-for-bit.

Determinism argument (DESIGN.md §14): an exact answer is a pure function
of (dataset at epoch, query points/probs, operator, k, metric) — the
engine has no RNG, JSON round-trips floats exactly (``repr`` shortest
round-trip), and ``repro.objects.io`` round-trips oids — so a digest
mismatch on replay means the answer changed, not the encoding.  Degraded
answers depend on wall-clock budgets and are skipped (recorded, audited,
but not digest-verified).

The ``repro replay`` CLI verb drives :func:`replay_audit` against a saved
dataset and exits non-zero on any mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.serve.wal import FsyncPolicy, TornTail

__all__ = [
    "AuditLog",
    "AuditRecords",
    "ReplayReport",
    "answer_digest",
    "load_audit",
    "replay_audit",
]


def answer_digest(candidates: Iterable[dict]) -> str:
    """SHA-1 digest of an answer's ``(oid, dominators)`` pairs.

    Canonicalised by sorting on the JSON encoding of each pair, so the
    digest is independent of candidate order (shard backends may tie-break
    equal distances differently) and stable across processes.
    """
    pairs = sorted(
        json.dumps([c["oid"], c["dominators"]], separators=(",", ":"))
        for c in candidates
    )
    h = hashlib.sha1()
    for pair in pairs:
        h.update(pair.encode())
        h.update(b"\n")
    return h.hexdigest()


class AuditLog:
    """Thread-safe JSONL audit sink (one record per served request).

    Args:
        path: output file, opened in append mode (a restarted server keeps
            extending its log).
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; feeds
            ``repro_audit_records_total{kind}``.
        fsync / fsync_interval_s: durability policy, shared with the WAL
            (:class:`repro.serve.wal.FsyncPolicy`).  The default ``never``
            keeps the historical flush-only behaviour; the durable serve
            path passes its own policy so the audit trail and the WAL lose
            (at most) the same crash window.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        metrics: Any = None,
        fsync: str = "never",
        fsync_interval_s: float = 0.5,
    ) -> None:
        self.path = Path(path)
        self.metrics = metrics
        self.policy = FsyncPolicy(fsync, fsync_interval_s)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("a", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0
        self.counts: dict[str, int] = {}

    def append(self, kind: str, record: dict) -> int:
        """Append one record; returns its sequence number."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            row = {"kind": kind, "seq": seq, "ts": time.time()}
            row.update(record)
            self._fh.write(json.dumps(row, separators=(",", ":")) + "\n")
            self._fh.flush()
            if self.policy.due():
                os.fsync(self._fh.fileno())
            self.counts[kind] = self.counts.get(kind, 0) + 1
        if self.metrics is not None:
            self.metrics.inc("repro_audit_records_total", 1, {"kind": kind})
        return seq

    def record_query(
        self,
        req: dict,
        body: dict,
        epoch: int,
        *,
        request_id: str | None = None,
        cached: bool = False,
    ) -> int:
        """Audit one /query: full request, epoch, digest, flags."""
        query = req["query"]
        record = {
            "request_id": request_id,
            "epoch": epoch,
            "operator": req["operator"],
            "k": req["k"],
            "metric": req["metric"],
            "points": [list(map(float, p)) for p in query.points],
            "probs": [float(p) for p in query.probs],
            "budgeted": req["budget"] is not None,
            "cached": cached,
            "degraded": bool(body.get("degraded")),
            "degradation": body.get("degradation"),
            "count": body.get("count"),
            "digest": answer_digest(body.get("candidates") or ()),
            "counters": body.get("counters"),
        }
        if req.get("shards") is not None:
            # Shard-scoped node reads answer over a subset of the dataset;
            # the replayer cannot verify them against the full rebuild and
            # skips them (the router's own log carries the merged answer).
            record["shards"] = list(req["shards"])
        return self.append("query", record)

    def record_insert(
        self, obj, oid, epoch: int, *, request_id: str | None = None
    ) -> int:
        """Audit one /insert with the *final* oid and resulting epoch."""
        return self.append(
            "insert",
            {
                "request_id": request_id,
                "epoch": epoch,
                "oid": oid,
                "points": [list(map(float, p)) for p in obj.points],
                "probs": [float(p) for p in obj.probs],
            },
        )

    def record_delete(
        self, oid, epoch: int, *, request_id: str | None = None
    ) -> int:
        """Audit one /delete with the resulting epoch."""
        return self.append(
            "delete", {"request_id": request_id, "epoch": epoch, "oid": oid}
        )

    def stats(self) -> dict:
        """Record tallies by kind plus the output path."""
        with self._lock:
            return {"path": str(self.path), "records": dict(self.counts)}

    def close(self) -> None:
        """Close the underlying file (further appends would fail)."""
        with self._lock:
            self._fh.close()


class AuditRecords(list):
    """Parsed audit records, plus the torn-tail flag of a crashed append.

    A plain list of dicts; :attr:`torn_tail` is a
    :class:`repro.serve.wal.TornTail` locating a truncated final line, or
    None for a clean log.
    """

    torn_tail: TornTail | None = None


def load_audit(path: str | Path) -> AuditRecords:
    """Parse a JSONL audit file, tolerating one torn line at the tail.

    Every complete append is ``json + "\\n"`` written in one call with the
    newline as the final byte, so the only crash artifact is an
    *unterminated* final line.  That line is skipped and flagged on the
    returned :class:`AuditRecords`' ``torn_tail`` — never silently
    dropped, never replayed.  A malformed line that *is* newline-terminated
    cannot be a partial write and raises wherever it appears.

    Raises:
        ValueError: a terminated line fails to parse (external corruption).
    """
    raw = Path(path).read_bytes()
    records = AuditRecords()
    pos = 0
    size = len(raw)
    while pos < size:
        nl = raw.find(b"\n", pos)
        end = size if nl < 0 else nl
        line = raw[pos:end].strip()
        if line:
            torn = None
            if nl < 0:
                # No terminator: the append died mid-write.  Even if the
                # JSON happens to parse, keep it out — a restarted server
                # appending to this file would merge the next record onto
                # the unterminated line.
                torn = "final line missing its newline terminator"
            else:
                try:
                    records.append(json.loads(line))
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    # Terminated lines were written whole; a parse failure
                    # here is corruption, not a crash signature.
                    raise ValueError(
                        f"{path}: malformed audit line at byte {pos} — "
                        f"mid-file corruption ({exc})"
                    ) from exc
            if torn is not None:
                records.torn_tail = TornTail(
                    kind="audit", offset=pos, length=size - pos, detail=torn
                )
                break
        pos = end + 1
    return records


@dataclass
class ReplayReport:
    """Outcome of :func:`replay_audit`."""

    records: int = 0
    mutations_applied: int = 0
    replayed: int = 0
    verified: int = 0
    skipped_degraded: int = 0
    skipped_budgeted: int = 0
    #: Shard-scoped node reads (router protocol) — partial answers by
    #: construction, not verifiable against the full dataset rebuild.
    skipped_scoped: int = 0
    epoch_errors: int = 0
    #: Up to 16 ``{seq, epoch, operator, expected, actual}`` rows.
    mismatches: list[dict] = field(default_factory=list)
    mismatch_count: int = 0
    #: :meth:`TornTail.to_dict` of a truncated final audit line, if any.
    #: A torn tail does not fail the replay — the crash window is flagged,
    #: and everything durable before it still verifies.
    torn_tail: dict | None = None

    @property
    def ok(self) -> bool:
        """Every replayed query reproduced its digest, epochs lined up."""
        return self.mismatch_count == 0 and self.epoch_errors == 0

    def to_dict(self) -> dict:
        """JSON-ready view (the ``repro replay --format json`` body)."""
        return {
            "records": self.records,
            "mutations_applied": self.mutations_applied,
            "replayed": self.replayed,
            "verified": self.verified,
            "skipped_degraded": self.skipped_degraded,
            "skipped_budgeted": self.skipped_budgeted,
            "skipped_scoped": self.skipped_scoped,
            "epoch_errors": self.epoch_errors,
            "mismatch_count": self.mismatch_count,
            "mismatches": self.mismatches,
            "torn_tail": self.torn_tail,
            "ok": self.ok,
        }


def replay_audit(
    records: Sequence[dict],
    objects,
    *,
    shards: int = 1,
    partitioner: str = "round-robin",
    backend: str = "serial",
    global_fanout: int = 16,
    kernels: bool = True,
) -> ReplayReport:
    """Re-execute an audit log against ``objects`` and verify digests.

    Records are ordered by ``(epoch, mutations-first, seq)``: a mutation's
    recorded epoch is the one it *produced*, so it must land before the
    queries recorded *at* that epoch.  Exact queries are re-run only when
    the rebuilt dataset reaches their recorded epoch (anything else counts
    as an ``epoch_error`` — the log is incomplete or out of order).
    Degraded and budgeted queries are skipped: their answers depend on
    wall-clock budgets, not just the dataset.
    """
    from repro.serve.updates import DatasetManager

    manager = DatasetManager(
        list(objects),
        shards=shards,
        partitioner=partitioner,
        backend=backend,
        global_fanout=global_fanout,
        compact_threshold=1.0,
    )
    report = ReplayReport(records=len(records))
    tail = getattr(records, "torn_tail", None)
    if tail is not None:
        report.torn_tail = tail.to_dict() if hasattr(tail, "to_dict") else tail

    def order(rec: dict) -> tuple:
        mutation = rec.get("kind") in ("insert", "delete")
        return (rec.get("epoch", 0), 0 if mutation else 1, rec.get("seq", 0))

    try:
        for rec in sorted(records, key=order):
            kind = rec.get("kind")
            if kind == "insert":
                oid, epoch = manager.insert(
                    rec["points"], rec["probs"], oid=rec["oid"]
                )
                report.mutations_applied += 1
                if epoch != rec["epoch"] or oid != rec["oid"]:
                    report.epoch_errors += 1
            elif kind == "delete":
                from repro.serve.updates import UnknownOidError

                try:
                    _, epoch = manager.delete(rec["oid"])
                except UnknownOidError:
                    # The insert this delete depends on is missing from the
                    # log — the record stream is incomplete.
                    report.epoch_errors += 1
                    continue
                report.mutations_applied += 1
                if epoch != rec["epoch"]:
                    report.epoch_errors += 1
            elif kind == "query":
                if rec.get("degraded"):
                    report.skipped_degraded += 1
                    continue
                if rec.get("budgeted"):
                    # Exact under budget this time is not guaranteed next
                    # time; only unbudgeted answers are replay-stable.
                    report.skipped_budgeted += 1
                    continue
                if rec.get("shards") is not None:
                    report.skipped_scoped += 1
                    continue
                if manager.epoch != rec["epoch"]:
                    report.epoch_errors += 1
                    continue
                from repro.objects.uncertain import UncertainObject

                query = UncertainObject(
                    rec["points"], rec["probs"], oid="replay-Q"
                )
                result, _ = manager.query(
                    query,
                    rec["operator"],
                    k=rec["k"],
                    metric=rec["metric"],
                    kernels=kernels,
                )
                digest = answer_digest(
                    {"oid": obj.oid, "dominators": count}
                    for obj, count in zip(
                        result.candidates, result.dominator_counts
                    )
                )
                report.replayed += 1
                if digest == rec["digest"]:
                    report.verified += 1
                else:
                    report.mismatch_count += 1
                    if len(report.mismatches) < 16:
                        report.mismatches.append(
                            {
                                "seq": rec.get("seq"),
                                "epoch": rec["epoch"],
                                "operator": rec["operator"],
                                "expected": rec["digest"],
                                "actual": digest,
                            }
                        )
    finally:
        manager.close()
    return report
