"""Router tier: scatter-gather NNC over a fleet of remote shard servers.

The router fronts N node servers speaking the existing JSON/HTTP protocol
(:mod:`repro.serve.protocol`) and serves the *same* protocol itself — a
client cannot tell a router from a single server, except that answers
keep coming when a replica dies.

Architecture (DESIGN.md §18):

* **Placement** — the object space is split into S logical shards by the
  content hash :func:`repro.serve.placement.shard_of`; each shard lives
  on a replica group of R nodes chosen by the consistent-hash ring
  (:class:`repro.serve.placement.PlacementMap`).  Every node runs the
  full dataset partitioned with ``--partitioner hash --shards S`` and
  answers *shard-scoped* reads (``{"shards": [sid]}``), so router and
  nodes agree on who owns what with zero coordination.
* **Exact reads** — for each target shard the router asks one owner for
  that shard's survivors **with geometry** (``include_objects``), then
  runs the same transitivity-based refiner the single process uses
  (:func:`repro.serve.shard.refine_survivors`) over the gathered groups.
  The shard subsets are disjoint and cover the dataset, so the merged
  answer is bit-identical to single-process Algorithm 1 (the property
  tests pin this for every operator).
* **Tail tolerance** — per-shard reads are hedged: when the chosen owner
  exceeds the hedging threshold (explicit ``hedge_ms``, or the node's
  observed p95), the read is re-issued to the next replica and the first
  usable answer wins.  Transport errors, 5xx, 429 and stale reads fail
  over to surviving replicas; per-node circuit breakers
  (:class:`repro.serve.remote.CircuitBreaker`) stop asking dead nodes.
* **Writes** — fanned out to every owner of the object's shard under the
  router's write lock.  The router assigns missing oids (so replicas
  stay byte-identical), tolerates per-replica 409/404 disagreement as
  *reconciled* convergence, reports ``partial: true`` when some replica
  missed the write, and tracks each node's acked epoch so a later read
  answered from a stale replica is detected and retried elsewhere.
* **One audit log** — the router stamps every answer with its own global
  epoch (one bump per acked mutation), which makes its audit log a
  linearizable record: ``repro replay`` rebuilds the dataset
  single-process and verifies every router answer digest bit-for-bit.

Trace propagation: node calls carry ``X-Request-Id`` / ``X-Trace-Id`` /
``X-Parent-Span-Id`` / ``X-Sampled``, so a sampled router request forces
sampling on every node it touches and the per-node traces share one
trace id.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from pathlib import Path
from typing import Any, Mapping

from repro.core.context import QueryContext
from repro.objects.uncertain import UncertainObject
from repro.obs.fleet import FleetScraper
from repro.obs.log import log_event
from repro.obs.metrics import MetricsRegistry, slo_snapshot
from repro.serve import protocol
from repro.serve.audit import AuditLog
from repro.serve.cache import ResultCache
from repro.serve.explain import merge_explains
from repro.serve.placement import PlacementMap, shard_of
from repro.serve.remote import RemoteNodeError
from repro.serve.server import ServeApp
from repro.serve.shard import (
    ShardBackendError,
    ShardedResult,
    _report_from_dict,
    refine_survivors,
)
from repro.serve.updates import DuplicateOidError, UnknownOidError, _RWLock

__all__ = ["RouterApp"]

#: Calls a node must have served before its p95 drives adaptive hedging.
_HEDGE_WARMUP_CALLS = 8
#: Adaptive hedging never fires below this (seconds): an in-process
#: fleet's p95 is microseconds, and hedging every read helps nobody.
_HEDGE_FLOOR_S = 0.001


class RouterApp(ServeApp):
    """A :class:`ServeApp` whose "dataset" is a fleet of shard servers.

    Args:
        nodes: ``node_id -> node`` mapping
            (:class:`repro.serve.remote.RemoteNode` or ``LocalNode``).
            Ids must match what :class:`PlacementMap` places on.
        shards: number of logical shards (must equal every node's
            ``--shards``).
        replication: replica group size R.
        hedge_ms: hedging threshold in milliseconds; ``None`` = adaptive
            (each node's observed p95), ``0`` disables hedging.
        health_interval_s: period of the background ``/healthz`` sweep;
            ``0`` disables the sweep (breakers still learn from traffic).
        vnodes: virtual nodes per ring member.

    Remaining keyword arguments match :class:`ServeApp`.
    """

    def __init__(
        self,
        nodes: Mapping[str, Any],
        *,
        shards: int,
        replication: int = 1,
        hedge_ms: float | None = None,
        health_interval_s: float = 0.0,
        vnodes: int = 64,
        cache: ResultCache | None = None,
        registry: MetricsRegistry | None = None,
        max_inflight: int = 32,
        default_budget: dict | None = None,
        sample_rate: float = 0.0,
        audit: AuditLog | None = None,
        trace_dir: str | Path | None = None,
        slo_latency_ms: float | None = None,
        node_id: str | None = None,
        profile_hz: float = 0.0,
    ) -> None:
        if not nodes:
            raise ValueError("router needs at least one node")
        super().__init__(
            manager=None,  # type: ignore[arg-type] — the fleet is the dataset
            cache=cache,
            registry=registry,
            max_inflight=max_inflight,
            default_budget=default_budget,
            sample_rate=sample_rate,
            audit=audit,
            trace_dir=trace_dir,
            slo_latency_ms=slo_latency_ms,
            node_id=node_id or "router",
            profile_hz=profile_hz,
        )
        self.nodes = dict(nodes)
        #: Federation: pulls every node's /metrics.json + /status into the
        #: router registry under a ``node`` label (GET /fleet; piggybacked
        #: on the health sweep so the view stays warm between requests).
        self.fleet = FleetScraper(self.nodes, self.registry)
        self.placement = PlacementMap(
            list(self.nodes),
            shards=shards,
            replication=replication,
            vnodes=vnodes,
        )
        self.hedge_ms = hedge_ms
        self.health_interval_s = health_interval_s
        #: Router global epoch: one bump per acked mutation.  Every answer
        #: is stamped with it, which is what lets ``repro replay`` verify
        #: the router's audit log against a single-process rebuild.
        self._epoch = 0
        #: Highest node-local epoch each node has acked a write at; a read
        #: answered below this is stale (the replica missed a write it
        #: acked earlier — impossible — or we raced a concurrent writer).
        self._acked_epoch: dict[str, int] = {}
        self._rw = _RWLock()
        self._rotation: dict[int, itertools.count] = {}
        # Two pools so a shard state machine never waits on a slot its own
        # hedge needs: scatter tasks park in one, node I/O in the other.
        width = max(4, min(32, shards * 2))
        self._scatter_exec = ThreadPoolExecutor(
            max_workers=width, thread_name_prefix="router-scatter"
        )
        self._io_exec = ThreadPoolExecutor(
            max_workers=width * 2, thread_name_prefix="router-io"
        )
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        if health_interval_s > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop, name="router-health", daemon=True
            )
            self._health_thread.start()

    # ------------------------------ reads ------------------------------ #

    def handle_query(self, payload: Any, request=None) -> tuple[int, dict]:
        """POST /query: scatter shard-scoped reads, refine, one answer."""
        req = protocol.parse_query_request(payload)
        targets = req["shards"]
        if targets is None:
            targets = list(range(self.placement.shards))
        elif targets[-1] >= self.placement.shards:
            raise protocol.ProtocolError(
                f"'shards' {targets} out of range [0, {self.placement.shards})"
            )
        scoped = req["shards"] is not None or req["include_objects"]
        budget_spec = payload.get("budget") or self.default_budget
        use_cache = (
            self.cache is not None and req["cache"] and budget_spec is None
            and not scoped and not req["explain"]
        )
        start = time.perf_counter()
        with self._rw.read():
            epoch = self._epoch
            if use_cache:
                key = ResultCache.key(
                    epoch, req["operator"], req["metric"], req["k"],
                    req["query"],
                )
                hit = self.cache.get(key)
                if hit is not None:
                    body = dict(hit)
                    body["cached"] = True
                    if request is not None:
                        body["request_id"] = request.request_id
                        body["trace_id"] = request.trace_id
                        body["sampled"] = request.sampled
                    self._audit_query(req, body, epoch, request, True)
                    return 200, body
            # Forward the client's *raw* geometry: every node then parses
            # (and normalises) the exact bytes the router parsed, so the
            # query object is bit-identical fleet-wide.
            base = {
                "points": payload["points"],
                "operator": req["operator"],
                "k": req["k"],
                "metric": req["metric"],
                "cache": False,
                "include_objects": True,
            }
            if payload.get("probs") is not None:
                base["probs"] = payload["probs"]
            if budget_spec is not None:
                base["budget"] = dict(budget_spec)
            if req["explain"]:
                # Every node builds its own breakdown; the router merges
                # them into one fleet view after the refine phase.
                base["explain"] = True
            headers = self._node_headers(request)
            futures = [
                self._scatter_exec.submit(
                    self._fetch_shard, sid, base, headers
                )
                for sid in targets
            ]
            fetched = [f.result() for f in futures]
        survivors = []
        covered = []
        used_nodes = set()
        degradation = None
        hedged = False
        for pos, (node_id, body) in enumerate(fetched):
            used_nodes.add(node_id)
            hedged = hedged or body.get("_hedged", False)
            group = []
            for cand in body["candidates"]:
                group.append(
                    (
                        UncertainObject(
                            cand["points"], cand["probs"],
                            oid=cand["oid"], normalize=False,
                        ),
                        cand["dominators"],
                    )
                )
            survivors.append(group)
            covered.append({pos})
            if degradation is None and body.get("degraded"):
                degradation = _report_from_dict(body["degradation"])
        refine_ctx = QueryContext(
            req["query"], metric=req["metric"], kernels=True
        )
        final, counts, refine_checks, _unresolved = refine_survivors(
            _operator(req["operator"]), req["k"], survivors, covered,
            refine_ctx,
        )
        result = ShardedResult(
            candidates=[obj for obj, _ in final],
            dominator_counts=counts,
            elapsed=time.perf_counter() - start,
            shards=self.placement.shards,
            backend="router",
            refine_checks=refine_checks,
            fanout=sum(1 for group in survivors if group),
            degradation=degradation,
        )
        body = protocol.query_response(
            result, epoch, request=request,
            include_objects=req["include_objects"],
        )
        body["nodes"] = sorted(used_nodes)
        body["hedged"] = hedged
        if req["explain"]:
            # The refine context is fresh, so its bag *is* the router's
            # refine-phase delta — no pre-snapshot needed.
            refine_deltas = {
                key: value
                for key, value in refine_ctx.counters.snapshot().items()
                if value
            }
            body["explain"] = {
                "operator": req["operator"],
                "k": req["k"],
                "backend": "router",
                "elapsed_ms": result.elapsed * 1000.0,
                "candidates": len(result.candidates),
                "sampled": bool(getattr(request, "sampled", False)),
                **merge_explains(
                    [
                        {
                            "shard": targets[pos],
                            "node": node_id,
                            "hedged": fetched_body.get("_hedged", False),
                            "explain": fetched_body.get("explain"),
                        }
                        for pos, (node_id, fetched_body) in enumerate(fetched)
                    ],
                    refine_checks=refine_checks,
                    refine_counters=refine_deltas,
                    hedged=hedged,
                ),
            }
        if degradation is not None:
            self.registry.inc(
                "repro_serve_degraded_total", 1, {"operator": req["operator"]}
            )
        if use_cache and degradation is None:
            cacheable = {
                key: value
                for key, value in body.items()
                if key not in protocol.REQUEST_SCOPED_KEYS
            }
            self.cache.put(
                ResultCache.key(
                    epoch, req["operator"], req["metric"], req["k"],
                    req["query"],
                ),
                cacheable,
            )
        self._audit_query(req, body, epoch, request, False)
        return 200, body

    def _fetch_shard(
        self, sid: int, base: dict, headers: dict
    ) -> tuple[str, dict]:
        """One shard's read state machine: rotate, hedge, fail over.

        Returns ``(node_id, body)`` of the winning replica; the body gains
        a private ``_hedged`` flag when a hedge was issued.  Raises
        :class:`ShardBackendError` when every owner is out.
        """
        owners = list(self.placement.owners(sid))
        rot = next(self._rotation.setdefault(sid, itertools.count()))
        queue = [owners[(rot + i) % len(owners)] for i in range(len(owners))]
        payload = dict(base)
        payload["shards"] = [sid]
        pending: list[tuple[str, Any]] = []
        errors: list[str] = []
        launched: list[str] = []
        hedged = False

        def launch_next() -> bool:
            while queue:
                nid = queue.pop(0)
                node = self.nodes[nid]
                if not node.breaker.allow():
                    errors.append(f"{nid}: breaker open")
                    continue
                launched.append(nid)
                pending.append(
                    (
                        nid,
                        self._io_exec.submit(
                            self._safe_call, node, payload, headers
                        ),
                    )
                )
                return True
            return False

        launch_next()
        while pending:
            threshold = (
                self._hedge_threshold(self.nodes[launched[-1]])
                if len(pending) == 1 and queue
                else None
            )
            done, _ = wait(
                [f for _, f in pending],
                timeout=threshold,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # The outstanding read blew the hedging threshold: race a
                # second replica against it, first usable answer wins.
                if launch_next():
                    hedged = True
                    self.registry.inc(
                        "repro_router_hedges_total", 1, {"shard": str(sid)}
                    )
                continue
            for nid, fut in list(pending):
                if not fut.done():
                    continue
                pending.remove((nid, fut))
                status, body, transport_error = fut.result()
                if transport_error is not None:
                    errors.append(f"{nid}: {transport_error}")
                    self.registry.inc("repro_router_failovers_total")
                elif status == 200:
                    if body.get("epoch", 0) < self._acked_epoch.get(nid, 0):
                        errors.append(
                            f"{nid}: stale epoch {body.get('epoch')} < "
                            f"acked {self._acked_epoch.get(nid)}"
                        )
                        self.registry.inc("repro_router_stale_reads_total")
                        self.registry.inc("repro_router_failovers_total")
                    else:
                        if hedged:
                            body["_hedged"] = True
                            if nid != launched[0]:
                                self.registry.inc(
                                    "repro_router_hedge_wins_total"
                                )
                        return nid, body
                else:
                    errors.append(
                        f"{nid}: HTTP {status} {body.get('error', '')!s}"
                    )
                    self.registry.inc("repro_router_failovers_total")
            if not pending:
                launch_next()
        raise ShardBackendError(
            f"shard {sid}: no replica answered ({'; '.join(errors)})"
        )

    @staticmethod
    def _safe_call(node, payload: dict, headers: dict):
        """node.call wrapped so futures never raise (breakers still see
        the failure inside :meth:`remote._NodeBase.call`)."""
        try:
            status, body = node.call("POST", "/query", payload, headers)
            return status, body, None
        except RemoteNodeError as exc:
            return None, {}, str(exc)

    def _hedge_threshold(self, node) -> float | None:
        """Seconds to wait before hedging this node, or None (no hedge)."""
        if self.hedge_ms is not None:
            if self.hedge_ms <= 0:
                return None
            return self.hedge_ms / 1000.0
        if node.calls < _HEDGE_WARMUP_CALLS:
            return None
        p95 = node.latency_quantile(0.95)
        if p95 is None:
            return None
        return max(p95, _HEDGE_FLOOR_S)

    def _node_headers(self, request) -> dict:
        if request is None:
            return {}
        headers = {
            "X-Request-Id": request.request_id,
            "X-Trace-Id": request.trace_id,
            "X-Parent-Span-Id": request.span_id,
        }
        if request.sampled:
            headers["X-Sampled"] = "1"
        return headers

    # ------------------------------ writes ----------------------------- #

    def handle_insert(self, payload: Any, request=None) -> tuple[int, dict]:
        """POST /insert: fan out to every owner of the object's shard."""
        obj = protocol.parse_insert_request(payload)
        oid = obj.oid
        if oid is None:
            # The router names the object so every replica indexes the
            # same oid (node-local allocators would diverge).
            oid = f"r-{os.urandom(6).hex()}"
            obj.oid = oid
        node_payload = {"points": payload["points"], "oid": oid}
        if payload.get("probs") is not None:
            node_payload["probs"] = payload["probs"]
        with self._rw.write():
            acked, dups, failed = self._fan_out(
                "/insert", node_payload, self.placement.owners_of(oid),
                self._node_headers(request), converged_status=409,
            )
            if not acked:
                if dups:
                    raise DuplicateOidError(f"oid {oid!r} already exists")
                raise ShardBackendError(
                    f"insert {oid!r} failed on all replicas: "
                    f"{'; '.join(failed)}"
                )
            self._epoch += 1
            epoch = self._epoch
        body = self._write_body(
            protocol.insert_response(oid, epoch), acked, dups, failed, "insert"
        )
        self.registry.inc("repro_serve_updates_total", 1, {"op": "insert"})
        if self.audit is not None:
            self.audit.record_insert(
                obj, oid, epoch,
                request_id=request.request_id if request is not None else None,
            )
        return 200, body

    def handle_delete(self, payload: Any, request=None) -> tuple[int, dict]:
        """POST /delete: fan out the tombstone to the owning group."""
        oid = protocol.parse_delete_request(payload)
        with self._rw.write():
            acked, missing, failed = self._fan_out(
                "/delete", {"oid": oid}, self.placement.owners_of(oid),
                self._node_headers(request), converged_status=404,
            )
            if not acked:
                if missing:
                    raise UnknownOidError(oid)
                raise ShardBackendError(
                    f"delete {oid!r} failed on all replicas: "
                    f"{'; '.join(failed)}"
                )
            self._epoch += 1
            epoch = self._epoch
        body = self._write_body(
            protocol.delete_response(oid, epoch), acked, missing, failed,
            "delete",
        )
        self.registry.inc("repro_serve_updates_total", 1, {"op": "delete"})
        if self.audit is not None:
            self.audit.record_delete(
                oid, epoch,
                request_id=request.request_id if request is not None else None,
            )
        return 200, body

    def _fan_out(
        self,
        path: str,
        payload: dict,
        owners,
        headers: dict,
        *,
        converged_status: int,
    ) -> tuple[list[str], list[str], list[str]]:
        """Send one mutation to every owner; sort outcomes.

        Returns ``(acked, converged, failed)`` node-id lists, where
        ``converged`` collects replicas answering ``converged_status`` —
        409 for an insert (replica already has it), 404 for a delete
        (already gone): per-replica disagreement that nonetheless leaves
        the group in the requested state.  Successful acks also advance
        the node's acked-epoch watermark for stale-read detection.
        """
        futures = [
            (
                nid,
                self._io_exec.submit(
                    self._safe_mutation, self.nodes[nid], path, payload,
                    headers,
                ),
            )
            for nid in owners
        ]
        acked: list[str] = []
        converged: list[str] = []
        failed: list[str] = []
        for nid, fut in futures:
            status, body, transport_error = fut.result()
            if transport_error is not None:
                failed.append(f"{nid}: {transport_error}")
            elif status == 200:
                acked.append(nid)
                prev = self._acked_epoch.get(nid, 0)
                self._acked_epoch[nid] = max(prev, int(body.get("epoch", 0)))
            elif status == converged_status:
                converged.append(nid)
            else:
                failed.append(
                    f"{nid}: HTTP {status} {body.get('error', '')!s}"
                )
        return acked, converged, failed

    @staticmethod
    def _safe_mutation(node, path: str, payload: dict, headers: dict):
        try:
            status, body = node.call("POST", path, payload, headers)
            return status, body, None
        except RemoteNodeError as exc:
            return None, {}, str(exc)

    def _write_body(
        self, body: dict, acked, converged, failed, op: str
    ) -> dict:
        body["replicas"] = {
            "acked": len(acked),
            "converged": len(converged),
            "failed": len(failed),
        }
        if failed:
            # The group will heal on anti-entropy (today: operator-driven
            # restore from the audit log); reads are safe meanwhile
            # because they only go to owners, and dead owners fail over.
            body["partial"] = True
            self.registry.inc(
                "repro_router_partial_writes_total", 1, {"op": op}
            )
            log_event(
                "router.partial_write", level="warning", op=op,
                acked=len(acked), failed=failed,
            )
        if converged:
            self.registry.inc(
                "repro_router_reconciled_writes_total", 1, {"op": op}
            )
        return body

    # ----------------------------- health ------------------------------ #

    def _health_loop(self) -> None:
        while not self._stop.wait(self.health_interval_s):
            self._sweep_health()
            try:
                # Keep the federated view warm between /fleet requests
                # (merged quantiles, per-node epochs, breaker states).
                self.fleet.scrape()
            except Exception:  # pragma: no cover - sweep must never die
                pass

    def _sweep_health(self) -> dict[str, bool]:
        """One ``/healthz`` pass over the fleet; updates up-gauges and
        feeds the breakers (a dead node opens its breaker from the sweep
        alone, before any read has to eat the timeout)."""
        up: dict[str, bool] = {}
        for nid, node in self.nodes.items():
            try:
                status, _ = node.call("GET", "/healthz", timeout_s=2.0)
                up[nid] = status == 200
            except RemoteNodeError:
                up[nid] = False
            self.registry.set_gauge(
                "repro_router_node_up", 1.0 if up[nid] else 0.0,
                {"node": nid},
            )
        return up

    # ---------------------------- introspection ------------------------ #

    def handle(
        self, method: str, path: str, payload: Any, request=None
    ) -> tuple[int, dict]:
        """ServeApp routing plus the router-only ``GET /fleet`` view."""
        if method == "GET" and path == "/fleet":
            # A fresh scrape per request: /fleet is the operator's "what
            # is the fleet doing *now*" view, and one round of GETs over
            # the node set is cheap next to a stale answer.
            return 200, self.fleet.scrape()
        return super().handle(method, path, payload, request)

    def healthz(self) -> dict:
        """GET /healthz: router liveness plus the fleet's vital signs."""
        status = "draining" if self.draining else "ok"
        return {
            "status": status,
            "role": "router",
            "node_id": self.node_id,
            "epoch": self._epoch,
            "shards": self.placement.shards,
            "replication": self.placement.replication,
            "inflight": self._inflight,
            "start_time": self.started_at,
            "uptime_s": time.time() - self.started_at,
            "uptime_seconds": time.time() - self.started_at,
            "cache": self.cache.stats() if self.cache is not None else None,
            "nodes": {
                nid: {
                    **node.stats(),
                    "acked_epoch": self._acked_epoch.get(nid, 0),
                }
                for nid, node in sorted(self.nodes.items())
            },
        }

    def status(self) -> dict:
        """GET /status: health + SLOs + the full placement table."""
        return {
            **self.healthz(),
            "sampler": {
                "rate": self.sampler.rate,
                "decisions": self.sampler.decisions,
                "sampled": self.sampler.sampled,
            },
            "audit": self.audit.stats() if self.audit is not None else None,
            "slo": slo_snapshot(self.registry, self.slo_latency_ms),
            "alerts": self.alerts.snapshot(),
            "fleet": self.fleet.snapshot(),
            "placement": self.placement.to_dict(),
        }

    @property
    def epoch(self) -> int:
        return self._epoch

    def close(self) -> None:
        """Stop the profiler, health sweep, and scatter/IO pools."""
        self.profiler.stop()
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5.0)
        self._scatter_exec.shutdown(wait=True)
        self._io_exec.shutdown(wait=True)


def _operator(name: str):
    from repro.core.operators import make_operator

    return make_operator(name)
