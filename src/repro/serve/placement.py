"""Consistent-hash placement of shards onto nodes, with replica groups.

The router tier (:mod:`repro.serve.router`) partitions the object space
into a fixed number of **logical shards** and places each shard on a
**replica group** of R distinct nodes chosen by a consistent-hash ring:

* :func:`shard_of` maps an object id to its logical shard — a pure
  content hash, so every party (router, node servers, the audit replayer)
  derives the same placement without coordination.  Node servers started
  with ``--partitioner hash`` use the same function, which is what makes a
  router-side ``{"shards": [...]}``-scoped query land on exactly the
  objects the router thinks live there.
* :class:`HashRing` hashes ``vnodes`` virtual points per node onto a
  64-bit ring; a shard's replica set is the first R *distinct* nodes
  clockwise from the shard's own hash.  Adding or removing one node moves
  only the keys whose successor window touches that node — about
  ``shards / N`` of them — and never reshuffles ownership between two
  uninvolved nodes (the minimal-remapping property the placement tests
  pin).
* :class:`PlacementMap` is the router's view: shard → ordered replica
  group (first entry = preferred primary), with join/leave that keeps the
  ring stable.

Everything here is pure and deterministic (SHA-1 based, no process seed),
so two routers configured with the same node list agree on every owner.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

__all__ = ["HashRing", "PlacementMap", "shard_of", "stable_hash"]


def stable_hash(key: str) -> int:
    """64-bit SHA-1-based hash, stable across processes and machines.

    ``hash()`` is seeded per process (PYTHONHASHSEED), so it cannot place
    anything that two parties must agree on.
    """
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


def shard_of(oid, n_shards: int) -> int:
    """The logical shard owning object ``oid`` (content hash, mod shards).

    Oids may be ints or strings (the protocol admits both); the type is
    folded into the key so ``5`` and ``"5"`` — distinct live objects —
    need not collide by construction.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be at least 1")
    tag = "i" if isinstance(oid, int) and not isinstance(oid, bool) else "s"
    return stable_hash(f"oid|{tag}|{oid}") % n_shards


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Args:
        nodes: initial node ids (strings; must be unique).
        vnodes: virtual points per node — more vnodes, smoother balance
            and smaller remap variance on membership changes.
    """

    def __init__(self, nodes: Iterable[str] = (), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.vnodes = vnodes
        self._nodes: set[str] = set()
        #: Sorted ring positions and the node owning each (parallel lists).
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        """Current members, sorted (membership, not ring order)."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _vnode_points(self, node: str) -> list[int]:
        return [
            stable_hash(f"ring|{node}|{i}") for i in range(self.vnodes)
        ]

    def add_node(self, node: str) -> None:
        """Join ``node``; only keys now owned by it change hands."""
        if not node:
            raise ValueError("node id must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self._nodes.add(node)
        for point in self._vnode_points(node):
            idx = bisect.bisect_left(self._points, point)
            self._points.insert(idx, point)
            self._owners.insert(idx, node)

    def remove_node(self, node: str) -> None:
        """Leave ``node``; its keys fall to their next distinct successor."""
        if node not in self._nodes:
            raise KeyError(node)
        self._nodes.remove(node)
        keep = [i for i, owner in enumerate(self._owners) if owner != node]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def replicas(self, key: str, r: int = 1) -> tuple[str, ...]:
        """The first ``r`` *distinct* nodes clockwise from ``key``'s hash.

        Fewer than ``r`` members on the ring yields all of them; an empty
        ring yields ``()``.
        """
        if r < 1:
            raise ValueError("r must be at least 1")
        if not self._points:
            return ()
        want = min(r, len(self._nodes))
        start = bisect.bisect_right(self._points, stable_hash(f"key|{key}"))
        chosen: list[str] = []
        seen: set[str] = set()
        n = len(self._owners)
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == want:
                    break
        return tuple(chosen)

    def owner(self, key: str) -> str:
        """The single primary owner of ``key`` (ring successor)."""
        replicas = self.replicas(key, 1)
        if not replicas:
            raise LookupError("ring has no nodes")
        return replicas[0]


class PlacementMap:
    """Shard → replica-group placement over a :class:`HashRing`.

    Args:
        nodes: node ids (order-insensitive; the ring decides placement).
        shards: number of logical shards.
        replication: replica group size R (capped at the node count at
            read time — a 2-node fleet with R=3 simply yields 2 owners).
        vnodes: virtual nodes per member.
    """

    def __init__(
        self,
        nodes: Sequence[str],
        *,
        shards: int,
        replication: int = 1,
        vnodes: int = 64,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if replication < 1:
            raise ValueError("replication must be at least 1")
        if not nodes:
            raise ValueError("placement needs at least one node")
        self.shards = shards
        self.replication = replication
        self.ring = HashRing(nodes, vnodes=vnodes)
        self._table: dict[int, tuple[str, ...]] | None = None

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.ring.nodes

    def owners(self, shard: int) -> tuple[str, ...]:
        """Ordered replica group of ``shard`` (first = preferred primary)."""
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.shards})"
            )
        return self.table()[shard]

    def owners_of(self, oid) -> tuple[str, ...]:
        """Replica group owning object ``oid`` (via :func:`shard_of`)."""
        return self.owners(shard_of(oid, self.shards))

    def table(self) -> dict[int, tuple[str, ...]]:
        """The full shard → replica-group map (cached until membership
        changes)."""
        if self._table is None:
            self._table = {
                sid: self.ring.replicas(f"shard|{sid}", self.replication)
                for sid in range(self.shards)
            }
        return self._table

    def shards_for(self, node: str) -> tuple[int, ...]:
        """Shards whose replica group includes ``node``."""
        return tuple(
            sid for sid, owners in sorted(self.table().items())
            if node in owners
        )

    def add_node(self, node: str) -> None:
        """Join a node (minimal remap — see :meth:`HashRing.add_node`)."""
        self.ring.add_node(node)
        self._table = None

    def remove_node(self, node: str) -> None:
        """Remove a node; orphaned slots fall to ring successors."""
        if len(self.ring) <= 1:
            raise ValueError("cannot remove the last node")
        self.ring.remove_node(node)
        self._table = None

    def to_dict(self) -> dict:
        """JSON-ready view for ``/status`` bodies and smoke assertions."""
        return {
            "shards": self.shards,
            "replication": self.replication,
            "nodes": list(self.nodes),
            "table": {
                str(sid): list(owners)
                for sid, owners in sorted(self.table().items())
            },
        }
