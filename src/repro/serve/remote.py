"""Node clients for the router tier: HTTP transport, breakers, latency.

The router (:mod:`repro.serve.router`) talks to its fleet through the
small interface defined here:

* :class:`RemoteNode` — a real shard server reached over the JSON/HTTP
  protocol (stdlib ``http.client``, one connection per call to match the
  server's ``Connection: close`` discipline).  Transport-level failures
  (refused, reset, timeout) raise :class:`RemoteNodeError`; HTTP-level
  outcomes are returned as ``(status, body)`` and judged by the caller.
* :class:`LocalNode` — the same interface over an in-process
  :class:`repro.serve.server.ServeApp`.  Property tests and the bench
  harness use it to run a whole "fleet" in one process, with ``fail``
  and ``delay_s`` knobs for deterministic failover and hedging tests.
* :class:`CircuitBreaker` — consecutive-failure breaker with a cooldown
  half-open probe, so a dead node costs one timeout per cooldown window
  instead of one per request.

Every node keeps a sliding window of observed call latencies; the
router's adaptive hedging threshold is the p95 of that window.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from collections import deque
from typing import Any
from urllib.parse import urlparse

__all__ = [
    "CircuitBreaker",
    "LocalNode",
    "RemoteNode",
    "RemoteNodeError",
]

#: Latency samples retained per node for the adaptive hedge threshold.
_LATENCY_WINDOW = 512


class RemoteNodeError(ConnectionError):
    """Transport-level failure talking to a node (refused/reset/timeout)."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with half-open probes.

    Closed (normal) until ``threshold`` *consecutive* failures open it;
    while open, :meth:`allow` refuses traffic until ``cooldown_s`` has
    passed, then admits a single probe (half-open).  A probe success
    closes the breaker; a failure re-opens it for another cooldown.
    """

    def __init__(self, *, threshold: int = 3, cooldown_s: float = 5.0) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if time.monotonic() - self._opened_at >= self.cooldown_s:
                return "half-open"
            return "open"

    def admits(self) -> bool:
        """Non-consuming peek: would :meth:`allow` grant a request now?"""
        with self._lock:
            if self._opened_at is None:
                return True
            return (
                time.monotonic() - self._opened_at >= self.cooldown_s
                and not self._probing
            )

    def allow(self) -> bool:
        """True when a request may proceed (closed, or the one probe).

        Consumes the half-open probe slot — call only immediately before
        actually issuing the request (use :meth:`admits` to peek).
        """
        with self._lock:
            if self._opened_at is None:
                return True
            if time.monotonic() - self._opened_at < self.cooldown_s:
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        """Close the breaker: reset the failure streak and any open state."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """Count one failure; opens the breaker at ``threshold`` in a row."""
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.threshold:
                self._opened_at = time.monotonic()


class _NodeBase:
    """Latency window + breaker shared by remote and in-process nodes."""

    def __init__(
        self,
        node_id: str,
        *,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
    ) -> None:
        self.node_id = node_id
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )
        self._latencies: deque[float] = deque(maxlen=_LATENCY_WINDOW)
        self._lat_lock = threading.Lock()
        self.calls = 0
        self.failures = 0

    def available(self) -> bool:
        """True when the breaker would admit traffic (non-consuming)."""
        return self.breaker.admits()

    def observe_latency(self, seconds: float) -> None:
        with self._lat_lock:
            self._latencies.append(seconds)

    def latency_quantile(self, q: float) -> float | None:
        """Observed latency quantile in seconds; None before any sample."""
        with self._lat_lock:
            if not self._latencies:
                return None
            ordered = sorted(self._latencies)
        idx = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[idx]

    def call(
        self,
        method: str,
        path: str,
        payload: Any = None,
        headers: dict | None = None,
        *,
        timeout_s: float | None = None,
    ) -> tuple[int, dict]:
        """One request; returns ``(status, body)``, raises
        :class:`RemoteNodeError` on transport failure.  Updates the
        latency window and breaker bookkeeping either way."""
        start = time.perf_counter()
        self.calls += 1
        try:
            status, body = self._call(
                method, path, payload, headers, timeout_s=timeout_s
            )
        except RemoteNodeError:
            self.failures += 1
            self.breaker.record_failure()
            raise
        self.observe_latency(time.perf_counter() - start)
        # HTTP-level verdicts are the caller's business (a 404 from a
        # delete is data, not node sickness), but a 5xx counts against the
        # breaker: a node answering only errors is as dead as one not
        # answering at all.
        if status >= 500:
            self.failures += 1
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        return status, body

    def _call(self, method, path, payload, headers, *, timeout_s):
        raise NotImplementedError

    def stats(self) -> dict:
        return {
            "node_id": self.node_id,
            "calls": self.calls,
            "failures": self.failures,
            "breaker": self.breaker.state,
            "p95_ms": (
                None
                if (p95 := self.latency_quantile(0.95)) is None
                else p95 * 1000.0
            ),
        }


class RemoteNode(_NodeBase):
    """A shard server reached over HTTP.

    Args:
        node_id: fleet identity (should match the server's ``--node-id``).
        url: base URL, e.g. ``http://127.0.0.1:8081``.
        timeout_s: per-call socket timeout.
    """

    def __init__(
        self,
        node_id: str,
        url: str,
        *,
        timeout_s: float = 10.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
    ) -> None:
        super().__init__(
            node_id,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
        )
        parsed = urlparse(url if "//" in url else f"http://{url}")
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported scheme in node url {url!r}")
        if not parsed.hostname:
            raise ValueError(f"node url {url!r} has no host")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.url = f"http://{self.host}:{self.port}"
        self.timeout_s = timeout_s

    def _call(self, method, path, payload, headers, *, timeout_s):
        body = b"" if payload is None else json.dumps(payload).encode()
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout_s if timeout_s is None else timeout_s,
        )
        try:
            hdrs = {"Content-Type": "application/json"}
            if headers:
                hdrs.update(headers)
            conn.request(method, path, body=body or None, headers=hdrs)
            resp = conn.getresponse()
            raw = resp.read()
        except (OSError, http.client.HTTPException) as exc:
            raise RemoteNodeError(
                f"node {self.node_id} at {self.url}: {exc!r}"
            ) from exc
        finally:
            conn.close()
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            raise RemoteNodeError(
                f"node {self.node_id}: unparseable body ({exc})"
            ) from exc
        return resp.status, parsed


class LocalNode(_NodeBase):
    """The node interface over an in-process :class:`ServeApp`.

    Fault knobs (tests and the bench harness):

    * ``fail = True`` — every call raises :class:`RemoteNodeError`, as if
      the process were SIGKILLed.
    * ``delay_s > 0`` — every call sleeps first: a deterministically slow
      replica for hedging experiments.
    """

    def __init__(
        self,
        node_id: str,
        app,
        *,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 5.0,
    ) -> None:
        super().__init__(
            node_id,
            breaker_threshold=breaker_threshold,
            breaker_cooldown_s=breaker_cooldown_s,
        )
        self.app = app
        self.fail = False
        self.delay_s = 0.0

    def _call(self, method, path, payload, headers, *, timeout_s):
        if self.fail:
            raise RemoteNodeError(f"node {self.node_id}: injected failure")
        if self.delay_s > 0:
            time.sleep(self.delay_s)
        return self.app.dispatch(method, path, payload, headers)
