"""Serve smoke test: boot, concurrent mixed traffic, scrape, clean drain.

Run as ``python -m repro.serve.smoke`` (CI job); ``--backend pool
--workers 2`` exercises the persistent shared-memory worker pool end to
end, including epoch publishing under the mixed insert/delete traffic and
segment cleanup on drain.  In one process it:

1. builds a small synthetic dataset and starts :class:`NNCServer` on an
   ephemeral port (event loop on a background thread),
2. fires concurrent mixed traffic — queries across all four operators,
   inserts, deletes of inserted oids, health checks — from worker threads,
3. asserts every response is well-formed, at least one query was served
   from cache, and a post-traffic query equals a fresh single-process
   :class:`repro.core.nnc.NNCSearch` over the live objects (the
   correctness pin survives concurrent mutation),
4. scrapes ``/metrics`` and asserts the ``repro_serve_*`` families are
   present and reconcile with the app-side tallies,
5. drains and asserts new traffic is refused while in-flight work
   finished cleanly.

Exit code 0 = all good; 1 = assertion failure (message on stderr).
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import sys
import threading

import numpy as np

from repro.core.nnc import NNCSearch
from repro.datasets import synthetic
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import ResultCache
from repro.serve.server import NNCServer, ServeApp
from repro.serve.updates import DatasetManager

OPERATORS = ("SSD", "SSSD", "PSD", "FSD")


def _request(port: int, method: str, path: str, payload=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        if resp.getheader("Content-Type", "").startswith("application/json"):
            return resp.status, json.loads(data)
        return resp.status, data.decode()
    finally:
        conn.close()


class _ServerThread:
    """NNCServer on a dedicated event-loop thread (no pytest-asyncio)."""

    def __init__(self, server: NNCServer) -> None:
        self.server = server
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._ready.set()
        self.loop.run_forever()

    def start(self) -> int:
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("server failed to start")
        return self.server.port

    def drain(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.drain(), self.loop
        ).result(timeout=60.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10.0)


def main(argv: list[str] | None = None) -> int:
    """Run the smoke scenario; 0 = all assertions held (see module doc)."""
    from repro.serve.shard import BACKENDS

    parser = argparse.ArgumentParser(prog="python -m repro.serve.smoke")
    parser.add_argument("--backend", default="auto", choices=BACKENDS)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --backend pool")
    parser.add_argument("--shards", type=int, default=2)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(42)
    centers = synthetic.independent_centers(150, 2, rng)
    objects = synthetic.make_objects(centers, 5, 50.0, rng)
    registry = MetricsRegistry()
    manager = DatasetManager(
        objects,
        shards=args.shards,
        partitioner="round-robin",
        backend=args.backend,
        workers=args.workers,
        metrics=registry,
    )
    app = ServeApp(
        manager,
        cache=ResultCache(64, metrics=registry),
        registry=registry,
        max_inflight=8,
    )
    runner = _ServerThread(NNCServer(app, port=0))
    port = runner.start()
    print(f"serve smoke: listening on 127.0.0.1:{port}")

    q_pts = [[5000.0, 5000.0], [5050.0, 5050.0]]
    errors: list[str] = []
    inserted: list = []
    ins_lock = threading.Lock()

    def worker(wid: int) -> None:
        try:
            for i in range(6):
                op = OPERATORS[(wid + i) % len(OPERATORS)]
                status, body = _request(port, "POST", "/query", {
                    "points": q_pts, "operator": op, "k": 1 + (i % 2),
                })
                if status == 429:
                    continue  # shed load is a valid outcome
                assert status == 200, f"query -> {status}: {body}"
                assert body["count"] >= 1 and not body["degraded"]
                if i % 3 == 0:
                    pt = [float(5000 + wid * 10 + i), float(5000 - wid * 5)]
                    status, body = _request(port, "POST", "/insert", {
                        "points": [pt, [pt[0] + 1, pt[1] + 1]],
                    })
                    if status == 200:
                        with ins_lock:
                            inserted.append(body["oid"])
                if i % 4 == 1:
                    with ins_lock:
                        victim = inserted.pop() if inserted else None
                    if victim is not None:
                        status, body = _request(
                            port, "POST", "/delete", {"oid": victim}
                        )
                        assert status in (200, 404, 429), f"delete -> {status}"
                status, body = _request(port, "GET", "/healthz")
                assert status == 200 and body["status"] == "ok"
        except Exception as exc:  # noqa: BLE001 — smoke reports everything
            errors.append(f"worker {wid}: {exc!r}")

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300.0)
    if errors:
        print("FAIL:\n" + "\n".join(errors), file=sys.stderr)
        return 1

    # Repeat one query: second answer must come from cache.
    _request(port, "POST", "/query", {"points": q_pts, "operator": "FSD"})
    status, body = _request(
        port, "POST", "/query", {"points": q_pts, "operator": "FSD"}
    )
    assert status == 200 and body["cached"], "expected a cache hit"

    # Correctness pin under mutation: server answer == fresh monolith.
    status, served = _request(
        port, "POST", "/query",
        {"points": q_pts, "operator": "FSD", "cache": False},
    )
    assert status == 200
    mono = NNCSearch(manager.search.live_objects())
    from repro.objects.uncertain import UncertainObject
    expect = sorted(
        mono.run(UncertainObject(np.array(q_pts), oid="Q"), "FSD").oids()
    )
    got = sorted(c["oid"] for c in served["candidates"])
    assert got == expect, f"served {got} != monolith {expect}"

    status, text = _request(port, "GET", "/metrics")
    assert status == 200
    for family in (
        "repro_serve_requests_total",
        "repro_serve_cache_hits_total",
        "repro_serve_inflight",
        "repro_serve_shard_fanout",
        "repro_serve_epoch",
        "repro_queries_total",
    ):
        assert family in text, f"{family} missing from /metrics"

    published = [
        name for kept in manager.search._shard_segments for name in kept
    ]
    runner.drain()
    assert app.inflight == 0, "drain left requests in flight"
    if published:
        from repro.serve.shm import segment_exists

        leaked = [name for name in published if segment_exists(name)]
        assert not leaked, f"drain leaked shared-memory segments: {leaked}"
    try:
        status, _ = _request(port, "POST", "/query",
                             {"points": q_pts, "operator": "FSD"}, timeout=2.0)
        refused = status == 503
    except (ConnectionError, OSError):
        refused = True
    assert refused, "server still accepting after drain"

    stats = app.cache.stats()
    print(
        f"serve smoke OK: backend={manager.search.backend} "
        f"epoch={manager.epoch} objects={manager.size} "
        f"cache={stats['hits']}h/{stats['misses']}m "
        f"requests={int(registry.total('repro_serve_requests_total'))}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
