"""JSON request/response shapes for the NNC query service.

Kept separate from the transport so the CLI client, the server, tests, and
the smoke runner all speak one dialect.  Parsing is strict: unknown
operators, malformed arrays, and bad budgets fail with
:class:`ProtocolError` (mapped to HTTP 400) before any engine code runs.

Request shapes (all POST bodies)::

    /query  {"points": [[..],..], "probs": [..]?, "operator": "FSD",
             "k": 1?, "metric": "euclidean"?, "cache": true?,
             "shards": [0, 2]?, "include_objects": false?,
             "explain": false?,
             "budget": {"deadline_ms": ..?, "max_dominance_checks": ..?,
                        "max_flow_augmentations": ..?}?}
    /insert {"points": [[..],..], "probs": [..]?, "oid": ..?}
    /delete {"oid": ..}

``shards`` restricts the scatter to a subset of the server's logical
shards and ``include_objects`` asks for each candidate's instance
geometry in the response — together they form the **node role** of the
router protocol (:mod:`repro.serve.router`): the router scatters
shard-scoped reads to replica owners and runs the cross-node survivor
refine itself, which needs the survivors' points/probs on the wire.

The query response mirrors the CLI ``--format json`` output: candidates
with final dominator counts, the serving epoch the answer is valid for,
and a ``degraded`` flag with the PR-3 report when the answer is a
certified superset instead of exact.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.operators import OperatorKind
from repro.objects.uncertain import UncertainObject
from repro.resilience.budget import Budget

__all__ = [
    "OPERATOR_NAMES",
    "REQUEST_SCOPED_KEYS",
    "ProtocolError",
    "parse_query_request",
    "parse_insert_request",
    "parse_delete_request",
    "query_response",
    "insert_response",
    "delete_response",
    "backend_error_body",
    "error_body",
    "recovering_body",
]

OPERATOR_NAMES: tuple[str, ...] = tuple(kind.value for kind in OperatorKind)

_BUDGET_FIELDS = ("deadline_ms", "max_dominance_checks", "max_flow_augmentations")


class ProtocolError(ValueError):
    """A malformed request body (HTTP 400)."""


def _require_dict(payload: Any) -> dict:
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    return payload


def _parse_object(payload: dict, *, oid=None) -> UncertainObject:
    points = payload.get("points")
    if points is None:
        raise ProtocolError("missing 'points'")
    probs = payload.get("probs")
    try:
        pts = np.asarray(points, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad 'points': {exc}")
    if pts.ndim != 2:
        raise ProtocolError("'points' must be a 2-D array of instances")
    try:
        return UncertainObject(pts, probs, oid=oid, normalize=True)
    except ValueError as exc:
        raise ProtocolError(str(exc))


def _parse_budget(spec: Any) -> Budget | None:
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ProtocolError("'budget' must be an object")
    unknown = set(spec) - set(_BUDGET_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown budget fields: {sorted(unknown)}")
    kwargs = {}
    for name in _BUDGET_FIELDS:
        value = spec.get(name)
        if value is None:
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError(f"budget.{name} must be a number")
        kwargs[name] = value if name == "deadline_ms" else int(value)
    if not kwargs:
        return None
    try:
        return Budget(**kwargs)
    except ValueError as exc:
        raise ProtocolError(str(exc))


def parse_query_request(payload: Any) -> dict:
    """Validate a /query body into engine-ready pieces.

    Returns:
        dict with ``query`` (UncertainObject), ``operator`` (name),
        ``k``, ``metric``, ``budget`` (Budget or None), ``cache`` (bool),
        ``shards`` (sorted int list or None), ``include_objects`` (bool),
        ``explain`` (bool — per-stage cost breakdown in the response).
    """
    payload = _require_dict(payload)
    operator = payload.get("operator", "FSD")
    if operator not in OPERATOR_NAMES:
        raise ProtocolError(
            f"unknown operator {operator!r}; expected one of {OPERATOR_NAMES}"
        )
    k = payload.get("k", 1)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ProtocolError("'k' must be a positive integer")
    metric = payload.get("metric", "euclidean")
    if not isinstance(metric, str):
        raise ProtocolError("'metric' must be a string")
    cache = payload.get("cache", True)
    if not isinstance(cache, bool):
        raise ProtocolError("'cache' must be a boolean")
    shards = payload.get("shards")
    if shards is not None:
        if not isinstance(shards, list) or not shards:
            raise ProtocolError("'shards' must be a non-empty array of ints")
        for sid in shards:
            if not isinstance(sid, int) or isinstance(sid, bool) or sid < 0:
                raise ProtocolError(
                    "'shards' entries must be non-negative integers"
                )
        shards = sorted(set(shards))
    include_objects = payload.get("include_objects", False)
    if not isinstance(include_objects, bool):
        raise ProtocolError("'include_objects' must be a boolean")
    explain = payload.get("explain", False)
    if not isinstance(explain, bool):
        raise ProtocolError("'explain' must be a boolean")
    return {
        "query": _parse_object(payload, oid=payload.get("oid", "Q")),
        "operator": operator,
        "k": k,
        "metric": metric,
        "budget": _parse_budget(payload.get("budget")),
        "cache": cache,
        "shards": shards,
        "include_objects": include_objects,
        "explain": explain,
    }


def parse_insert_request(payload: Any) -> UncertainObject:
    """Validate an /insert body into an object (oid may be None)."""
    payload = _require_dict(payload)
    oid = payload.get("oid")
    if oid is not None and not isinstance(oid, (int, str)):
        raise ProtocolError("'oid' must be an integer or string")
    return _parse_object(payload, oid=oid)


def parse_delete_request(payload: Any):
    """Validate a /delete body into its oid."""
    payload = _require_dict(payload)
    if "oid" not in payload:
        raise ProtocolError("missing 'oid'")
    oid = payload["oid"]
    if not isinstance(oid, (int, str)):
        raise ProtocolError("'oid' must be an integer or string")
    return oid


# ------------------------------ responses ----------------------------- #

def query_response(
    result, epoch: int, *, cached: bool = False, request=None,
    include_objects: bool = False,
) -> dict:
    """JSON body for a sharded query result (see module docstring).

    With a ``request`` (:class:`repro.obs.request.RequestContext`), the
    response carries ``request_id`` / ``trace_id`` / ``sampled`` so a
    client can correlate its answer with server-side logs and traces.
    ``include_objects`` adds each candidate's instance geometry
    (``points``/``probs`` as plain float lists — JSON ``repr`` round-trips
    float64 exactly) so the router can refine survivors bit-identically.
    """
    degradation = (
        result.degradation.to_dict() if result.degradation is not None else None
    )
    candidates = []
    for obj, count in zip(result.candidates, result.dominator_counts):
        entry = {"oid": obj.oid, "dominators": count}
        if include_objects:
            entry["points"] = obj.points.tolist()
            entry["probs"] = obj.probs.tolist()
        candidates.append(entry)
    body = {
        "candidates": candidates,
        "count": len(result.candidates),
        "degraded": result.degradation is not None,
        "degradation": degradation,
        "elapsed_ms": result.elapsed * 1000.0,
        "epoch": epoch,
        "cached": cached,
        "shards": result.shards,
        "backend": result.backend,
        "fanout": result.fanout,
        "refine_checks": result.refine_checks,
    }
    if request is not None:
        body["request_id"] = request.request_id
        body["trace_id"] = request.trace_id
        body["sampled"] = request.sampled
    return body


#: Response keys scoped to one request, stripped before a body is cached
#: and re-stamped from the serving request on a cache hit.
REQUEST_SCOPED_KEYS: tuple[str, ...] = ("request_id", "trace_id", "sampled")


def insert_response(oid, epoch: int) -> dict:
    """JSON body acknowledging an insert at its new epoch."""
    return {"oid": oid, "epoch": epoch, "inserted": True}


def delete_response(oid, epoch: int) -> dict:
    """JSON body acknowledging a delete at its new epoch."""
    return {"oid": oid, "epoch": epoch, "deleted": True}


def error_body(message: str, **extra) -> dict:
    """JSON error body; ``extra`` keys ride along (e.g. a report)."""
    body = {"error": message}
    body.update(extra)
    return body


def backend_error_body(message: str) -> dict:
    """503 body for a transient backend failure (e.g. a dead pool worker).

    ``retryable`` tells clients the request itself was fine — the same
    query succeeds once the backend has rebuilt its workers, which happens
    lazily on the next attempt.
    """
    return error_body(message, retryable=True)


def recovering_body() -> dict:
    """503 body while a warm restart is still replaying the WAL.

    ``retryable`` for the same reason as :func:`backend_error_body`; the
    ``recovering`` flag lets clients distinguish "wait for recovery" from
    a backend hiccup.
    """
    return error_body(
        "recovering: warm restart in progress", retryable=True,
        recovering=True,
    )
