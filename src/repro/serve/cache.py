"""Versioned LRU result cache for served NNC queries.

Keys embed the **dataset epoch** (bumped by every insert/delete in
:mod:`repro.serve.updates`), so a stale hit after an update is structurally
impossible: the post-update key differs and misses.  No invalidation
scanning is needed — superseded entries simply age out of the LRU.

Payloads are the JSON-ready response dicts of :mod:`repro.serve.protocol`
(plain data, safe to share across threads).  Degraded answers are *not*
cached: a budget-truncated superset reflects one request's budget, not the
dataset, and the next request may afford the exact answer.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.objects.uncertain import UncertainObject

__all__ = ["ResultCache", "query_digest"]


def query_digest(query: UncertainObject) -> str:
    """Content digest of a query object (instances + weights).

    The ``oid`` is deliberately excluded: two requests shipping the same
    instance cloud are the same query.
    """
    h = hashlib.sha1()
    pts = np.ascontiguousarray(query.points, dtype=np.float64)
    ps = np.ascontiguousarray(query.probs, dtype=np.float64)
    h.update(str(pts.shape).encode())
    h.update(pts.tobytes())
    h.update(ps.tobytes())
    return h.hexdigest()


class ResultCache:
    """Thread-safe LRU cache keyed by (epoch, operator, metric, k, digest).

    Args:
        capacity: maximum number of entries (0 disables caching).
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; feeds
            ``repro_serve_cache_hits_total`` / ``_misses_total`` /
            ``_evictions_total`` and the ``repro_serve_cache_size`` gauge.
    """

    def __init__(self, capacity: int = 256, *, metrics: Any = None) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(
        epoch: int,
        operator: str,
        metric: str,
        k: int,
        query: UncertainObject,
    ) -> tuple:
        """Cache key for one query request against one dataset version."""
        return (epoch, operator, metric, k, query_digest(query))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Any | None:
        """Cached payload for ``key`` (LRU-refreshed), or None on miss."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if self.metrics is not None:
            name = (
                "repro_serve_cache_hits_total"
                if payload is not None
                else "repro_serve_cache_misses_total"
            )
            self.metrics.inc(name)
        return payload

    def put(self, key: tuple, payload: Any) -> None:
        """Store ``payload``; evicts the least recently used past capacity."""
        if self.capacity == 0:
            return
        evicted = 0
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            size = len(self._entries)
        if self.metrics is not None:
            if evicted:
                self.metrics.inc("repro_serve_cache_evictions_total", evicted)
            self.metrics.set_gauge("repro_serve_cache_size", size)

    def clear(self) -> int:
        """Drop every entry (epoch keys make this unnecessary for updates)."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
        if self.metrics is not None:
            self.metrics.set_gauge("repro_serve_cache_size", 0)
        return n

    def stats(self) -> dict[str, int | float]:
        """Hit/miss/eviction tallies and the current hit ratio."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_ratio": (self.hits / total) if total else 0.0,
            }
