"""Kill-injection smoke for the durable tier (``repro.serve.durable``).

Run as ``python -m repro.serve.crashsmoke`` (CI job).  Each round:

1. starts a real ``repro serve`` subprocess with ``--data-dir`` (WAL +
   snapshots, ``--fsync always``) and ``--audit-log``,
2. fires a burst of inserts/deletes/queries at it over HTTP,
3. SIGKILLs it at a randomized point — every third round arms
   ``REPRO_WAL_KILL_AT_APPEND`` so the process dies **mid-WAL-frame**
   (torn tail), the rest kill after a random delay (any instant:
   mid-snapshot, mid-burst, idle),
4. computes the ground-truth durable epoch straight from the files
   (:func:`repro.serve.durable.durable_epoch`),
5. restarts the server and asserts the recovered ``/status`` epoch equals
   the ground truth **exactly**, and that an injected tear was flagged on
   the recovery report (never silently dropped),
6. serves more traffic, drains via SIGTERM (checkpoint on close), and
7. runs ``repro replay`` over the audit log — exit 0, proving the
   two-log reconciliation kept the black box replayable across the crash.

Exit code 0 = every round held; 1 = a round failed (details on stderr,
the round's workdir is left in place for inspection).
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import random
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.objects.io import save_objects
from repro.objects.uncertain import UncertainObject
from repro.serve.durable import durable_epoch

_PORT_RE = re.compile(r"http://[\d.]+:(\d+)")
OPERATORS = ("SSD", "SSSD", "PSD", "FSD")


class RoundFailure(AssertionError):
    """One crash round violated the durability contract."""


def _request(port: int, method: str, path: str, payload=None, timeout=10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        if resp.getheader("Content-Type", "").startswith("application/json"):
            return resp.status, json.loads(data)
        return resp.status, data.decode()
    finally:
        conn.close()


class _Server:
    """A ``repro serve`` subprocess with stdout-scraped port discovery."""

    def __init__(self, args: list[str], env: dict | None = None) -> None:
        full_env = dict(os.environ)
        if env:
            full_env.update(env)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *args],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=full_env,
        )
        self.lines: list[str] = []
        self._reader = threading.Thread(target=self._drain, daemon=True)
        self._reader.start()

    def _drain(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def wait_port(self, timeout: float = 60.0) -> int:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                m = _PORT_RE.search(line)
                if m:
                    return int(m.group(1))
            if self.proc.poll() is not None:
                raise RoundFailure(
                    f"server exited rc={self.proc.returncode} before "
                    f"binding; stdout: {self.lines!r}"
                )
            time.sleep(0.02)
        raise RoundFailure("server did not report its port in time")

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=30.0)

    def terminate(self, timeout: float = 60.0) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout)


def _burst(
    port: int, rng: random.Random, stop: threading.Event,
    inserted: list, lock: threading.Lock,
) -> None:
    """Mixed traffic until stopped; connection errors expected at the kill."""
    dims = 2
    while not stop.is_set():
        try:
            roll = rng.random()
            if roll < 0.5:
                pts = [[rng.uniform(-5, 5) for _ in range(dims)]
                       for _ in range(3)]
                status, body = _request(
                    port, "POST", "/insert", {"points": pts}
                )
                if status == 200:
                    with lock:
                        inserted.append(body["oid"])
            elif roll < 0.7:
                with lock:
                    oid = inserted.pop() if inserted else None
                if oid is not None:
                    _request(port, "POST", "/delete", {"oid": oid})
            else:
                pts = [[rng.uniform(-5, 5) for _ in range(dims)]
                       for _ in range(2)]
                _request(port, "POST", "/query", {
                    "points": pts, "operator": rng.choice(OPERATORS),
                    "k": rng.randint(1, 3),
                })
        except (ConnectionError, OSError, http.client.HTTPException,
                json.JSONDecodeError):
            if stop.is_set():
                return
            time.sleep(0.01)


def run_round(
    workdir: Path, rnd: int, rng: random.Random, *, torn: bool
) -> dict:
    """One kill → recover → verify → replay cycle; returns a summary."""
    workdir.mkdir(parents=True, exist_ok=True)
    data_dir = workdir / "data"
    dataset = workdir / "dataset.npz"
    audit = workdir / "audit.jsonl"
    nprng = np.random.default_rng(1000 + rnd)
    objects = [
        UncertainObject(nprng.normal(size=(4, 2)), None, oid=i)
        for i in range(30)
    ]
    save_objects(dataset, objects)

    serve_args = [
        "--dataset", str(dataset), "--port", "0", "--shards", "2",
        "--backend", "serial", "--data-dir", str(data_dir),
        "--fsync", "always",
        "--snapshot-every", str(rng.randint(3, 10)),
        "--audit-log", str(audit),
        "--compact-threshold", "0.5",
    ]
    env = {}
    kill_at = 0
    if torn:
        kill_at = rng.randint(2, 8)
        env["REPRO_WAL_KILL_AT_APPEND"] = str(kill_at)

    server = _Server(serve_args, env=env)
    inserted: list = []
    lock = threading.Lock()
    stop = threading.Event()
    try:
        port = server.wait_port()
        burst = threading.Thread(
            target=_burst, args=(port, rng, stop, inserted, lock),
            daemon=True,
        )
        burst.start()
        if torn:
            # The k-th WAL append half-writes its frame and SIGKILLs the
            # process itself; wait for that, with a hard fallback.
            deadline = time.monotonic() + 30.0
            while server.proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.02)
            self_killed = server.proc.poll() is not None
        else:
            time.sleep(rng.uniform(0.05, 0.7))
            self_killed = False
    finally:
        stop.set()
        server.kill()

    expected_epoch, tail = durable_epoch(data_dir)
    if torn and self_killed and tail is None:
        raise RoundFailure(
            f"round {rnd}: kill-at-append {kill_at} fired but the WAL "
            "shows no torn tail"
        )

    # ---- warm restart: the recovered epoch must be exact -------------- #
    server = _Server(serve_args)  # no kill env this time
    try:
        port = server.wait_port()
        deadline = time.monotonic() + 30.0
        status_body = None
        while time.monotonic() < deadline:
            try:
                code, body = _request(port, "GET", "/status")
                if code == 200 and body.get("status") in ("ok", "compacting"):
                    status_body = body
                    break
            except (ConnectionError, OSError, http.client.HTTPException):
                pass
            time.sleep(0.05)
        if status_body is None:
            raise RoundFailure(f"round {rnd}: restarted server never ready")
        got = status_body["epoch"]
        if got != expected_epoch:
            raise RoundFailure(
                f"round {rnd}: recovered epoch {got} != durable epoch "
                f"{expected_epoch} (torn={torn})"
            )
        recovery = status_body.get("recovery") or {}
        if tail is not None and recovery.get("wal_torn") is None:
            raise RoundFailure(
                f"round {rnd}: torn WAL tail at offset {tail.offset} was "
                "not flagged on the recovery report"
            )
        # A little post-restart life, then a clean drain (checkpoints).
        code, _ = _request(port, "POST", "/insert",
                           {"points": [[0.1, 0.2], [0.3, 0.4]]})
        if code != 200:
            raise RoundFailure(f"round {rnd}: post-restart insert -> {code}")
        rc = server.terminate()
        if rc != 0:
            raise RoundFailure(f"round {rnd}: drain exited rc={rc}")
    finally:
        server.kill()

    # ---- the black box must still replay ------------------------------ #
    replay = subprocess.run(
        [sys.executable, "-m", "repro", "replay", str(audit),
         "--dataset", str(dataset), "--shards", "2"],
        capture_output=True, text=True, timeout=300.0,
    )
    if replay.returncode != 0:
        raise RoundFailure(
            f"round {rnd}: repro replay exited {replay.returncode}:\n"
            f"{replay.stdout}\n{replay.stderr}"
        )
    return {
        "round": rnd,
        "torn_injected": torn,
        "torn_observed": tail is not None,
        "recovered_epoch": expected_epoch,
        "audit_reconciled": recovery.get("audit_reconciled", 0),
        "recovery_source": recovery.get("source"),
    }


def main(argv=None) -> int:
    """Run the kill-injection rounds; exit 0 iff every round recovered."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workdir", metavar="DIR",
                        help="round artifacts land here (kept on failure); "
                        "default: a temp dir, removed on success")
    args = parser.parse_args(argv)

    base = Path(args.workdir) if args.workdir else Path(
        tempfile.mkdtemp(prefix="crashsmoke-")
    )
    rng = random.Random(args.seed)
    failures = 0
    for rnd in range(args.rounds):
        torn = rnd % 3 == 2
        rdir = base / f"round-{rnd:03d}"
        try:
            summary = run_round(rdir, rnd, rng, torn=torn)
        except RoundFailure as exc:
            failures += 1
            print(f"FAIL {exc}", file=sys.stderr)
            print(f"     artifacts kept in {rdir}", file=sys.stderr)
            continue
        print(
            f"round {rnd:2d}: ok  epoch={summary['recovered_epoch']:<4d} "
            f"source={summary['recovery_source']:<8s} "
            f"torn={'flagged' if summary['torn_observed'] else 'no':<7s} "
            f"reconciled={summary['audit_reconciled']}"
        )
        shutil.rmtree(rdir, ignore_errors=True)
    if failures:
        print(f"crashsmoke: {failures}/{args.rounds} round(s) FAILED",
              file=sys.stderr)
        return 1
    print(f"crashsmoke: all {args.rounds} round(s) recovered exactly")
    if not args.workdir:
        shutil.rmtree(base, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
