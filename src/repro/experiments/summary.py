"""Automated experiment summary (Appendix C.2).

The paper closes its evaluation with three observations.  This module turns
them into programmatic checks over regenerated figure rows, so a reproduction
run can assert — rather than eyeball — that the qualitative conclusions hold:

1. F-SD / F+-SD always produce (much) larger candidate sets than the three
   new operators;
2. the new operators trade candidate size against function coverage
   monotonically (SSD <= SSSD <= PSD);
3. the progressive search front-loads high-quality candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class Observation:
    """One checked observation with its supporting numbers."""

    name: str
    holds: bool
    detail: str


def check_candidate_blowup(
    fig10_rows: Sequence[dict], min_ratio: float = 1.5
) -> Observation:
    """Observation 1: FSD/F+SD candidate sets dwarf the new operators'."""
    ratios = []
    for row in fig10_rows:
        base = max(row["PSD"], 1e-9)
        ratios.append(row["F+SD"] / base)
    worst = min(ratios)
    avg = sum(ratios) / len(ratios)
    return Observation(
        "F+SD blow-up vs PSD",
        worst >= 1.0 and avg >= min_ratio,
        f"avg F+SD/PSD ratio {avg:.2f}, min {worst:.2f} across "
        f"{len(ratios)} datasets",
    )


def check_size_coverage_tradeoff(fig10_rows: Sequence[dict]) -> Observation:
    """Observation 2: SSD <= SSSD <= PSD on every dataset."""
    violations = [
        row.get("dataset", "?")
        for row in fig10_rows
        if not (row["SSD"] <= row["SSSD"] + 1e-9 <= row["PSD"] + 1e-9)
    ]
    return Observation(
        "size/coverage monotonicity",
        not violations,
        "no violations" if not violations else f"violated on {violations}",
    )


def check_progressive_frontloading(
    fig14_rows: Sequence[dict], time_share: float = 0.8
) -> Observation:
    """Observation 3: half the candidates arrive well before half... the end.

    The paper reports 70% of candidates within half the total time; we assert
    the weaker, scale-robust form that the first half of the candidates takes
    at most ``time_share`` of the total time.
    """
    if not fig14_rows:
        return Observation("progressive front-loading", False, "no rows")
    total = fig14_rows[-1]["time_s"]
    halfway = fig14_rows[len(fig14_rows) // 2]["time_s"]
    if total <= 0:
        return Observation(
            "progressive front-loading", True, "search too fast to profile"
        )
    share = halfway / total
    return Observation(
        "progressive front-loading",
        share <= time_share,
        f"first half of candidates in {100 * share:.0f}% of the total time",
    )


def summarize(fig10_rows: Sequence[dict], fig14_rows: Sequence[dict]) -> list[Observation]:
    """Run all Appendix C.2 checks."""
    return [
        check_candidate_blowup(fig10_rows),
        check_size_coverage_tradeoff(fig10_rows),
        check_progressive_frontloading(fig14_rows),
    ]


def format_summary(observations: Sequence[Observation]) -> str:
    """Human-readable rendering of the observation list."""
    lines = ["Experiment summary (Appendix C.2 observations):"]
    for obs in observations:
        status = "HOLDS" if obs.holds else "VIOLATED"
        lines.append(f"  [{status:8}] {obs.name}: {obs.detail}")
    return "\n".join(lines)
