"""Experiment harness reproducing the paper's evaluation (Section 6).

* :mod:`repro.experiments.params` — the Table 2 parameter grid with the
  scale reductions this pure-Python reproduction applies (documented in
  EXPERIMENTS.md).
* :mod:`repro.experiments.harness` — run NNC searches over workloads and
  collect candidate sizes, response times and filter counters.
* :mod:`repro.experiments.figures` — one entry point per paper figure.
* :mod:`repro.experiments.report` — plain-text table rendering.
"""

from repro.experiments.cache import DatasetCache
from repro.experiments.harness import (
    WorkloadStats,
    candidate_quality,
    evaluate_workload,
    progressive_profile,
)
from repro.experiments.params import SCALES, ExperimentParams, Scale
from repro.experiments.report import format_table, kernel_summary, kernel_summary_table
from repro.experiments.summary import Observation, format_summary, summarize

__all__ = [
    "DatasetCache",
    "ExperimentParams",
    "Observation",
    "format_summary",
    "summarize",
    "SCALES",
    "Scale",
    "WorkloadStats",
    "candidate_quality",
    "evaluate_workload",
    "format_table",
    "kernel_summary",
    "kernel_summary_table",
    "progressive_profile",
]
