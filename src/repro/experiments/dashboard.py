"""Static perf dashboard: every figure + bench gate in one HTML file.

:func:`render_dashboard` turns built :class:`FigureArtifact` rows into a
single self-contained ``index.html`` — inline SVG charts, inline data
tables, inline Vega-Lite specs, zero network requests and zero JS — so the
artifact renders in a browser, in a CI artifact viewer, and in a
``git diff``.  Charts follow one system: categorical series take a fixed
validated palette (same hue order in light and dark mode), lines are 2px
with point markers, grouped bars carry a 2px surface gap, every mark has a
native ``<title>`` tooltip, and any multi-series chart gets a legend.

Sections, in order: run provenance, bench-gate verdicts (from
``compare_bench.py --verdict-out``), paper figures, bench figures, the
cross-commit perf trajectory.
"""

from __future__ import annotations

import html
import json
import math
from typing import Sequence

from repro.experiments.registry import (
    FigureArtifact,
    long_rows,
    vega_lite_spec,
)

__all__ = ["render_dashboard", "svg_chart"]

# Validated categorical palette (dataviz reference instance): fixed slot
# order, light/dark steps of the same hues.  Slot order is the
# colorblind-safety mechanism — never cycle or re-sort it.
_LIGHT = ("#2a78d6", "#eb6834", "#1baf7a", "#eda100",
          "#e87ba4", "#008300", "#4a3aa7", "#e34948")
_DARK = ("#3987e5", "#d95926", "#199e70", "#c98500",
         "#d55181", "#008300", "#9085e9", "#e66767")

_W, _H = 640, 300
_ML, _MR, _MT, _MB = 64, 16, 14, 46


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: float) -> str:
    """Compact tick/tooltip number: 3 significant digits, k/M suffixes."""
    if value == 0:
        return "0"
    if abs(value) >= 1_000_000:
        return f"{value / 1_000_000:.3g}M"
    if abs(value) >= 10_000:
        return f"{value / 1_000:.3g}k"
    return f"{value:.3g}"


def _y_ticks(lo: float, hi: float, log: bool) -> list[float]:
    if log:
        lo_e = math.floor(math.log10(lo))
        hi_e = math.ceil(math.log10(hi))
        step = max(1, (hi_e - lo_e) // 5)
        return [10.0 ** e for e in range(lo_e, hi_e + 1, step)]
    if hi == lo:
        return [lo]
    raw = (hi - lo) / 4
    mag = 10.0 ** math.floor(math.log10(raw))
    step = min(s * mag for s in (1, 2, 5, 10) if s * mag >= raw)
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12:
        ticks.append(round(t, 10))
        t += step
    return ticks or [lo]


def svg_chart(art: FigureArtifact) -> str:
    """One inline SVG for the artifact's chart (line or grouped bar)."""
    chart = art.chart
    data = long_rows(art)
    if not data:
        return "<p class='empty'>no data</p>"
    series: list[str] = []
    for row in data:
        if row["series"] not in series:
            series.append(row["series"])
    x_values: list = []
    for row in data:
        if row[chart.x] not in x_values:
            x_values.append(row[chart.x])

    values = [row["value"] for row in data]
    log = chart.log_y and min(values) > 0
    lo, hi = min(values), max(values)
    if chart.kind == "bar" and not log:
        lo = min(lo, 0.0)
    if log:
        lo, hi = 10.0 ** math.floor(math.log10(lo)), 10.0 ** math.ceil(math.log10(hi))
    elif hi == lo:
        hi = lo + 1.0
    pad = 0.0 if log else 0.05 * (hi - lo)
    y0, y1 = lo - (0.0 if chart.kind == "bar" else pad), hi + pad
    if log:
        y0, y1 = lo, hi

    plot_w, plot_h = _W - _ML - _MR, _H - _MT - _MB

    def sy(v: float) -> float:
        if log:
            frac = (math.log10(v) - math.log10(y0)) / (
                math.log10(y1) - math.log10(y0)
            )
        else:
            frac = (v - y0) / (y1 - y0)
        return _MT + plot_h * (1.0 - frac)

    numeric_x = chart.x_type == "quantitative" and all(
        isinstance(v, (int, float)) for v in x_values
    )
    if numeric_x:
        xs = sorted(float(v) for v in x_values)
        x_lo, x_hi = xs[0], xs[-1]
        span = (x_hi - x_lo) or 1.0

        def sx(v) -> float:
            return _ML + plot_w * (float(v) - x_lo) / span
    else:
        slot = plot_w / len(x_values)

        def sx(v) -> float:
            return _ML + slot * (x_values.index(v) + 0.5)

    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{_esc(art.title)}" class="chart">'
    ]
    # Recessive grid + y axis labels.
    for tick in _y_ticks(y0 if log else max(y0, lo), hi, log):
        y = sy(tick)
        parts.append(
            f'<line class="grid" x1="{_ML}" y1="{y:.1f}" '
            f'x2="{_W - _MR}" y2="{y:.1f}"/>'
            f'<text class="tick" x="{_ML - 6}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{_esc(_fmt(tick))}</text>'
        )
    # X labels (every slot for ordinal, ticks for numeric).
    x_labels = (
        [(v, sx(v)) for v in xs] if numeric_x
        else [(v, sx(v)) for v in x_values]
    )
    if len(x_labels) > 12:  # thin dense ordinal axes
        keep = max(1, len(x_labels) // 10)
        x_labels = x_labels[::keep] + [x_labels[-1]]
    for label, x in x_labels:
        parts.append(
            f'<text class="tick" x="{x:.1f}" y="{_H - _MB + 16}" '
            f'text-anchor="middle">{_esc(_fmt(label) if isinstance(label, (int, float)) else label)}</text>'
        )
    # Axis titles.
    parts.append(
        f'<text class="axis" x="{_ML + plot_w / 2:.0f}" y="{_H - 8}" '
        f'text-anchor="middle">{_esc(chart.x)}</text>'
        f'<text class="axis" x="14" y="{_MT + plot_h / 2:.0f}" '
        f'text-anchor="middle" transform="rotate(-90 14 {_MT + plot_h / 2:.0f})">'
        f"{_esc(chart.y_title or 'value')}</text>"
    )

    by_series: dict[str, list[dict]] = {name: [] for name in series}
    for row in data:
        by_series[row["series"]].append(row)

    if chart.kind == "line":
        for si, name in enumerate(series):
            rows = by_series[name]
            if numeric_x:
                rows = sorted(rows, key=lambda r: float(r[chart.x]))
            points = [(sx(r[chart.x]), sy(r["value"])) for r in rows]
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
            cls = f"s{si % len(_LIGHT)}"
            parts.append(f'<polyline class="line {cls}" points="{path}"/>')
            for r, (x, y) in zip(rows, points):
                tip = f"{name} · {chart.x}={r[chart.x]} · {_fmt(r['value'])}"
                if "raw" in r:
                    tip += f" (raw {_fmt(r['raw'])})"
                parts.append(
                    f'<circle class="dot {cls}" cx="{x:.1f}" cy="{y:.1f}" '
                    f'r="3.5"><title>{_esc(tip)}</title></circle>'
                )
    else:  # grouped bars, 2px surface gap between adjacent fills
        n_x, n_s = len(x_values), len(series)
        group_w = (plot_w / max(1, (n_x if not numeric_x else n_x))) * 0.84
        bar_w = max(2.0, group_w / n_s - 2.0)
        base_y = sy(y0 if not log else y0)
        for si, name in enumerate(series):
            cls = f"s{si % len(_LIGHT)}"
            for r in by_series[name]:
                cx = sx(r[chart.x])
                x = cx - group_w / 2 + si * (group_w / n_s) + 1.0
                y = sy(r["value"])
                h = max(0.0, base_y - y)
                tip = f"{name} · {r[chart.x]} · {_fmt(r['value'])}"
                parts.append(
                    f'<rect class="bar {cls}" x="{x:.1f}" y="{y:.1f}" '
                    f'width="{bar_w:.1f}" height="{h:.1f}" rx="2">'
                    f"<title>{_esc(tip)}</title></rect>"
                )
    parts.append(
        f'<line class="axisline" x1="{_ML}" y1="{_MT + plot_h}" '
        f'x2="{_W - _MR}" y2="{_MT + plot_h}"/>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _legend(art: FigureArtifact) -> str:
    data = long_rows(art)
    series: list[str] = []
    for row in data:
        if row["series"] not in series:
            series.append(row["series"])
    if len(series) < 2:
        return ""
    items = "".join(
        f'<span class="key"><span class="swatch s{i % len(_LIGHT)}"></span>'
        f"{_esc(name)}</span>"
        for i, name in enumerate(series)
    )
    return f'<div class="legend">{items}</div>'


def _table(rows: list[dict], limit: int = 24) -> str:
    cols: list[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    head = "".join(f"<th>{_esc(c)}</th>" for c in cols)
    body = []
    for row in rows[:limit]:
        cells = []
        for c in cols:
            v = row.get(c, "")
            if isinstance(v, float):
                v = _fmt(v)
            cells.append(f"<td>{_esc(v)}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    more = (
        f'<p class="muted">… {len(rows) - limit} more row(s) in the CSV</p>'
        if len(rows) > limit
        else ""
    )
    return (
        f'<table><thead><tr>{head}</tr></thead>'
        f"<tbody>{''.join(body)}</tbody></table>{more}"
    )


_GATE_BADGES = {
    "pass": ("ok", "&#10003; pass"),
    "fail": ("bad", "&#10007; fail"),
    "skip": ("skip", "&#8722; skip"),
}


def _gates_section(verdicts: Sequence[dict]) -> str:
    out = ['<section id="gates"><h2>Bench gates</h2>']
    for verdict in verdicts:
        title = (
            f"{verdict.get('kind', '?')} — "
            f"{verdict.get('current', '?')} vs {verdict.get('baseline', '?')}"
        )
        flag = (
            ' <span class="muted">(informational: scale mismatch)</span>'
            if verdict.get("informational")
            else ""
        )
        rows = []
        for gate in verdict.get("gates", []):
            cls, badge = _GATE_BADGES.get(gate.get("status"), ("skip", "?"))
            measured = gate.get("measured")
            baseline = gate.get("baseline")
            rows.append(
                "<tr>"
                f'<td>{_esc(gate.get("gate", "?"))}</td>'
                f'<td class="{cls}">{badge}</td>'
                f"<td>{_esc(_fmt(measured) if isinstance(measured, (int, float)) else '—')}</td>"
                f"<td>{_esc(_fmt(baseline) if isinstance(baseline, (int, float)) else '—')}</td>"
                f'<td class="muted">{_esc(gate.get("detail") or "")}</td>'
                "</tr>"
            )
        out.append(
            f"<h3>{_esc(title)}{flag}</h3>"
            "<table><thead><tr><th>gate</th><th>verdict</th><th>measured</th>"
            "<th>baseline</th><th>detail</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>"
        )
    out.append("</section>")
    return "".join(out)


def _css() -> str:
    light_vars = "\n".join(
        f"  --series-{i + 1}: {c};" for i, c in enumerate(_LIGHT)
    )
    dark_vars = "\n".join(
        f"    --series-{i + 1}: {c};" for i, c in enumerate(_DARK)
    )
    series_rules = "\n".join(
        f".s{i} {{ stroke: var(--series-{i + 1}); fill: var(--series-{i + 1}); }}"
        for i in range(len(_LIGHT))
    )
    return f"""
.viz-root {{
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --text-muted: #7a786f;
  --grid: #e4e2dc; --ok: #008300; --bad: #e34948;
{light_vars}
}}
@media (prefers-color-scheme: dark) {{
  .viz-root {{
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #262625;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --text-muted: #8c8b81;
    --grid: #383835; --ok: #33a133; --bad: #e66767;
{dark_vars}
  }}
}}
body.viz-root {{
  margin: 0 auto; padding: 1.5rem; max-width: 72rem;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
}}
h1 {{ font-size: 1.4rem; margin: 0 0 .25rem; }}
h2 {{ font-size: 1.15rem; margin: 2rem 0 .5rem;
     border-bottom: 1px solid var(--grid); padding-bottom: .25rem; }}
h3 {{ font-size: 1rem; margin: 1.25rem 0 .25rem; }}
nav a {{ margin-right: .75rem; }}
a {{ color: var(--series-1); }}
p {{ margin: .25rem 0; }}
.prov, .muted, .notes {{ color: var(--text-muted); }}
.desc {{ color: var(--text-secondary); }}
svg.chart {{ width: 100%; max-width: {_W}px; height: auto; display: block;
             background: var(--surface-1); }}
.grid {{ stroke: var(--grid); stroke-width: 1; }}
.axisline {{ stroke: var(--text-muted); stroke-width: 1; }}
.tick, .axis {{ font: 11px system-ui, sans-serif; fill: var(--text-secondary);
                stroke: none; }}
.axis {{ fill: var(--text-muted); }}
.line {{ fill: none; stroke-width: 2; }}
.dot {{ stroke: var(--surface-1); stroke-width: 2; }}
.bar {{ stroke: var(--surface-1); stroke-width: 1; }}
{series_rules}
.legend {{ display: flex; flex-wrap: wrap; gap: .25rem 1rem; margin: .25rem 0; }}
.key {{ display: inline-flex; align-items: center; gap: .4rem;
        color: var(--text-secondary); }}
.swatch {{ width: 10px; height: 10px; border-radius: 2px; display: inline-block; }}
table {{ border-collapse: collapse; margin: .5rem 0; font-size: 13px; }}
th, td {{ border: 1px solid var(--grid); padding: .2rem .55rem;
          text-align: left; color: var(--text-secondary); }}
th {{ color: var(--text-primary); background: var(--surface-2); }}
td.ok {{ color: var(--ok); font-weight: 600; }}
td.bad {{ color: var(--bad); font-weight: 600; }}
td.skip {{ color: var(--text-muted); }}
details {{ margin: .4rem 0; }}
details pre {{ background: var(--surface-2); padding: .6rem; overflow-x: auto;
               font-size: 12px; max-height: 22rem; }}
section.fig {{ margin-bottom: 1.5rem; }}
"""


_CATEGORY_TITLES = {
    "paper": "Paper figures (Section 6 / Appendix C reproductions)",
    "bench": "Benchmarks (BENCH_kernels.json / BENCH_serve.json)",
    "observability": "Observability (continuous profiler, fleet federation)",
    "trajectory": "Perf trajectory (benchmarks/results/trajectory.jsonl)",
}


def render_dashboard(
    artifacts: Sequence[FigureArtifact],
    *,
    verdicts: Sequence[dict] = (),
    provenance_record: dict | None = None,
    scale: str | None = None,
) -> str:
    """The full self-contained ``index.html`` as a string."""
    prov = provenance_record or {}
    prov_bits = [
        bit
        for bit in (
            f"commit {str(prov['sha'])[:10]}" if prov.get("sha") else None,
            f"branch {prov['branch']}" if prov.get("branch") else None,
            prov.get("date"),
            f"host {prov['hostname']}" if prov.get("hostname") else None,
            f"{prov['cpu_count']} cpu(s)" if prov.get("cpu_count") else None,
            f"paper figures at scale={scale}" if scale else None,
        )
        if bit
    ]
    toc = "".join(
        f'<a href="#{_esc(art.fid)}">{_esc(art.fid)}</a>' for art in artifacts
    ) + ('<a href="#gates">gates</a>' if verdicts else "")

    sections = []
    by_category: dict[str, list[FigureArtifact]] = {}
    for art in artifacts:
        by_category.setdefault(art.category, []).append(art)
    known = ("paper", "bench", "trajectory")
    extra = [c for c in by_category if c not in known]
    for category in (*known[:2], *extra, known[2]):
        arts = by_category.pop(category, [])
        if not arts:
            continue
        sections.append(
            f"<h2>{_esc(_CATEGORY_TITLES.get(category, category))}</h2>"
        )
        for art in arts:
            spec_json = json.dumps(
                vega_lite_spec(art), indent=2, sort_keys=True
            )
            sections.append(
                f'<section class="fig" id="{_esc(art.fid)}">'
                f"<h3>{_esc(art.fid)} — {_esc(art.title)}</h3>"
                f'<p class="desc">{_esc(art.description)}</p>'
                + (f'<p class="notes">{_esc(art.notes)}</p>' if art.notes else "")
                + f"<figure>{svg_chart(art)}</figure>"
                + _legend(art)
                # Figure-supplied HTML (flamegraph SVG, fleet quantile
                # table) — already rendered, injected verbatim.
                + (art.extra_html or "")
                + f"<details><summary>data ({len(art.rows)} row(s))</summary>"
                + _table(art.rows)
                + "</details>"
                "<details><summary>Vega-Lite spec</summary>"
                f"<pre>{_esc(spec_json)}</pre></details>"
                f'<p class="muted"><a href="data/{_esc(art.fid)}.csv">CSV</a>'
                f' · <a href="specs/{_esc(art.fid)}.vl.json">spec</a></p>'
                "</section>"
            )

    return (
        "<!doctype html>\n<html lang=\"en\">\n<head>\n"
        '<meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        "<title>repro — figures &amp; perf trajectory</title>\n"
        f"<style>{_css()}</style>\n</head>\n"
        '<body class="viz-root">\n'
        "<header><h1>repro — figures &amp; perf trajectory</h1>"
        f'<p class="prov">{_esc(" · ".join(prov_bits))}</p></header>\n'
        f"<nav>{toc}</nav>\n"
        + (_gates_section(verdicts) if verdicts else "")
        + "\n".join(sections)
        + "\n</body>\n</html>\n"
    )
