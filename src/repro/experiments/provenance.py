"""Run provenance: who/where/when facts stamped onto generated artifacts.

Every benchmark payload and figure artifact this repo emits should answer
"which commit produced these numbers, on what machine, when" without a
side-channel.  :func:`collect` gathers the facts; :func:`stamp` writes them
under ``payload["meta"]["provenance"]`` so ``BENCH_*.json``, the trajectory
store (:mod:`repro.experiments.trajectory`) and the dashboard
(:mod:`repro.experiments.dashboard`) all carry the same record shape:

.. code-block:: json

    {"sha": "4e3367e…", "branch": "main", "date": "2026-08-07T12:00:00Z",
     "cpu_count": 4, "hostname": "ci-runner", "python": "3.12.3"}

Git facts degrade to ``"unknown"`` outside a repository (or without a git
binary) instead of failing — provenance must never break the run it
documents.
"""

from __future__ import annotations

import datetime as _dt
import os
import platform
import socket
import subprocess
from pathlib import Path

__all__ = ["repo_root", "git_describe", "collect", "stamp"]


def repo_root() -> Path:
    """Best-effort repository root: the tree containing this package."""
    return Path(__file__).resolve().parents[3]


def _git(args: list[str], cwd: Path) -> str | None:
    try:
        out = subprocess.run(
            ["git", *args],
            cwd=str(cwd),
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    value = out.stdout.strip()
    return value if out.returncode == 0 and value else None


def git_describe(root: Path | None = None) -> dict:
    """``{"sha": …, "branch": …, "dirty": …}`` for ``root`` (or this repo).

    Values fall back to ``"unknown"`` / ``None`` when git is unavailable.
    """
    cwd = Path(root) if root is not None else repo_root()
    sha = _git(["rev-parse", "HEAD"], cwd) or "unknown"
    branch = _git(["rev-parse", "--abbrev-ref", "HEAD"], cwd) or "unknown"
    status = _git(["status", "--porcelain"], cwd)
    dirty = bool(status) if status is not None else None
    return {"sha": sha, "branch": branch, "dirty": dirty}


def collect(root: Path | None = None) -> dict:
    """One provenance record: git facts + machine facts + UTC timestamp."""
    record = git_describe(root)
    record.update(
        {
            "date": _dt.datetime.now(_dt.timezone.utc)
            .replace(microsecond=0)
            .isoformat()
            .replace("+00:00", "Z"),
            "cpu_count": os.cpu_count() or 1,
            "hostname": socket.gethostname(),
            "python": platform.python_version(),
        }
    )
    return record


def stamp(payload: dict, root: Path | None = None) -> dict:
    """Write ``meta.provenance`` into ``payload`` (in place) and return it.

    Existing ``meta`` keys are preserved; an existing provenance record is
    replaced — re-running a bench restamps it with the current commit.
    """
    meta = payload.setdefault("meta", {})
    meta["provenance"] = collect(root)
    return payload
