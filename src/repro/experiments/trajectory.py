"""Perf-trajectory store: one compact JSONL record per benchmark run.

``benchmarks/results/trajectory.jsonl`` accumulates, across commits, the
machine-independent headline numbers of every ``bench_kernels.py`` /
``bench_serve.py`` run: kernel end-to-end speedups, serve latency
percentiles, cache-hit and degraded rates.  The ``perf-trajectory`` figure
(:mod:`repro.experiments.registry`) renders these records so a perf
regression is visible as a bend in a line, not a diff between two JSON
blobs nobody reads.

Records are keyed by ``(bench, scale, sha)``: re-running the same bench at
the same commit *replaces* its record (latest numbers win) instead of
appending a duplicate, so the file stays one-line-per-(commit, suite).

Record shape::

    {"bench": "kernels", "scale": "large", "sha": "…", "branch": "main",
     "date": "2026-08-07T12:00:00Z", "cpu_count": 4, "hostname": "…",
     "metrics": {"e2e_speedup_geomean": 10.6, "e2e_speedup[SSD]": 14.2, …}}
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

from repro.experiments import provenance

__all__ = [
    "DEFAULT_PATH",
    "append",
    "load",
    "record_for",
    "summarize_kernels",
    "summarize_serve",
]

DEFAULT_PATH = (
    provenance.repo_root() / "benchmarks" / "results" / "trajectory.jsonl"
)

_KEY_FIELDS = ("bench", "scale", "sha")


def _geomean(values: list[float]) -> float | None:
    positive = [v for v in values if v and v > 0]
    if not positive:
        return None
    return float(math.exp(sum(math.log(v) for v in positive) / len(positive)))


def summarize_kernels(payload: dict) -> dict:
    """Headline metrics of one ``bench_kernels.py`` payload."""
    metrics: dict[str, float | None] = {}
    e2e = payload.get("end_to_end") or []
    for row in e2e:
        metrics[f"e2e_speedup[{row['operator']}]"] = float(row["speedup"])
    metrics["e2e_speedup_geomean"] = _geomean(
        [float(row["speedup"]) for row in e2e]
    )
    micro = payload.get("micro") or []
    if micro:
        metrics["micro_speedup_geomean"] = _geomean(
            [float(row["speedup"]) for row in micro]
        )
    obs = payload.get("obs") or {}
    if "overhead_disabled" in obs:
        metrics["obs_overhead_disabled"] = float(obs["overhead_disabled"])
    return metrics


def summarize_serve(payload: dict) -> dict:
    """Headline metrics of one ``bench_serve.py`` payload."""
    metrics: dict[str, float | None] = {}
    scaling = payload.get("shard_scaling") or []
    if scaling:
        top = max(scaling, key=lambda row: row["shards"])
        k = top["shards"]
        metrics[f"serve_p50_ms[K={k}]"] = float(top["p50_ms"])
        metrics[f"serve_p99_ms[K={k}]"] = float(top["p99_ms"])
        metrics[f"serve_speedup_vs_1[K={k}]"] = float(top["speedup_vs_1"])
    cache = payload.get("cache") or {}
    if "hit_ratio" in cache:
        metrics["cache_hit_ratio"] = float(cache["hit_ratio"])
    obs = payload.get("observability") or {}
    if "degraded_rate" in obs:
        metrics["degraded_rate"] = float(obs["degraded_rate"])
    if obs.get("latency_ms"):
        metrics["serve_p99_ms"] = float(obs["latency_ms"].get("p99", 0.0))
    open_loop = payload.get("open_loop") or {}
    if open_loop:
        metrics["openloop_p99_ms"] = float(open_loop["p99_ms"])
    restart = payload.get("restart") or {}
    if restart:
        metrics["warm_restart_speedup"] = float(restart["speedup"])
        metrics["recovery_ms"] = float(restart["warm_s"]) * 1000.0
    router = payload.get("router") or {}
    if router:
        rows = router.get("scaling") or []
        if rows:
            top = max(rows, key=lambda row: row["nodes"])
            metrics[f"router_p99_ms[nodes={top['nodes']}]"] = float(
                top["p99_ms"]
            )
        hedging = router.get("hedging") or {}
        if hedging.get("hedge_win_ratio") is not None:
            metrics["hedge_win_ratio"] = float(hedging["hedge_win_ratio"])
    return metrics


def record_for(payload: dict) -> dict:
    """Build one trajectory record from a bench payload.

    The payload's own ``meta.provenance`` (written by
    :func:`repro.experiments.provenance.stamp` at bench time) is preferred;
    a freshly collected record is the fallback so ad-hoc payloads still get
    keyed correctly.
    """
    if isinstance(payload.get("end_to_end"), list):
        bench, metrics = "kernels", summarize_kernels(payload)
    elif isinstance(payload.get("shard_scaling"), list):
        bench, metrics = "serve", summarize_serve(payload)
    else:
        raise ValueError(
            "payload is neither a bench_kernels result (no end_to_end) nor "
            "a bench_serve result (no shard_scaling)"
        )
    prov = (payload.get("meta") or {}).get("provenance") or provenance.collect()
    return {
        "bench": bench,
        "scale": payload.get("scale", "unknown"),
        "sha": prov.get("sha", "unknown"),
        "branch": prov.get("branch", "unknown"),
        "date": prov.get("date"),
        "cpu_count": prov.get("cpu_count"),
        "hostname": prov.get("hostname"),
        "metrics": {k: v for k, v in metrics.items() if v is not None},
    }


def load(path: str | Path = DEFAULT_PATH) -> list[dict]:
    """All records in file order; a missing file is an empty trajectory."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: invalid record: {exc}") from exc
    return records


def append(path: str | Path, record: dict) -> str:
    """Idempotent append: one record per ``(bench, scale, sha)``.

    Returns the action taken: ``"appended"`` (new key), ``"replaced"``
    (same key, fresher numbers overwrite in place, file order preserved)
    or ``"unchanged"`` (byte-identical record already present).
    """
    path = Path(path)
    key = tuple(record.get(f) for f in _KEY_FIELDS)
    records = load(path)
    action = "appended"
    for i, existing in enumerate(records):
        if tuple(existing.get(f) for f in _KEY_FIELDS) == key:
            if existing == record:
                return "unchanged"
            records[i] = record
            action = "replaced"
            break
    else:
        records.append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Rewrite-in-place would tear the whole history on a crash; publish
    # the new file atomically instead.
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)
    )
    os.replace(tmp, path)
    return action
