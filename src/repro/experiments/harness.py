"""Workload evaluation harness.

Runs Algorithm 1 over a query workload for each chosen operator and collects
the two quantities the paper reports throughout Section 6 — average NN
candidate size (effectiveness) and average query response time (efficiency)
— along with the filter counters used by the Appendix C study.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.core.nnc import NNCSearch
from repro.core.operators import _BaseOperator, make_operator
from repro.objects.uncertain import UncertainObject

DEFAULT_KINDS = ("SSD", "SSSD", "PSD", "FSD", "F+SD")


@dataclass
class WorkloadStats:
    """Aggregates for one operator over a workload."""

    operator: str
    avg_candidates: float = 0.0
    avg_time: float = 0.0
    counters: Counters = field(default_factory=Counters)
    per_query_sizes: list[int] = field(default_factory=list)
    per_query_times: list[float] = field(default_factory=list)

    def finalize(self) -> None:
        """Compute the averages from the per-query lists."""
        k = max(1, len(self.per_query_sizes))
        self.avg_candidates = sum(self.per_query_sizes) / k
        self.avg_time = sum(self.per_query_times) / k


def evaluate_workload(
    objects: Sequence[UncertainObject],
    queries: Sequence[UncertainObject],
    kinds: Sequence[str | _BaseOperator] = DEFAULT_KINDS,
    *,
    operator_flags: dict | None = None,
    context_kwargs: dict | None = None,
) -> dict[str, WorkloadStats]:
    """Run every operator over every query; return per-operator aggregates.

    Args:
        objects: the dataset (the global R-tree is built once).
        queries: the query workload.
        kinds: operator kinds (strings) or pre-configured operators.
        operator_flags: extra flags passed to :func:`make_operator` for
            string kinds (ignored for pre-built operators).
        context_kwargs: extra keyword arguments for each per-query
            :class:`QueryContext` (e.g. ``{"kernels": False}`` to time the
            scalar reference path, or ``{"metric": "manhattan"}``).
    """
    search = NNCSearch(objects)
    flags = operator_flags or {}
    ctx_kwargs = context_kwargs or {}
    stats: dict[str, WorkloadStats] = {}
    for kind in kinds:
        operator = kind if isinstance(kind, _BaseOperator) else make_operator(kind, **flags)
        ws = WorkloadStats(operator=operator.name)
        for query in queries:
            ctx = QueryContext(query, **ctx_kwargs)
            t0 = time.perf_counter()
            result = search.run(query, operator, ctx=ctx)
            ws.per_query_times.append(time.perf_counter() - t0)
            ws.per_query_sizes.append(len(result))
            ws.counters.merge(ctx.counters)
        ws.finalize()
        stats[operator.name] = ws
    return stats


def progressive_profile(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    kind: str | _BaseOperator = "PSD",
    *,
    quality_checks: bool = True,
) -> list[dict]:
    """Per-candidate progressive profile (Figure 14).

    Returns one row per returned candidate with the fraction of candidates
    returned so far, the elapsed time at which it became certain, and (when
    ``quality_checks``) the candidate's *quality* — the number of dataset
    objects it dominates, the paper's Figure 14(b) metric.
    """
    search = NNCSearch(objects)
    operator = kind if isinstance(kind, _BaseOperator) else make_operator(kind)
    ctx = QueryContext(query)
    result = search.run(query, operator, ctx=ctx)
    total = max(1, len(result))
    rows: list[dict] = []
    for i, (cand, when) in enumerate(zip(result.candidates, result.yield_times)):
        row = {
            "progress": (i + 1) / total,
            "time": when,
            "oid": cand.oid,
        }
        if quality_checks:
            row["quality"] = candidate_quality(objects, query, cand, operator, ctx)
        rows.append(row)
    return rows


def candidate_quality(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    candidate: UncertainObject,
    operator: _BaseOperator,
    ctx: QueryContext | None = None,
) -> int:
    """Number of dataset objects the candidate dominates (Figure 14(b))."""
    if ctx is None:
        ctx = QueryContext(query)
    return sum(
        1
        for other in objects
        if other is not candidate and operator.dominates(candidate, other, ctx)
    )
