"""Dataset caching for experiment runs.

Regenerating a synthetic dataset is deterministic given its parameters, but
costs seconds at larger scales; sweeps regenerate many configurations.  The
cache keys each configuration's parameters and serialises the objects with
:mod:`repro.objects.io`, so repeated benchmark / report runs skip the
generation step entirely.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Callable, Sequence

from repro.objects.io import load_objects, save_objects
from repro.objects.uncertain import UncertainObject

DEFAULT_CACHE_DIR = Path(".repro-cache")


def cache_key(**params) -> str:
    """Stable hash of a parameter dict (order-insensitive)."""
    payload = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:20]


class DatasetCache:
    """A directory of ``.npz`` datasets keyed by generation parameters."""

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """Filesystem location of one cached dataset."""
        return self.directory / f"{key}.npz"

    def get_or_create(
        self,
        generate: Callable[[], Sequence[UncertainObject]],
        **params,
    ) -> list[UncertainObject]:
        """Load the dataset for ``params``, generating and storing on miss.

        Args:
            generate: zero-argument callable producing the dataset; invoked
                only on a cache miss.
            **params: every parameter that determines the dataset, including
                the random seed.
        """
        key = cache_key(**params)
        path = self.path_for(key)
        if path.exists():
            return load_objects(path)
        objects = list(generate())
        self.directory.mkdir(parents=True, exist_ok=True)
        save_objects(path, objects)
        return objects

    def clear(self) -> int:
        """Delete every cached dataset; returns the number removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.npz"):
            path.unlink()
            removed += 1
        return removed
