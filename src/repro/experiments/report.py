"""Plain-text rendering of experiment tables.

Benchmarks and examples print their regenerated figure rows through
:func:`format_table`, so the output mirrors the series the paper plots.
"""

from __future__ import annotations

from typing import Sequence


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows the first row's key order; missing values render
    as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = [[_fmt(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in table
    )
    out = f"{header}\n{rule}\n{body}"
    if title:
        out = f"{title}\n{out}"
    return out


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def kernel_summary(counters) -> dict:
    """Kernel-vs-scalar usage summary of one run (``repro.core.kernels``).

    Args:
        counters: a :class:`repro.core.counters.Counters` (or any object with
            a ``snapshot()``), or an already-snapshotted plain dict.

    Returns:
        Dict with ``kernel_invocations``, ``kernel_elements``, the mean
        ``elements_per_invocation`` (batch granularity — the rough vectorised
        work per interpreter round-trip) and ``scalar_fallbacks``.
    """
    snap = counters.snapshot() if hasattr(counters, "snapshot") else dict(counters)
    invocations = int(snap.get("kernel_invocations", 0))
    elements = int(snap.get("kernel_elements", 0))
    return {
        "kernel_invocations": invocations,
        "kernel_elements": elements,
        "elements_per_invocation": elements / invocations if invocations else 0.0,
        "scalar_fallbacks": int(snap.get("scalar_fallbacks", 0)),
    }


def kernel_summary_table(stats: dict) -> str:
    """Render per-operator kernel summaries from workload stats.

    Args:
        stats: mapping of operator name to
            :class:`repro.experiments.harness.WorkloadStats` (the return
            shape of :func:`repro.experiments.harness.evaluate_workload`).
    """
    rows = [
        {"operator": name, **kernel_summary(ws.counters)}
        for name, ws in stats.items()
    ]
    return format_table(rows, "Kernel utilisation")
