"""Plain-text rendering of experiment tables.

Benchmarks and examples print their regenerated figure rows through
:func:`format_table`, so the output mirrors the series the paper plots.
"""

from __future__ import annotations

from typing import Sequence


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows the first row's key order; missing values render
    as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = [[_fmt(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in table
    )
    out = f"{header}\n{rule}\n{body}"
    if title:
        out = f"{title}\n{out}"
    return out


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def kernel_summary(counters) -> dict:
    """Kernel-vs-scalar usage summary of one run (``repro.core.kernels``).

    Args:
        counters: a :class:`repro.core.counters.Counters` (or any object with
            a ``snapshot()``), or an already-snapshotted plain dict.

    Returns:
        Dict with ``kernel_invocations``, ``kernel_elements``, the mean
        ``elements_per_invocation`` (batch granularity — the rough vectorised
        work per interpreter round-trip) and ``scalar_fallbacks``.
    """
    snap = counters.snapshot() if hasattr(counters, "snapshot") else dict(counters)
    invocations = int(snap.get("kernel_invocations", 0))
    elements = int(snap.get("kernel_elements", 0))
    return {
        "kernel_invocations": invocations,
        "kernel_elements": elements,
        "elements_per_invocation": elements / invocations if invocations else 0.0,
        "scalar_fallbacks": int(snap.get("scalar_fallbacks", 0)),
    }


def trace_breakdown(spans) -> list[dict]:
    """Aggregate spans into per-(name, operator) rows — Figure 16 style.

    Appendix C compares filter configurations by the average number of
    instance comparisons per dominance check; with tracing enabled the same
    breakdown falls out of the span records, which carry the counter deltas
    of the interval they cover.

    Args:
        spans: iterable of :class:`repro.obs.tracer.SpanRecord`.

    Returns:
        One row per (span name, operator label) with call count, total and
        mean wall-clock milliseconds, summed instance comparisons and
        dominance checks, and the comparisons-per-check ratio.  Rows are
        ordered by total time, descending.
    """
    groups: dict[tuple[str, str], dict] = {}
    for span in spans:
        op = str(span.labels.get("op", "-"))
        agg = groups.setdefault(
            (span.name, op),
            {"span": span.name, "operator": op, "calls": 0, "total_ms": 0.0,
             "comparisons": 0, "dominance_checks": 0},
        )
        agg["calls"] += 1
        agg["total_ms"] += span.duration * 1e3
        agg["comparisons"] += span.counter_deltas.get("instance_comparisons", 0)
        agg["dominance_checks"] += span.counter_deltas.get("dominance_checks", 0)
    rows = []
    for agg in sorted(groups.values(), key=lambda a: -a["total_ms"]):
        checks = agg["dominance_checks"]
        rows.append(
            {
                **agg,
                "mean_ms": agg["total_ms"] / agg["calls"],
                "cmp_per_check": agg["comparisons"] / checks if checks else 0.0,
            }
        )
    return rows


def trace_breakdown_table(spans, title: str = "Span breakdown") -> str:
    """Render :func:`trace_breakdown` rows as an aligned ASCII table."""
    return format_table(trace_breakdown(spans), title)


def kernel_summary_table(stats: dict) -> str:
    """Render per-operator kernel summaries from workload stats.

    Args:
        stats: mapping of operator name to
            :class:`repro.experiments.harness.WorkloadStats` (the return
            shape of :func:`repro.experiments.harness.evaluate_workload`).
    """
    rows = [
        {"operator": name, **kernel_summary(ws.counters)}
        for name, ws in stats.items()
    ]
    return format_table(rows, "Kernel utilisation")
