"""Plain-text rendering of experiment tables.

Benchmarks and examples print their regenerated figure rows through
:func:`format_table`, so the output mirrors the series the paper plots.
"""

from __future__ import annotations

from typing import Sequence


def format_table(rows: Sequence[dict], title: str | None = None) -> str:
    """Render dict rows as an aligned ASCII table.

    Column order follows the first row's key order; missing values render
    as ``-``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    for row in rows[1:]:
        for key in row:
            if key not in columns:
                columns.append(key)
    table = [[_fmt(row.get(col, "-")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(line, widths)) for line in table
    )
    out = f"{header}\n{rule}\n{body}"
    if title:
        out = f"{title}\n{out}"
    return out


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
