"""Experiment parameters (Table 2) and reproduction scales.

The paper's defaults are ``n = 100k`` objects, ``m_d = 40`` instances,
``d = 3``, ``h_d = 400``, ``m_q = 30``, ``h_q = 200`` with 100-query
workloads, run in C++.  A pure-Python reproduction keeps every *ratio* of
the sweeps but shrinks absolute counts; the :class:`Scale` presets define
the shrink factors, so every figure can be regenerated at ``tiny`` (CI),
``small`` (benchmark default) or ``paper``-proportional scales.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.datasets import synthetic


@dataclass(frozen=True)
class Scale:
    """Shrink factors applied to the paper's absolute parameters.

    When ``preserve_density`` is set (the default), object and query edge
    lengths are inflated by ``(1 / n_factor) ** (1 / d)`` so that the degree
    of instance-cloud overlap — the quantity that shapes candidate-set sizes
    — matches the paper's 100k-object density despite the smaller ``n``.
    """

    name: str
    n_factor: float  # object count multiplier (paper default n = 100k)
    m_factor: float  # instance count multiplier (paper default m_d = 40)
    q_factor: float  # query instance multiplier (paper default m_q = 30)
    n_queries: int  # workload size (paper: 100)
    preserve_density: bool = True

    def edge_factor(self, d: int) -> float:
        """Edge-length inflation keeping per-volume overlap constant."""
        if not self.preserve_density:
            return 1.0
        return float((1.0 / self.n_factor) ** (1.0 / d))


SCALES: dict[str, Scale] = {
    # CI floor for the figure registry: every registered figure must build
    # in seconds, so the dashboard self-check can run on every push.
    "smoke": Scale("smoke", n_factor=0.0008, m_factor=0.1, q_factor=0.15, n_queries=1),
    "tiny": Scale("tiny", n_factor=0.0015, m_factor=0.15, q_factor=0.2, n_queries=2),
    "small": Scale("small", n_factor=0.004, m_factor=0.25, q_factor=0.27, n_queries=3),
    "medium": Scale("medium", n_factor=0.01, m_factor=0.375, q_factor=0.33, n_queries=5),
    # Paper-faithful instance counts (m_d = 40, m_q = 30); only the object
    # count and workload shrink.  This is the benchmark's headline scale.
    "large": Scale("large", n_factor=0.02, m_factor=1.0, q_factor=1.0, n_queries=3),
}


@dataclass(frozen=True)
class ExperimentParams:
    """One experiment configuration, in paper units scaled by a preset.

    Attributes follow Table 2; defaults are the paper's bold values.
    """

    n: int = 100_000
    d: int = 3
    m_d: int = 40
    h_d: float = 400.0
    m_q: int = 30
    h_q: float = 200.0
    distribution: str = "anti"  # "anti" (A) or "indep" (E)
    n_queries: int = 100
    seed: int = 20150531  # SIGMOD'15 started May 31

    def scaled(self, scale: Scale) -> "ExperimentParams":
        """Apply a scale preset to the absolute counts and edge lengths."""
        edge = scale.edge_factor(self.d)
        return replace(
            self,
            n=max(20, int(round(self.n * scale.n_factor))),
            m_d=max(2, int(round(self.m_d * scale.m_factor))),
            m_q=max(2, int(round(self.m_q * scale.q_factor))),
            h_d=self.h_d * edge,
            h_q=self.h_q * edge,
            n_queries=scale.n_queries,
        )

    def with_(self, **changes) -> "ExperimentParams":
        """Functional update (sweep helper)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #

    def generate_centers(self, rng: np.random.Generator) -> np.ndarray:
        """Centers under the configured distribution."""
        if self.distribution == "anti":
            return synthetic.anticorrelated_centers(self.n, self.d, rng)
        if self.distribution == "indep":
            return synthetic.independent_centers(self.n, self.d, rng)
        raise ValueError(f"unknown distribution {self.distribution!r}")

    def generate_objects(self, rng: np.random.Generator | None = None):
        """Full object set under this configuration."""
        if rng is None:
            rng = np.random.default_rng(self.seed)
        centers = self.generate_centers(rng)
        return synthetic.make_objects(centers, self.m_d, self.h_d, rng)
