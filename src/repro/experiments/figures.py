"""Per-figure experiment definitions (Section 6 and Appendix C).

Each ``fig*`` function regenerates the data series of one paper figure at a
chosen :class:`~repro.experiments.params.Scale` preset and returns a
:class:`FigureResult` whose rows can be printed with
:func:`repro.experiments.report.format_table`.

Effectiveness figures report the *average NN candidate size*; efficiency
figures the *average query response time*; Figure 14 the progressive
profile; Figure 16 the average instance comparisons per filter stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.core.operators import make_operator
from repro.datasets import semireal, synthetic, workload
from repro.experiments.harness import (
    DEFAULT_KINDS,
    WorkloadStats,
    evaluate_workload,
    progressive_profile,
)
from repro.experiments.params import SCALES, ExperimentParams, Scale
from repro.objects.uncertain import UncertainObject


@dataclass
class FigureResult:
    """Rows regenerated for one paper figure."""

    figure: str
    description: str
    rows: list[dict] = field(default_factory=list)
    notes: str = ""


def _resolve_scale(scale: str | Scale) -> Scale:
    return SCALES[scale] if isinstance(scale, str) else scale


# --------------------------------------------------------------------- #
# Dataset construction
# --------------------------------------------------------------------- #

DATASET_NAMES = ("A-N", "E-N", "HOUSE", "CA", "NBA", "GW", "USA")


def build_dataset(
    name: str, params: ExperimentParams, rng: np.random.Generator
) -> tuple[list[UncertainObject], list[UncertainObject]]:
    """Objects + query workload for one named dataset at the given params.

    ``params`` must already be scaled.  NBA/GW are complete multi-instance
    datasets; the others provide centers fed through the synthetic instance
    recipe, exactly as the paper's semi-real setup.
    """
    n, m_d, h_d = params.n, params.m_d, params.h_d
    if name == "A-N":
        centers = synthetic.anticorrelated_centers(n, params.d, rng)
        objects = synthetic.make_objects(centers, m_d, h_d, rng)
    elif name == "E-N":
        centers = synthetic.independent_centers(n, params.d, rng)
        objects = synthetic.make_objects(centers, m_d, h_d, rng)
    elif name == "HOUSE":
        centers = semireal.house_like(n, rng)
        objects = synthetic.make_objects(centers, m_d, h_d, rng)
    elif name == "CA":
        centers = semireal.ca_like(n, rng)
        objects = synthetic.make_objects(centers, m_d, h_d, rng)
    elif name == "USA":
        centers = semireal.usa_like(n, rng)
        objects = synthetic.make_objects(centers, m_d, h_d, rng)
    elif name == "NBA":
        objects = semireal.nba_like(n, m_d, rng)
    elif name == "GW":
        objects = semireal.gowalla_like(n, m_d, rng)
    else:
        raise ValueError(f"unknown dataset {name!r}")
    queries = workload.query_workload(
        objects, params.n_queries, params.m_q, params.h_q, rng
    )
    return objects, queries


def _run_config(
    name: str,
    params: ExperimentParams,
    scale: Scale,
    kinds: Sequence[str] = DEFAULT_KINDS,
) -> dict[str, WorkloadStats]:
    rng = np.random.default_rng(params.seed)
    scaled = params.scaled(scale)
    objects, queries = build_dataset(name, scaled, rng)
    return evaluate_workload(objects, queries, kinds)


# --------------------------------------------------------------------- #
# Figures 10 & 12 — per-dataset candidate size and response time
# --------------------------------------------------------------------- #


def run_dataset_suite(
    scale: str | Scale = "small",
    datasets: Sequence[str] = DATASET_NAMES,
    kinds: Sequence[str] = DEFAULT_KINDS,
) -> list[dict]:
    """One row per dataset with per-operator size and time columns."""
    scale = _resolve_scale(scale)
    rows: list[dict] = []
    for name in datasets:
        stats = _run_config(name, ExperimentParams(), scale, kinds)
        row: dict = {"dataset": name}
        for op, ws in stats.items():
            row[f"size[{op}]"] = round(ws.avg_candidates, 1)
            row[f"time[{op}]"] = round(ws.avg_time, 4)
        rows.append(row)
    return rows


def fig10_candidate_size(
    scale: str | Scale = "small", datasets: Sequence[str] = DATASET_NAMES
) -> FigureResult:
    """Figure 10: average candidate size per dataset and operator."""
    rows = run_dataset_suite(scale, datasets)
    out = [
        {"dataset": r["dataset"], **{k[5:-1]: v for k, v in r.items() if k.startswith("size[")}}
        for r in rows
    ]
    return FigureResult(
        "Figure 10",
        "NN candidate size per dataset (SSD <= SSSD <= PSD <= FSD <= F+SD expected)",
        out,
    )


def fig12_response_time(
    scale: str | Scale = "small", datasets: Sequence[str] = DATASET_NAMES
) -> FigureResult:
    """Figure 12: average query response time per dataset and operator."""
    rows = run_dataset_suite(scale, datasets)
    out = [
        {"dataset": r["dataset"], **{k[5:-1]: v for k, v in r.items() if k.startswith("time[")}}
        for r in rows
    ]
    return FigureResult(
        "Figure 12", "Average query response time (seconds) per dataset", out
    )


# --------------------------------------------------------------------- #
# Figures 11 & 13 — parameter sweeps
# --------------------------------------------------------------------- #

SWEEPS: dict[str, tuple[str, list, str]] = {
    # sweep key -> (params attribute, paper values, dataset)
    "m_d": ("m_d", [20, 40, 60, 80, 100], "A-N"),
    "h_d": ("h_d", [100.0, 200.0, 300.0, 400.0, 500.0], "A-N"),
    "m_q": ("m_q", [10, 20, 30, 40, 50], "A-N"),
    "h_q": ("h_q", [100.0, 200.0, 300.0, 400.0, 500.0], "A-N"),
    "n": ("n", [200_000, 400_000, 600_000, 800_000, 1_000_000], "USA"),
    "d": ("d", [2, 3, 4, 5], "A-N"),
}


def run_sweep(
    sweep: str,
    scale: str | Scale = "small",
    kinds: Sequence[str] = DEFAULT_KINDS,
    values: Sequence | None = None,
) -> list[dict]:
    """Sweep one Table 2 parameter; one row per value with size+time columns."""
    scale = _resolve_scale(scale)
    attr, paper_values, dataset = SWEEPS[sweep]
    rows: list[dict] = []
    for value in values if values is not None else paper_values:
        params = ExperimentParams().with_(**{attr: value})
        stats = _run_config(dataset, params, scale, kinds)
        row: dict = {sweep: value, "dataset": dataset}
        for op, ws in stats.items():
            row[f"size[{op}]"] = round(ws.avg_candidates, 1)
            row[f"time[{op}]"] = round(ws.avg_time, 4)
        rows.append(row)
    return rows


def _sweep_figure(
    figure: str, sweep: str, metric: str, scale: str | Scale, description: str
) -> FigureResult:
    rows = run_sweep(sweep, scale)
    prefix = f"{metric}["
    out = [
        {
            sweep: r[sweep],
            **{k[len(prefix):-1]: v for k, v in r.items() if k.startswith(prefix)},
        }
        for r in rows
    ]
    return FigureResult(figure, description, out)


def fig11a(scale: str | Scale = "small") -> FigureResult:
    """Figure 11(a): candidate size vs number of object instances."""
    return _sweep_figure(
        "Figure 11(a)", "m_d", "size", scale, "candidate size vs m_d on A-N"
    )


def fig11b(scale: str | Scale = "small") -> FigureResult:
    """Figure 11(b): candidate size vs object edge length."""
    return _sweep_figure(
        "Figure 11(b)", "h_d", "size", scale, "candidate size vs h_d on A-N"
    )


def fig11c(scale: str | Scale = "small") -> FigureResult:
    """Figure 11(c): candidate size vs number of query instances."""
    return _sweep_figure(
        "Figure 11(c)", "m_q", "size", scale, "candidate size vs m_q on A-N"
    )


def fig11d(scale: str | Scale = "small") -> FigureResult:
    """Figure 11(d): candidate size vs query edge length."""
    return _sweep_figure(
        "Figure 11(d)", "h_q", "size", scale, "candidate size vs h_q on A-N"
    )


def fig11e(scale: str | Scale = "small") -> FigureResult:
    """Figure 11(e): candidate size vs number of objects (USA)."""
    return _sweep_figure(
        "Figure 11(e)", "n", "size", scale, "candidate size vs n on USA-like"
    )


def fig11f(scale: str | Scale = "small") -> FigureResult:
    """Figure 11(f): candidate size vs dimensionality."""
    return _sweep_figure(
        "Figure 11(f)", "d", "size", scale, "candidate size vs d on A-N"
    )


def fig13(sweep: str, scale: str | Scale = "small") -> FigureResult:
    """Figure 13(a-f): response time vs the given swept parameter."""
    letter = dict(m_d="a", h_d="b", m_q="c", h_q="d", n="e", d="f")[sweep]
    return _sweep_figure(
        f"Figure 13({letter})",
        sweep,
        "time",
        scale,
        f"response time (s) vs {sweep}",
    )


# --------------------------------------------------------------------- #
# Figure 14 — progressive property
# --------------------------------------------------------------------- #


def fig14_progressive(scale: str | Scale = "small") -> FigureResult:
    """Figure 14: progressive return profile of PSD on the USA dataset.

    Rows bucket the candidate stream into deciles with the elapsed time at
    which the decile completed (14a) and the average candidate quality —
    objects dominated per returned candidate — within it (14b).
    """
    scale = _resolve_scale(scale)
    params = ExperimentParams().scaled(scale).with_(n_queries=1)
    rng = np.random.default_rng(params.seed)
    objects, queries = build_dataset("USA", params, rng)
    profile = progressive_profile(objects, queries[0], "PSD")
    rows: list[dict] = []
    if profile:
        buckets = np.array_split(profile, min(10, len(profile)))
        for bucket in buckets:
            bucket = list(bucket)
            rows.append(
                {
                    "progress_%": round(100 * bucket[-1]["progress"], 1),
                    "time_s": round(bucket[-1]["time"], 4),
                    "avg_quality": round(
                        float(np.mean([b["quality"] for b in bucket])), 2
                    ),
                }
            )
    return FigureResult(
        "Figure 14",
        "Progressive candidate return: elapsed time and quality per decile",
        rows,
    )


# --------------------------------------------------------------------- #
# Figure 16 — filter effectiveness ablation (Appendix C)
# --------------------------------------------------------------------- #

FILTER_STACKS: dict[str, dict] = {
    # Appendix C naming: BF no filters; L level-by-level; P pruning rules;
    # G geometric (convex hull); All adds MBR validation on top of LGP.
    "BF": dict(use_statistics=False, use_mbr_validation=False,
               use_cover_pruning=False, use_geometry=False, use_level=False),
    "L": dict(use_statistics=False, use_mbr_validation=False,
              use_cover_pruning=False, use_geometry=False, use_level=True),
    "LP": dict(use_statistics=True, use_mbr_validation=False,
               use_cover_pruning=True, use_geometry=False, use_level=True),
    "LG": dict(use_statistics=False, use_mbr_validation=False,
               use_cover_pruning=False, use_geometry=True, use_level=True),
    "LGP": dict(use_statistics=True, use_mbr_validation=False,
                use_cover_pruning=True, use_geometry=True, use_level=True),
    "All": dict(use_statistics=True, use_mbr_validation=True,
                use_cover_pruning=True, use_geometry=True, use_level=True),
}

_HULL_STACKS = {"LG", "LGP", "All"}


def fig16_filters(
    scale: str | Scale = "small",
    kinds: Sequence[str] = ("SSD", "SSSD", "PSD"),
    m_d_values: Sequence[int] = (20, 40, 60, 80, 100),
) -> FigureResult:
    """Figure 16: avg instance comparisons per filter stack, vs m_d (HOUSE).

    The geometric filter lives in the query context (``use_hull``), so each
    stack gets its own context per query.  Unlike the other figures, the
    instance count ``m_d`` is *not* scaled down: the filters' value depends
    on per-object instance counts, which is exactly what this figure sweeps
    (the paper's 20-100 range is kept; only ``n`` and the workload shrink).
    """
    scale = _resolve_scale(scale)
    rows: list[dict] = []
    for m_d in m_d_values:
        params = ExperimentParams(m_d=m_d).scaled(scale).with_(m_d=m_d)
        rng = np.random.default_rng(params.seed)
        objects, queries = build_dataset("HOUSE", params, rng)
        search = NNCSearch(objects)
        for kind in kinds:
            row: dict = {"m_d(paper)": m_d, "m_d(actual)": params.m_d, "operator": kind}
            for stack, flags in FILTER_STACKS.items():
                operator = make_operator(kind, **flags)
                comparisons = 0
                for query in queries:
                    ctx = QueryContext(query, use_hull=stack in _HULL_STACKS)
                    search.run(query, operator, ctx=ctx)
                    comparisons += ctx.counters.instance_comparisons
                row[stack] = comparisons // max(1, len(queries))
            rows.append(row)
    return FigureResult(
        "Figure 16",
        "Average instance comparisons per query for each filter stack",
        rows,
    )


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

FIGURES: dict[str, Callable[..., FigureResult]] = {
    "fig10": fig10_candidate_size,
    "fig11a": fig11a,
    "fig11b": fig11b,
    "fig11c": fig11c,
    "fig11d": fig11d,
    "fig11e": fig11e,
    "fig11f": fig11f,
    "fig12": fig12_response_time,
    "fig13a": lambda scale="small": fig13("m_d", scale),
    "fig13b": lambda scale="small": fig13("h_d", scale),
    "fig13c": lambda scale="small": fig13("m_q", scale),
    "fig13d": lambda scale="small": fig13("h_q", scale),
    "fig13e": lambda scale="small": fig13("n", scale),
    "fig13f": lambda scale="small": fig13("d", scale),
    "fig14": fig14_progressive,
    "fig16": fig16_filters,
}


if __name__ == "__main__":  # pragma: no cover
    # `python -m repro.experiments.figures ...` == `repro figures ...`
    import sys

    from repro.cli import main

    sys.exit(main(["figures", *sys.argv[1:]]))
