"""Declarative figure registry: every figure and bench gate as artifacts.

One registry maps each figure id to a generator; one build emits, per id:

* ``data/<fid>.csv`` — the rows, diffable and spreadsheet-ready;
* ``specs/<fid>.vl.json`` — a self-contained Vega-Lite v5 spec with the
  data inlined (``data.values``), renderable by any Vega-Lite host;
* a section of ``dashboard/index.html`` with an inline-SVG rendering
  (:mod:`repro.experiments.dashboard`) — no network, no JS required.

Registered ids:

* ``fig10`` … ``fig16`` — the paper-figure reproductions from
  :mod:`repro.experiments.figures`, built at a :class:`Scale` preset;
* ``kernels-micro`` / ``kernels-e2e`` — ``BENCH_kernels.json`` micro-kernel
  and end-to-end speedups;
* ``serve-scaling`` / ``serve-openloop`` — ``BENCH_serve.json`` shard
  scaling and open-loop (coordinated-omission-free) latency;
* ``router-scaling`` — the multi-node router tier: per-fleet-size
  latency under the same open-loop harness plus hedging efficacy;
* ``slo-quantiles`` — per-operator p50/p95/p99 + SLO burn counters, fed
  from a saved ``/status`` snapshot (``repro client status``) or, as a
  fallback, the serve bench's observability section;
* ``flamegraph`` — top frames + an inline flamegraph SVG from a saved
  ``GET /profile`` body (``repro client profile``) or, as a fallback, a
  brief in-process self-profile over a tiny NNC workload;
* ``fleet-overview`` — per-node status/epoch/objects plus fleet-merged
  latency quantiles from a saved router ``GET /fleet`` body
  (``repro client fleet``) or an in-process three-node fleet;
* ``perf-trajectory`` — the cross-commit perf record store
  (:mod:`repro.experiments.trajectory`), each tracked metric indexed to
  its first record so speedups and latencies share one axis.

Every build runs :func:`self_check` (valid spec, non-empty CSV that
round-trips through ``csv.DictReader``) — a figure that cannot produce a
checkable artifact fails loudly, which is what CI gates on.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.experiments import figures as paper_figures
from repro.experiments import provenance, trajectory

__all__ = [
    "REGISTRY",
    "BuildInputs",
    "ChartSpec",
    "Figure",
    "FigureArtifact",
    "FigureInputError",
    "SelfCheckError",
    "UnknownFigureError",
    "build_figure",
    "build_many",
    "get",
    "long_rows",
    "registered_ids",
    "rows_to_csv",
    "self_check",
    "slo_rows",
    "vega_lite_spec",
    "write_artifacts",
]

VEGA_LITE_SCHEMA = "https://vega.github.io/schema/vega-lite/v5.json"


class UnknownFigureError(LookupError):
    """Raised for a figure id the registry does not know, naming the known."""

    def __init__(self, fid: str) -> None:
        self.fid = fid
        super().__init__(
            f"unknown figure id {fid!r}; registered ids: "
            + ", ".join(registered_ids())
        )


class FigureInputError(RuntimeError):
    """A figure's input artifact is missing or malformed."""


class SelfCheckError(AssertionError):
    """A built figure failed the registry self-check."""


@dataclass(frozen=True)
class ChartSpec:
    """How to encode a figure's rows as a chart.

    ``series`` names the value columns (one line/bar group per entry);
    empty means "every numeric non-``x`` column, in first-row order".
    ``indexed`` divides each series by its first finite value so metrics
    with different units share one axis (the trajectory view).
    """

    kind: str  # "line" | "bar"
    x: str
    series: tuple[str, ...] = ()
    x_type: str = "ordinal"  # "ordinal" | "quantitative"
    y_title: str = ""
    log_y: bool = False
    indexed: bool = False


@dataclass
class FigureArtifact:
    """One built figure: rows plus everything needed to render them."""

    fid: str
    title: str
    description: str
    category: str  # "paper" | "bench" | "observability" | "trajectory"
    rows: list[dict]
    chart: ChartSpec
    notes: str = ""
    #: Pre-rendered HTML the dashboard injects verbatim below the chart —
    #: the flamegraph SVG and the fleet quantile table live here (the CSV
    #: and Vega-Lite artifacts stay row-shaped regardless).
    extra_html: str = ""


@dataclass(frozen=True)
class BuildInputs:
    """Where a build reads its inputs from (all overridable by the CLI)."""

    scale: str = "smoke"
    kernels: Path = field(
        default_factory=lambda: provenance.repo_root() / "BENCH_kernels.json"
    )
    serve: Path = field(
        default_factory=lambda: provenance.repo_root() / "BENCH_serve.json"
    )
    trajectory: Path = field(default_factory=lambda: trajectory.DEFAULT_PATH)
    slo: Path | None = None
    profile: Path | None = None
    fleet: Path | None = None


@dataclass(frozen=True)
class Figure:
    """One registry entry: identity, category, and its builder."""

    fid: str
    title: str
    category: str
    build: Callable[[BuildInputs], FigureArtifact]


def _load_json(path: Path, fid: str, hint: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise FigureInputError(
            f"{fid}: input file {path} not found ({hint})"
        ) from None
    except (OSError, json.JSONDecodeError) as exc:
        raise FigureInputError(f"{fid}: cannot read {path}: {exc}") from exc


# --------------------------------------------------------------------- #
# Paper figures (fig10 … fig16) — wrap repro.experiments.figures
# --------------------------------------------------------------------- #

# Chart encodings per paper figure; sweeps are lines over the swept value,
# per-dataset comparisons are grouped bars.  Candidate sizes and times span
# orders of magnitude across operators, hence the log axes (matching the
# paper's plots).
_SIZE, _TIME = "avg NN candidate size", "avg response time (s)"
_PAPER_CHARTS: dict[str, ChartSpec] = {
    "fig10": ChartSpec("bar", "dataset", y_title=_SIZE, log_y=True),
    "fig11a": ChartSpec("line", "m_d", x_type="quantitative", y_title=_SIZE, log_y=True),
    "fig11b": ChartSpec("line", "h_d", x_type="quantitative", y_title=_SIZE, log_y=True),
    "fig11c": ChartSpec("line", "m_q", x_type="quantitative", y_title=_SIZE, log_y=True),
    "fig11d": ChartSpec("line", "h_q", x_type="quantitative", y_title=_SIZE, log_y=True),
    "fig11e": ChartSpec("line", "n", x_type="quantitative", y_title=_SIZE, log_y=True),
    "fig11f": ChartSpec("line", "d", x_type="quantitative", y_title=_SIZE, log_y=True),
    "fig12": ChartSpec("bar", "dataset", y_title=_TIME, log_y=True),
    "fig13a": ChartSpec("line", "m_d", x_type="quantitative", y_title=_TIME, log_y=True),
    "fig13b": ChartSpec("line", "h_d", x_type="quantitative", y_title=_TIME, log_y=True),
    "fig13c": ChartSpec("line", "m_q", x_type="quantitative", y_title=_TIME, log_y=True),
    "fig13d": ChartSpec("line", "h_q", x_type="quantitative", y_title=_TIME, log_y=True),
    "fig13e": ChartSpec("line", "n", x_type="quantitative", y_title=_TIME, log_y=True),
    "fig13f": ChartSpec("line", "d", x_type="quantitative", y_title=_TIME, log_y=True),
    "fig14": ChartSpec(
        "line", "progress_%", ("time_s",), x_type="quantitative",
        y_title="elapsed time (s)",
    ),
    "fig16": ChartSpec(
        "line", "m_d", x_type="quantitative",
        y_title="avg instance comparisons", log_y=True,
    ),
}

# At smoke scale the slowest configurations shrink further: fewer datasets
# for the 7-dataset suites, one operator and two m_d points for the filter
# ablation (whose BF stack is deliberately unfiltered, i.e. slow).
_SMOKE_DATASETS = ("A-N", "HOUSE", "NBA")


def _pivot_fig16(rows: list[dict]) -> list[dict]:
    """(m_d, operator, stacks…) rows -> one row per m_d, ``op/stack`` cols."""
    merged: dict[float, dict] = {}
    for row in rows:
        out = merged.setdefault(row["m_d(paper)"], {"m_d": row["m_d(paper)"]})
        for stack, value in row.items():
            if stack in ("m_d(paper)", "m_d(actual)", "operator"):
                continue
            out[f"{row['operator']}/{stack}"] = value
    return list(merged.values())


def _paper_builder(fid: str) -> Callable[[BuildInputs], FigureArtifact]:
    def build(inputs: BuildInputs) -> FigureArtifact:
        scale = inputs.scale
        if fid == "fig16":
            result = (
                paper_figures.fig16_filters(
                    scale, kinds=("SSD",), m_d_values=(20, 40)
                )
                if scale == "smoke"
                else paper_figures.fig16_filters(scale)
            )
            rows = _pivot_fig16(result.rows)
        elif fid in ("fig10", "fig12") and scale == "smoke":
            fn = (
                paper_figures.fig10_candidate_size
                if fid == "fig10"
                else paper_figures.fig12_response_time
            )
            result = fn(scale, datasets=_SMOKE_DATASETS)
            rows = result.rows
        else:
            result = paper_figures.FIGURES[fid](scale)
            rows = result.rows
        return FigureArtifact(
            fid=fid,
            title=result.figure,
            description=result.description,
            category="paper",
            rows=rows,
            chart=_PAPER_CHARTS[fid],
            notes=f"regenerated at scale={scale}" + (
                f"; {result.notes}" if result.notes else ""
            ),
        )

    return build


# --------------------------------------------------------------------- #
# Bench figures — over BENCH_kernels.json / BENCH_serve.json
# --------------------------------------------------------------------- #

_KERNELS_HINT = "run: PYTHONPATH=src python benchmarks/bench_kernels.py"
_SERVE_HINT = "run: PYTHONPATH=src python benchmarks/bench_serve.py"


def _bench_note(payload: dict) -> str:
    prov = (payload.get("meta") or {}).get("provenance") or {}
    parts = [f"bench scale={payload.get('scale', 'unknown')}"]
    if prov.get("sha"):
        parts.append(f"commit {str(prov['sha'])[:10]}")
    if prov.get("date"):
        parts.append(str(prov["date"]))
    if prov.get("cpu_count"):
        parts.append(f"{prov['cpu_count']} cpu(s)")
    return ", ".join(parts)


def _build_kernels_micro(inputs: BuildInputs) -> FigureArtifact:
    payload = _load_json(inputs.kernels, "kernels-micro", _KERNELS_HINT)
    rows = [
        {
            "kernel": row["kernel"],
            "speedup": row["speedup"],
            "kernel_ops_per_sec": row["kernel_ops_per_sec"],
            "scalar_ops_per_sec": row["scalar_ops_per_sec"],
        }
        for row in payload.get("micro", [])
    ]
    return FigureArtifact(
        "kernels-micro",
        "Micro-kernel speedups",
        "ops/sec of each batch kernel vs its scalar twin on paper-shaped "
        "inputs (bench_kernels.py `micro` section)",
        "bench",
        rows,
        ChartSpec("bar", "kernel", ("speedup",),
                  y_title="speedup vs scalar (x)", log_y=True),
        notes=_bench_note(payload),
    )


def _build_kernels_e2e(inputs: BuildInputs) -> FigureArtifact:
    payload = _load_json(inputs.kernels, "kernels-e2e", _KERNELS_HINT)
    rows = [
        {
            "operator": row["operator"],
            "speedup": row["speedup"],
            "kernel_time_s": row["kernel_time"],
            "scalar_time_s": row["scalar_time"],
            "n_objects": row.get("n_objects"),
            "n_queries": row.get("n_queries"),
        }
        for row in payload.get("end_to_end", [])
    ]
    return FigureArtifact(
        "kernels-e2e",
        "End-to-end kernel speedups",
        "full NNC search wall time per operator, kernels on vs off, on the "
        "Figure-12 default A-N workload (identical candidate sets asserted)",
        "bench",
        rows,
        ChartSpec("bar", "operator", ("speedup",),
                  y_title="speedup vs scalar path (x)"),
        notes=_bench_note(payload),
    )


def _build_serve_scaling(inputs: BuildInputs) -> FigureArtifact:
    payload = _load_json(inputs.serve, "serve-scaling", _SERVE_HINT)
    rows = [
        {
            "shards": row["shards"],
            "speedup_vs_1": row["speedup_vs_1"],
            "qps": row["qps"],
            "p50_ms": row["p50_ms"],
            "p99_ms": row["p99_ms"],
            "backend": row["backend"],
            "equal": row["equal"],
        }
        for row in payload.get("shard_scaling", [])
    ]
    meta = payload.get("meta") or {}
    return FigureArtifact(
        "serve-scaling",
        "Shard scaling",
        "sharded scatter-gather throughput vs shard count K, normalised "
        "against K=1 on the same backend (answers pinned to the monolith)",
        "bench",
        rows,
        ChartSpec("line", "shards", ("speedup_vs_1",),
                  x_type="quantitative", y_title="speedup vs K=1 (x)"),
        notes=_bench_note(payload)
        + (f"; cpu_count={meta['cpu_count']}" if "cpu_count" in meta else ""),
    )


def _build_serve_openloop(inputs: BuildInputs) -> FigureArtifact:
    payload = _load_json(inputs.serve, "serve-openloop", _SERVE_HINT)
    open_loop = payload.get("open_loop")
    if not open_loop:
        raise FigureInputError(
            f"serve-openloop: {inputs.serve} has no open_loop section "
            "(bench_serve.py ran with --open-loop-seconds 0?)"
        )
    rows = [
        {"quantile": q, "latency_ms": open_loop[key]}
        for q, key in (("p50", "p50_ms"), ("p99", "p99_ms"), ("max", "max_ms"))
    ]
    return FigureArtifact(
        "serve-openloop",
        "Open-loop latency under load",
        "latency from *scheduled* Poisson arrival to completion at a fixed "
        "offered rate — queueing delay charged to the answer "
        "(coordinated-omission-free)",
        "bench",
        rows,
        ChartSpec("bar", "quantile", ("latency_ms",), y_title="latency (ms)"),
        notes=_bench_note(payload) + (
            f"; offered {open_loop['offered_qps']:g} qps, achieved "
            f"{open_loop['achieved_qps']:.2f} qps over "
            f"{open_loop['requests']} request(s) on backend "
            f"{open_loop['backend']} (K={open_loop['shards']})"
        ),
    )


def _build_router_scaling(inputs: BuildInputs) -> FigureArtifact:
    payload = _load_json(inputs.serve, "router-scaling", _SERVE_HINT)
    router = payload.get("router")
    if not router:
        raise FigureInputError(
            f"router-scaling: {inputs.serve} has no router section "
            "(bench_serve.py ran with --open-loop-seconds 0?)"
        )
    rows = [
        {
            "nodes": row["nodes"],
            "replication": row["replication"],
            "qps": row["achieved_qps"],
            "p50_ms": row["p50_ms"],
            "p99_ms": row["p99_ms"],
            "answer_mismatches": row["answer_mismatches"],
        }
        for row in router.get("scaling", [])
    ]
    hedging = router.get("hedging") or {}
    notes = _bench_note(payload)
    if hedging:
        ratio = hedging.get("hedge_win_ratio")
        notes += (
            f"; hedging: p99 {hedging['p99_unhedged_ms']:.2f} -> "
            f"{hedging['p99_hedged_ms']:.2f} ms with one replica "
            f"+{hedging['slow_delay_ms']:g} ms slow, "
            f"{hedging.get('hedge_wins', 0)}/{hedging.get('hedges', 0)} "
            "hedge wins"
            + (f" (ratio {ratio:.2f})" if ratio is not None else "")
        )
    return FigureArtifact(
        "router-scaling",
        "Router scaling and hedging",
        "the multi-node router tier under the open-loop harness: latency "
        "per fleet size with every answer pinned to the monolith; the "
        "hedged-vs-unhedged p99 and hedge-win rate ride in the notes",
        "bench",
        rows,
        ChartSpec("line", "nodes", ("p50_ms", "p99_ms"),
                  x_type="quantitative", y_title="latency (ms)"),
        notes=notes,
    )


def slo_rows(snapshot: dict) -> tuple[list[dict], dict]:
    """Normalise an SLO snapshot into per-operator quantile rows + burn.

    Accepts any of the three shapes in the wild:

    * a full ``/status`` body (``repro client status --format json``) —
      quantiles under ``slo.latency_seconds`` in seconds;
    * the figure-ready snapshot (``repro client status --format slo-json``)
      — quantiles under ``latency_ms`` in milliseconds;
    * a ``bench_serve.py`` payload — single-operator quantiles under
      ``observability.latency_ms``.
    """
    burn: dict = {}
    per_op: dict[str, dict[str, float]] = {}
    if "slo" in snapshot and isinstance(snapshot["slo"], dict):
        slo = snapshot["slo"]
        burn = slo.get("burn") or {}
        for op, quantiles in (slo.get("latency_seconds") or {}).items():
            per_op[op] = {q: v * 1000.0 for q, v in quantiles.items()}
    elif "latency_ms" in snapshot and isinstance(
        next(iter(snapshot["latency_ms"].values()), None), dict
    ):
        burn = snapshot.get("burn") or {}
        per_op = {
            op: dict(quantiles)
            for op, quantiles in snapshot["latency_ms"].items()
        }
    elif "observability" in snapshot:
        obs = snapshot["observability"] or {}
        op = (snapshot.get("meta") or {}).get("operator", "all")
        if obs.get("latency_ms"):
            per_op[op] = dict(obs["latency_ms"])
    else:
        raise FigureInputError(
            "slo-quantiles: snapshot is neither a /status body, a slo-json "
            "snapshot, nor a bench_serve payload"
        )
    rows = [
        {
            "operator": op,
            "p50_ms": quantiles.get("p50"),
            "p95_ms": quantiles.get("p95"),
            "p99_ms": quantiles.get("p99"),
        }
        for op, quantiles in sorted(per_op.items())
    ]
    return rows, burn


def _build_slo_quantiles(inputs: BuildInputs) -> FigureArtifact:
    if inputs.slo is not None:
        snapshot = _load_json(
            inputs.slo, "slo-quantiles",
            "save one with: repro client status --format json > slo.json",
        )
        source = str(inputs.slo)
    else:
        snapshot = _load_json(inputs.serve, "slo-quantiles", _SERVE_HINT)
        source = f"{inputs.serve} (observability section)"
    rows, burn = slo_rows(snapshot)
    notes = f"source: {source}"
    if burn:
        notes += "; burn counters: " + json.dumps(burn, sort_keys=True)
    return FigureArtifact(
        "slo-quantiles",
        "SLO latency quantiles",
        "per-operator p50/p95/p99 served latency as exported by /status "
        "(histogram-derived, the numbers the SLO burn counters judge)",
        "bench",
        rows,
        ChartSpec("bar", "operator", ("p50_ms", "p95_ms", "p99_ms"),
                  y_title="latency (ms)"),
        notes=notes,
    )


# --------------------------------------------------------------------- #
# Observability figures — profiler flamegraph + fleet overview
# --------------------------------------------------------------------- #

def _self_profile() -> tuple[dict[str, int], str]:
    """Fallback profile: sample a tiny NNC workload in-process.

    A worker thread runs queries while this thread drives
    :meth:`SamplingProfiler.sample_once` deterministically — no daemon,
    no timing dependence on scheduler fairness beyond the worker making
    progress.
    """
    import threading as _threading
    import time as _time

    import numpy as _np

    from repro.core.nnc import NNCSearch
    from repro.datasets.synthetic import (
        anticorrelated_centers,
        make_objects,
        make_query,
    )
    from repro.obs.profile import SamplingProfiler

    rng = _np.random.default_rng(0)
    centers = anticorrelated_centers(150, 2, rng)
    objects = make_objects(centers, 5, 40.0, rng)
    search = NNCSearch(objects)
    queries = [
        make_query(centers[rng.integers(len(centers))], 3, 20.0, rng)
        for _ in range(8)
    ]
    prof = SamplingProfiler(200.0)
    stop = _threading.Event()

    def work() -> None:
        i = 0
        while not stop.is_set():
            search.run(queries[i % len(queries)], "SSD", k=2)
            i += 1

    worker = _threading.Thread(target=work, daemon=True)
    worker.start()
    own = _threading.get_ident()
    try:
        for _ in range(120):
            prof.sample_once(skip_thread=own)
            _time.sleep(1.0 / prof.hz)
    finally:
        stop.set()
        worker.join(timeout=2.0)
    stacks = prof.stacks()
    if not stacks:
        raise FigureInputError(
            "flamegraph: in-process self-profile captured no stacks; "
            "pass --profile with a saved GET /profile body instead"
        )
    return stacks, (
        f"in-process self-profile: {prof.samples} sample(s) of a tiny NNC "
        "workload (no --profile input given)"
    )


def _build_flamegraph(inputs: BuildInputs) -> FigureArtifact:
    from repro.obs.profile import flamegraph_svg

    if inputs.profile is not None:
        body = _load_json(
            inputs.profile, "flamegraph",
            "save one with: repro client profile > profile.json",
        )
        stacks = {
            str(stack): int(count)
            for stack, count in (body.get("stacks") or {}).items()
        }
        if not stacks:
            raise FigureInputError(
                f"flamegraph: {inputs.profile} has no stacks (profiler "
                "disabled? start the server with --profile-hz > 0)"
            )
        notes = (
            f"source: {inputs.profile} ({body.get('samples')} sample(s) "
            f"@ {body.get('hz')} Hz, node {body.get('node_id', '?')})"
        )
    else:
        stacks, notes = _self_profile()
    total = sum(stacks.values()) or 1
    leaves: dict[str, int] = {}
    for stack, count in stacks.items():
        leaf = stack.rsplit(";", 1)[-1]
        leaves[leaf] = leaves.get(leaf, 0) + count
    rows = [
        {
            "frame": leaf,
            "samples": count,
            "percent": 100.0 * count / total,
        }
        for leaf, count in sorted(leaves.items(), key=lambda kv: -kv[1])[:15]
    ]
    return FigureArtifact(
        "flamegraph",
        "Continuous-profiler flamegraph",
        "hottest leaf frames from the sampling profiler's folded stacks "
        "(GET /profile); the full flamegraph renders inline below",
        "observability",
        rows,
        ChartSpec("bar", "frame", ("samples",), y_title="samples"),
        notes=notes,
        extra_html=(
            "<figure>"
            + flamegraph_svg(stacks, title="where the samples landed")
            + "</figure>"
        ),
    )


def _self_fleet() -> dict:
    """Fallback fleet snapshot: a three-node LocalNode fleet in-process."""
    import numpy as _np

    from repro.datasets.synthetic import (
        anticorrelated_centers,
        make_objects,
        make_query,
    )
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.remote import LocalNode
    from repro.serve.router import RouterApp
    from repro.serve.server import ServeApp
    from repro.serve.updates import DatasetManager

    rng = _np.random.default_rng(0)
    centers = anticorrelated_centers(60, 2, rng)
    objects = make_objects(centers, 4, 60.0, rng)
    nodes: dict = {}
    apps = []
    for nid in ("n1", "n2", "n3"):
        registry = MetricsRegistry()
        app = ServeApp(
            DatasetManager(
                objects, shards=3, partitioner="hash", metrics=registry
            ),
            registry=registry,
            node_id=nid,
        )
        apps.append(app)
        nodes[nid] = LocalNode(nid, app)
    router = RouterApp(nodes, shards=3, replication=2)
    try:
        for _ in range(6):
            query = make_query(centers[rng.integers(len(centers))], 3, 30.0, rng)
            router.dispatch(
                "POST", "/query",
                {
                    "points": query.points.tolist(),
                    "operator": "SSD",
                    "k": 2,
                    "cache": False,
                },
                {},
            )
        return router.fleet.scrape()
    finally:
        router.close()
        for app in apps:
            app.close()


def _fleet_quantiles_html(quantiles: dict) -> str:
    if not quantiles:
        return ""
    rows = []
    for op in sorted(quantiles):
        q = quantiles[op]
        clamp = " (clamped)" if q.get("clamped") else ""
        rows.append(
            f"<tr><td>{op}</td><td>{q.get('count')}</td>"
            f"<td>{q.get('p50', 0.0) * 1000:.2f}</td>"
            f"<td>{q.get('p95', 0.0) * 1000:.2f}</td>"
            f"<td>{q.get('p99', 0.0) * 1000:.2f}{clamp}</td></tr>"
        )
    return (
        "<table><thead><tr><th>operator</th><th>queries</th>"
        "<th>p50 ms</th><th>p95 ms</th><th>p99 ms</th></tr></thead>"
        "<tbody>" + "".join(rows) + "</tbody></table>"
    )


def _build_fleet_overview(inputs: BuildInputs) -> FigureArtifact:
    if inputs.fleet is not None:
        body = _load_json(
            inputs.fleet, "fleet-overview",
            "save one with: repro client fleet > fleet.json (router URL)",
        )
        source = str(inputs.fleet)
    else:
        body = _self_fleet()
        source = "in-process 3-node LocalNode fleet (no --fleet input given)"
    nodes = body.get("nodes") or {}
    if not nodes:
        raise FigureInputError(
            "fleet-overview: snapshot has no nodes section (not a router "
            "GET /fleet body?)"
        )
    rows = []
    for nid in sorted(nodes):
        view = nodes[nid]
        alerts = view.get("alerts") or []
        rows.append(
            {
                "node": nid,
                "ok": bool(view.get("ok")),
                "status": view.get("status"),
                "epoch": view.get("epoch"),
                "objects": view.get("objects"),
                "uptime_s": view.get("uptime_seconds"),
                "breaker": view.get("breaker"),
                "alerts": ", ".join(alerts),
            }
        )
    quantiles = body.get("quantiles") or {}
    firing = sorted(
        {alert for view in nodes.values() for alert in view.get("alerts") or []}
    )
    notes = f"source: {source}"
    if firing:
        notes += "; ALERTS FIRING: " + ", ".join(firing)
    return FigureArtifact(
        "fleet-overview",
        "Fleet overview",
        "per-node status/epoch/objects from the router's federated scrape "
        "(GET /fleet), with fleet-merged latency quantiles — real merged "
        "histograms, not averaged per-node percentiles — tabled below",
        "observability",
        rows,
        ChartSpec("bar", "node", ("objects",), y_title="live objects"),
        notes=notes,
        extra_html=_fleet_quantiles_html(quantiles),
    )


# --------------------------------------------------------------------- #
# Trajectory figure — across commits
# --------------------------------------------------------------------- #

# Metrics the trajectory view tracks, in display order, when present.
TRACKED_METRICS = (
    "e2e_speedup_geomean",
    "serve_p99_ms",
    "cache_hit_ratio",
    "openloop_p99_ms",
    "micro_speedup_geomean",
)


def _build_perf_trajectory(inputs: BuildInputs) -> FigureArtifact:
    try:
        records = trajectory.load(inputs.trajectory)
    except ValueError as exc:
        raise FigureInputError(f"perf-trajectory: {exc}") from exc
    if not records:
        raise FigureInputError(
            f"perf-trajectory: {inputs.trajectory} is empty — run "
            "bench_kernels.py / bench_serve.py to record a first point"
        )
    rows = []
    for i, rec in enumerate(records):
        row = {
            "record": f"#{i} {str(rec.get('sha', '?'))[:10]}",
            "bench": rec.get("bench"),
            "scale": rec.get("scale"),
            "date": rec.get("date"),
            "branch": rec.get("branch"),
            "cpu_count": rec.get("cpu_count"),
        }
        row.update(rec.get("metrics") or {})
        rows.append(row)
    present = [
        m for m in TRACKED_METRICS
        if any(row.get(m) is not None for row in rows)
    ]
    if not present:
        raise FigureInputError(
            "perf-trajectory: no tracked metrics "
            f"({', '.join(TRACKED_METRICS)}) present in {inputs.trajectory}"
        )
    return FigureArtifact(
        "perf-trajectory",
        "Perf trajectory across commits",
        "headline bench metrics per recorded (commit, suite) run, each "
        "series indexed to its first record so speedups and latencies "
        "share one axis (1.0 = first recorded value)",
        "trajectory",
        rows,
        ChartSpec("line", "record", tuple(present),
                  y_title="relative to first record (x)", indexed=True),
        notes=f"{len(records)} record(s) from {inputs.trajectory}",
    )


# --------------------------------------------------------------------- #
# The registry
# --------------------------------------------------------------------- #

def _registry() -> dict[str, Figure]:
    entries: list[Figure] = [
        Figure(fid, f"Paper {fid}", "paper", _paper_builder(fid))
        for fid in paper_figures.FIGURES
    ]
    entries += [
        Figure("kernels-micro", "Micro-kernel speedups", "bench",
               _build_kernels_micro),
        Figure("kernels-e2e", "End-to-end kernel speedups", "bench",
               _build_kernels_e2e),
        Figure("serve-scaling", "Shard scaling", "bench",
               _build_serve_scaling),
        Figure("serve-openloop", "Open-loop latency", "bench",
               _build_serve_openloop),
        Figure("router-scaling", "Router scaling and hedging", "bench",
               _build_router_scaling),
        Figure("slo-quantiles", "SLO latency quantiles", "bench",
               _build_slo_quantiles),
        Figure("flamegraph", "Continuous-profiler flamegraph",
               "observability", _build_flamegraph),
        Figure("fleet-overview", "Fleet overview", "observability",
               _build_fleet_overview),
        Figure("perf-trajectory", "Perf trajectory", "trajectory",
               _build_perf_trajectory),
    ]
    return {entry.fid: entry for entry in entries}


REGISTRY: dict[str, Figure] = _registry()


def registered_ids() -> list[str]:
    """Every figure id, registry order (paper first, then bench views)."""
    return list(REGISTRY)


def get(fid: str) -> Figure:
    """The registry entry for ``fid``; :class:`UnknownFigureError` if none."""
    try:
        return REGISTRY[fid]
    except KeyError:
        raise UnknownFigureError(fid) from None


def build_figure(fid: str, inputs: BuildInputs | None = None) -> FigureArtifact:
    """Build one figure and run its self-check."""
    art = get(fid).build(inputs if inputs is not None else BuildInputs())
    self_check(art)
    return art


def build_many(
    fids: list[str] | None = None,
    inputs: BuildInputs | None = None,
    *,
    on_progress: Callable[[str], None] | None = None,
) -> list[FigureArtifact]:
    """Build (and self-check) many figures; ``None`` means all of them."""
    arts = []
    for fid in fids if fids is not None else registered_ids():
        if on_progress is not None:
            on_progress(fid)
        arts.append(build_figure(fid, inputs))
    return arts


# --------------------------------------------------------------------- #
# Emission: CSV, Vega-Lite, self-check
# --------------------------------------------------------------------- #

def _columns(rows: list[dict]) -> list[str]:
    cols: list[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    return cols


def _fmt_cell(value) -> str:
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, float):
        return format(value, ".6g")
    if value is None:
        return ""
    return str(value)


def rows_to_csv(rows: list[dict]) -> str:
    """Rows as CSV text: union of columns, floats at 6 significant digits."""
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=_columns(rows), lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: _fmt_cell(v) for k, v in row.items()})
    return out.getvalue()


def _series_of(art: FigureArtifact) -> list[str]:
    chart = art.chart
    if chart.series:
        return list(chart.series)
    series = []
    for col in _columns(art.rows):
        if col == chart.x:
            continue
        if any(
            isinstance(row.get(col), (int, float))
            and not isinstance(row.get(col), bool)
            for row in art.rows
        ):
            series.append(col)
    return series


def long_rows(art: FigureArtifact) -> list[dict]:
    """Wide rows -> ``{x, series, value}`` triples (Nones dropped).

    With ``chart.indexed`` each series is divided by its first finite
    value; the raw value rides along as ``raw`` for tooltips.
    """
    chart, series = art.chart, _series_of(art)
    out = []
    base: dict[str, float] = {}
    for row in art.rows:
        for name in series:
            value = row.get(name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            entry = {chart.x: row.get(chart.x), "series": name,
                     "value": float(value)}
            if chart.indexed:
                if name not in base and value:
                    base[name] = float(value)
                if not base.get(name):
                    continue
                entry["raw"] = float(value)
                entry["value"] = float(value) / base[name]
            out.append(entry)
    return out


def vega_lite_spec(art: FigureArtifact) -> dict:
    """A self-contained Vega-Lite v5 spec with the data inlined."""
    chart, series = art.chart, _series_of(art)
    values = long_rows(art)
    y_scale: dict = {}
    if chart.log_y and all(v["value"] > 0 for v in values):
        y_scale["type"] = "log"
    encoding: dict = {
        "x": {"field": chart.x, "type": chart.x_type, "sort": None},
        "y": {
            "field": "value",
            "type": "quantitative",
            "title": chart.y_title or "value",
            **({"scale": y_scale} if y_scale else {}),
        },
        "tooltip": [
            {"field": chart.x, "type": chart.x_type},
            {"field": "series", "type": "nominal"},
            {"field": "value", "type": "quantitative"},
        ],
    }
    if len(series) > 1:
        encoding["color"] = {
            "field": "series",
            "type": "nominal",
            "sort": series,
            "title": None,
        }
        if chart.kind == "bar":
            encoding["xOffset"] = {"field": "series", "sort": series}
    mark = (
        {"type": "line", "point": True}
        if chart.kind == "line"
        else {"type": "bar"}
    )
    return {
        "$schema": VEGA_LITE_SCHEMA,
        "title": f"{art.fid} — {art.title}",
        "description": art.description,
        "width": 480,
        "height": 260,
        "data": {"values": values},
        "mark": mark,
        "encoding": encoding,
    }


def self_check(art: FigureArtifact) -> dict:
    """Assert the artifact is emittable; return a small summary.

    Checks: non-empty rows; CSV round-trips through ``csv.DictReader``
    with the same shape; the Vega-Lite spec carries the v5 ``$schema``,
    non-empty inline data, a mark and x/y encodings whose fields exist in
    the data.  Raises :class:`SelfCheckError` with the figure id on any
    violation.
    """
    def fail(msg: str) -> None:
        raise SelfCheckError(f"{art.fid}: {msg}")

    if not art.rows:
        fail("no rows")
    csv_text = rows_to_csv(art.rows)
    parsed = list(csv.DictReader(io.StringIO(csv_text)))
    if len(parsed) != len(art.rows):
        fail(f"CSV round-trip lost rows ({len(art.rows)} -> {len(parsed)})")
    if parsed and list(parsed[0]) != _columns(art.rows):
        fail("CSV round-trip changed the column set")
    spec = vega_lite_spec(art)
    if spec.get("$schema") != VEGA_LITE_SCHEMA:
        fail("spec is missing the Vega-Lite v5 $schema")
    values = spec.get("data", {}).get("values")
    if not isinstance(values, list) or not values:
        fail("spec has no inline data values")
    if "mark" not in spec or "encoding" not in spec:
        fail("spec is missing mark/encoding")
    for channel in ("x", "y"):
        fld = spec["encoding"].get(channel, {}).get("field")
        if not fld:
            fail(f"spec encoding.{channel} has no field")
        if not any(fld in value for value in values):
            fail(f"spec encoding.{channel} field {fld!r} absent from data")
    json.dumps(spec)  # must be JSON-serializable end to end
    return {
        "fid": art.fid,
        "rows": len(art.rows),
        "series": len(_series_of(art)),
        "csv_bytes": len(csv_text),
    }


def write_artifacts(art: FigureArtifact, out_dir: str | Path) -> dict:
    """Write ``data/<fid>.csv`` + ``specs/<fid>.vl.json``; return paths."""
    out_dir = Path(out_dir)
    data_dir, spec_dir = out_dir / "data", out_dir / "specs"
    data_dir.mkdir(parents=True, exist_ok=True)
    spec_dir.mkdir(parents=True, exist_ok=True)
    csv_path = data_dir / f"{art.fid}.csv"
    csv_path.write_text(rows_to_csv(art.rows))
    spec_path = spec_dir / f"{art.fid}.vl.json"
    spec_path.write_text(
        json.dumps(vega_lite_spec(art), indent=2, sort_keys=True) + "\n"
    )
    return {"csv": csv_path, "spec": spec_path}
