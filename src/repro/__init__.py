"""repro — optimal spatial dominance for nearest-neighbor candidate search.

A from-scratch Python implementation of *"Optimal Spatial Dominance: An
Effective Search of Nearest Neighbor Candidates"* (Wang, Zhang, Zhang, Lin,
Cheema; SIGMOD 2015): multi-instance objects, the three families of NN
ranking functions, the four spatial dominance operators (S-SD, SS-SD, P-SD,
F-SD / F+-SD) with their filtering techniques, and the progressive NN
candidates search of Algorithm 1 — plus every substrate they stand on
(R-trees, convex hulls, max-flow / min-cost-flow, stochastic orders).

Quickstart::

    import numpy as np
    from repro import UncertainObject, nn_candidates

    rng = np.random.default_rng(7)
    objects = [
        UncertainObject(rng.normal(c, 0.5, size=(8, 2)), oid=i)
        for i, c in enumerate(rng.uniform(0, 10, size=(50, 2)))
    ]
    query = UncertainObject(rng.normal(5.0, 0.5, size=(6, 2)), oid="Q")
    result = nn_candidates(objects, query, "PSD")
    print(result.oids())
"""

from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.core.nnc import NNCResult, NNCSearch, nn_candidates
from repro.core.operators import OperatorKind, make_operator
from repro.objects.io import load_objects, save_objects
from repro.objects.uncertain import UncertainObject, normalize_objects
from repro.objects.validate import (
    DatasetFormatError,
    InvalidInputError,
    ValidationReport,
    validate_objects,
)
from repro.query.topk import FunctionTopK, top_k
from repro.resilience import (
    Budget,
    BudgetExhausted,
    DegradationReport,
    FaultPlan,
    FaultSpec,
)
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_leq

__version__ = "1.1.0"

__all__ = [
    "Budget",
    "BudgetExhausted",
    "Counters",
    "DatasetFormatError",
    "DegradationReport",
    "DiscreteDistribution",
    "FaultPlan",
    "FaultSpec",
    "FunctionTopK",
    "InvalidInputError",
    "NNCResult",
    "NNCSearch",
    "OperatorKind",
    "QueryContext",
    "UncertainObject",
    "ValidationReport",
    "__version__",
    "load_objects",
    "make_operator",
    "nn_candidates",
    "normalize_objects",
    "save_objects",
    "stochastic_leq",
    "top_k",
    "validate_objects",
]
