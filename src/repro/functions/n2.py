"""Possible world based NN functions (family N2, Section 3.3).

A possible world draws one instance from each object and from the query; an
object is scored by its rank (or distance) within each world, and the final
score aggregates across worlds.  Li et al.'s *parameterized ranking* model
``Y(U) = sum_i w(i) * Pr(r(U) = i)`` unifies the popular instantiations; the
paper maps NN probability (``w = -1`` at rank 1), expected rank (``w(i) = i``)
and global top-k (``w(i) = -1`` for ``i <= k``) onto it.

Ranks here are defined as ``r(U, W) = 1 + #{V != U : delta(V, W) < delta(U, W)}``
(ties share a rank), which satisfies the model's monotonicity requirement
``s(U, W) <= s(V, W)`` whenever ``delta(U, W) < delta(V, W)``.

Two evaluation paths are provided:

* :class:`PossibleWorldScores` — **exact polynomial** computation of the full
  rank distribution of every object via a Poisson-binomial dynamic program
  over objects, conditioned per query instance and object instance
  (``O(|Q| * m * n^2)`` overall);
* :func:`enumerate_worlds` / :func:`brute_force_rank_distribution` —
  exhaustive possible-world enumeration, exponential and intended only for
  testing the polynomial path on small inputs.

All ``*_score`` functions return values where **smaller is better**.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.geometry.distance import pairwise_distances
from repro.objects.uncertain import UncertainObject

_TIE_TOL = 1e-9


class PossibleWorldScores:
    """Exact rank distributions of objects under possible-world semantics.

    Args:
        objects: the competing objects (must share dimensionality).
        query: the query object.

    The heavy lifting happens lazily per object and is cached.
    """

    def __init__(
        self, objects: Sequence[UncertainObject], query: UncertainObject
    ) -> None:
        if not objects:
            raise ValueError("need at least one object")
        self.objects = list(objects)
        self.query = query
        # dists[j] has shape (|Q|, m_j): distance of each instance of object j
        # to each query instance.
        self._dists = [
            pairwise_distances(query.points, obj.points) for obj in self.objects
        ]
        # Per object and query instance: sorted distances plus a cumulative
        # probability table (leading 0), so Pr(delta(V, q) < t) is a single
        # searchsorted lookup.
        self._sorted: list[list[tuple[np.ndarray, np.ndarray]]] = []
        for obj, dists in zip(self.objects, self._dists):
            rows = []
            for qi in range(len(query)):
                order = np.argsort(dists[qi])
                sorted_d = dists[qi][order]
                cum = np.concatenate([[0.0], np.cumsum(obj.probs[order])])
                rows.append((sorted_d, cum))
            self._sorted.append(rows)
        self._rank_cache: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.objects)

    def rank_distribution(self, index: int) -> np.ndarray:
        """``Pr(r(U) = i)`` for ``i = 1..n`` as an array of length ``n``.

        Uses the Poisson-binomial DP: conditioned on query instance ``q`` and
        own instance ``u``, each other object independently lies strictly
        closer with probability ``Pr(delta(V, q) < delta(u, q))``; the number
        of closer objects is the sum of those independent Bernoullis.
        """
        if index in self._rank_cache:
            return self._rank_cache[index]
        n = len(self.objects)
        query = self.query
        pmf = np.zeros(n)
        own = self._dists[index]
        m = len(self.objects[index])
        others = [j for j in range(n) if j != index]
        for qi, q_prob in enumerate(query.probs):
            thresholds = own[qi]  # (m,)
            # closer[ui, col] = Pr(delta(objects[others[col]], q_qi) < t_ui)
            closer = np.empty((m, len(others)))
            for col, j in enumerate(others):
                sorted_d, cum = self._sorted[j][qi]
                pos = np.searchsorted(sorted_d, thresholds - _TIE_TOL, side="left")
                closer[:, col] = cum[pos]
            for ui, u_prob in enumerate(self.objects[index].probs):
                weight = float(q_prob) * float(u_prob)
                if weight <= 0:
                    continue
                counts = _poisson_binomial(closer[ui])
                pmf[: counts.size] += weight * counts
        self._rank_cache[index] = pmf
        return pmf

    def nn_probability(self, index: int) -> float:
        """``Pr(r(U) = 1)`` — probability the object is the nearest neighbor."""
        return float(self.rank_distribution(index)[0])

    def expected_rank(self, index: int) -> float:
        """``E[r(U)]`` (smaller is better)."""
        pmf = self.rank_distribution(index)
        return float(np.dot(pmf, np.arange(1, pmf.size + 1)))

    def topk_probability(self, index: int, k: int) -> float:
        """``Pr(r(U) <= k)``."""
        if k < 1:
            raise ValueError("k must be at least 1")
        pmf = self.rank_distribution(index)
        return float(pmf[: min(k, pmf.size)].sum())

    def parameterized_score(
        self, index: int, omega: Callable[[int], float]
    ) -> float:
        """``Y(U) = sum_i omega(i) * Pr(r(U) = i)`` (Equation 3).

        ``omega`` should be non-decreasing in the rank for the score to be a
        valid N2 member (smaller is better).
        """
        pmf = self.rank_distribution(index)
        return float(sum(omega(i + 1) * p for i, p in enumerate(pmf)))


def _poisson_binomial(probs: np.ndarray) -> np.ndarray:
    """PMF of the number of successes of independent Bernoulli trials."""
    pmf = np.array([1.0])
    for p in probs:
        p = min(max(float(p), 0.0), 1.0)
        pmf = np.convolve(pmf, [1.0 - p, p])
    return pmf


# --------------------------------------------------------------------- #
# Convenience wrappers (smaller-is-better scores)
# --------------------------------------------------------------------- #


def nn_probability(
    obj_index: int, objects: Sequence[UncertainObject], query: UncertainObject
) -> float:
    """NN probability of ``objects[obj_index]`` (larger is better)."""
    return PossibleWorldScores(objects, query).nn_probability(obj_index)


def expected_rank(
    obj_index: int, objects: Sequence[UncertainObject], query: UncertainObject
) -> float:
    """Expected rank score (smaller is better)."""
    return PossibleWorldScores(objects, query).expected_rank(obj_index)


def global_topk_score(
    obj_index: int,
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    k: int = 1,
) -> float:
    """Global top-k score ``-Pr(r(U) <= k)`` (smaller is better)."""
    return -PossibleWorldScores(objects, query).topk_probability(obj_index, k)


def u_topk_score(
    obj_index: int,
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    k: int = 1,
) -> float:
    """U-top-k style score ``-Pr(r(U) <= k)`` (smaller is better)."""
    return global_topk_score(obj_index, objects, query, k)


def parameterized_rank_score(
    obj_index: int,
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    omega: Callable[[int], float],
) -> float:
    """Parameterized ranking score (Equation 3; smaller is better)."""
    return PossibleWorldScores(objects, query).parameterized_score(obj_index, omega)


def probabilistic_threshold_topk(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    k: int,
    p_threshold: float,
) -> list[int]:
    """PT-k answer set (Hua et al., reference [18] of the paper).

    Returns the indices of the objects whose probability of ranking within
    the top ``k`` is at least ``p_threshold`` — a popular possible-world
    query answered directly from the exact rank distributions.
    """
    if not 0 < p_threshold <= 1:
        raise ValueError("p_threshold must lie in (0, 1]")
    pw = PossibleWorldScores(objects, query)
    return [
        i
        for i in range(len(objects))
        if pw.topk_probability(i, k) >= p_threshold - 1e-12
    ]


# --------------------------------------------------------------------- #
# Brute-force enumeration (testing oracle; exponential)
# --------------------------------------------------------------------- #


def enumerate_worlds(
    objects: Sequence[UncertainObject], query: UncertainObject
) -> Iterator[tuple[list[int], int, float]]:
    """Yield every possible world as ``(object_instance_ids, query_instance_id, prob)``."""
    choices = [range(len(obj)) for obj in objects]
    for q_idx in range(len(query)):
        q_prob = float(query.probs[q_idx])
        for combo in itertools.product(*choices):
            prob = q_prob
            for obj, idx in zip(objects, combo):
                prob *= float(obj.probs[idx])
            if prob > 0:
                yield list(combo), q_idx, prob


def brute_force_rank_distribution(
    obj_index: int, objects: Sequence[UncertainObject], query: UncertainObject
) -> np.ndarray:
    """Rank pmf of one object by exhaustive world enumeration (tests only)."""
    n = len(objects)
    pmf = np.zeros(n)
    for combo, q_idx, prob in enumerate_worlds(objects, query):
        q = query.points[q_idx]
        dists = [
            float(np.linalg.norm(objects[j].points[combo[j]] - q)) for j in range(n)
        ]
        me = dists[obj_index]
        rank = 1 + sum(
            1 for j in range(n) if j != obj_index and dists[j] < me - _TIE_TOL
        )
        pmf[rank - 1] += prob
    return pmf
