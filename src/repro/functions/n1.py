"""All pairs based NN functions (family N1, Section 3.2).

``f(U) = g(U_Q)`` for a stable aggregate ``g`` applied to the full distance
distribution of the object against the query.  This module instantiates the
premier members — min, max, expected (mean) and quantile distances — and a
factory :func:`n1_function` turning any stable aggregate into a ranking
function.
"""

from __future__ import annotations

from typing import Callable

from repro.functions.base import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    QuantileAggregate,
    StableAggregate,
)
from repro.objects.uncertain import UncertainObject

N1Function = Callable[[UncertainObject, UncertainObject], float]


def n1_function(aggregate: StableAggregate) -> N1Function:
    """Lift a stable aggregate to an N1 ranking function ``f(U, Q)``."""

    def f(obj: UncertainObject, query: UncertainObject) -> float:
        return aggregate(obj.distance_distribution(query))

    f.__name__ = f"n1_{aggregate.name}"
    f.__doc__ = f"N1 function using the stable aggregate {aggregate.name!r}."
    return f


def min_distance(obj: UncertainObject, query: UncertainObject) -> float:
    """``min`` distance: smallest pair-wise distance."""
    return obj.distance_distribution(query).min()


def max_distance(obj: UncertainObject, query: UncertainObject) -> float:
    """``max`` distance: largest pair-wise distance."""
    return obj.distance_distribution(query).max()


def expected_distance(obj: UncertainObject, query: UncertainObject) -> float:
    """Expected (mean) distance over all instance pairs."""
    return obj.distance_distribution(query).mean()


def quantile_distance(
    obj: UncertainObject, query: UncertainObject, phi: float
) -> float:
    """``phi``-quantile distance (Definition 10) of the distance distribution."""
    return obj.distance_distribution(query).quantile(phi)


# Premier ready-made instances used by test suites and examples.
MIN = n1_function(MinAggregate())
MAX = n1_function(MaxAggregate())
MEAN = n1_function(MeanAggregate())
MEDIAN = n1_function(QuantileAggregate(0.5))
