"""Selected pairs based NN functions (family N3, Section 3.4 / Appendix A).

These functions score an object with a stable aggregate over a *selected
subset* of pair-wise distances and are *counterpart computable*: re-selecting
the pairs through any match cannot improve the score.  The paper proves
membership for:

* **Hausdorff distance** (Definition 11) — every instance of either set picks
  its closest partner; the score is the worst such distance.
* **Sum of minimal distances** — the same selection aggregated by a
  (normalised) sum instead of max.
* **Earth Mover's distance** — the cheapest transport plan (match) between
  the object and the query, with pair distances as costs.
* **Netflow distance** (Definition 12) — minimal cost of a value-1 maximal
  flow of the distance network; equal to EMD when total mass is 1, which we
  exploit (both names are provided for API clarity).

Smaller is better for all functions here.
"""

from __future__ import annotations

import numpy as np

from repro.flow.mincost import MinCostFlowNetwork, min_cost_flow
from repro.geometry.distance import pairwise_distances
from repro.objects.uncertain import UncertainObject


def hausdorff_distance(obj: UncertainObject, query: UncertainObject) -> float:
    """Hausdorff distance ``D_h(U, Q)`` (Definition 11).

    ``max( max_u delta_min(u, Q), max_q delta_min(q, U) )``.
    """
    dists = pairwise_distances(obj.points, query.points)  # (m, |Q|)
    u_side = float(dists.min(axis=1).max())
    q_side = float(dists.min(axis=0).max())
    return max(u_side, q_side)


def sum_of_min_distances(obj: UncertainObject, query: UncertainObject) -> float:
    """Sum of minimal distances (Eiter & Mannila / Ramon & Bruynooghe).

    Probability-weighted symmetric sum: each instance contributes its closest
    partner distance weighted by its own mass, halved across the two sides so
    equal-mass objects score comparably.
    """
    dists = pairwise_distances(obj.points, query.points)  # (m, |Q|)
    u_side = float(np.dot(dists.min(axis=1), obj.probs))
    q_side = float(np.dot(dists.min(axis=0), query.probs))
    return 0.5 * (u_side + q_side)


def earth_movers_distance(obj: UncertainObject, query: UncertainObject) -> float:
    """Earth Mover's distance between the instance masses of ``obj`` and ``query``.

    Built as a min-cost flow on the bipartite distance network of Appendix A:
    source -> query instances (capacity ``p(q)``), query -> object instances
    (capacity inf, cost ``delta``), object instances -> sink (capacity
    ``p(u)``).  With both total masses equal to 1 the optimal plan is a
    *match* (Definition 4) of minimal expected distance.
    """
    m, k = len(obj), len(query)
    dists = pairwise_distances(query.points, obj.points)  # (k, m)
    source = 0
    sink = 1 + k + m
    net = MinCostFlowNetwork(sink + 1)
    for qi in range(k):
        net.add_edge(source, 1 + qi, float(query.probs[qi]), 0.0)
    for qi in range(k):
        for ui in range(m):
            net.add_edge(1 + qi, 1 + k + ui, float("inf"), float(dists[qi, ui]))
    for ui in range(m):
        net.add_edge(1 + k + ui, sink, float(obj.probs[ui]), 0.0)
    flow, cost = min_cost_flow(net, source, sink, max_value=1.0)
    if flow < 1.0 - 1e-6:
        raise RuntimeError(f"EMD network routed only {flow} mass; expected 1.0")
    return float(cost)


def netflow_distance(obj: UncertainObject, query: UncertainObject) -> float:
    """Netflow distance ``M_nd(U, Q)`` (Definition 12).

    With each object's probability mass totalling 1, the netflow distance
    equals the Earth Mover's distance (Section 3.4), so this is an alias with
    the Appendix A name.
    """
    return earth_movers_distance(obj, query)
