"""The three families of NN ranking functions modelled by the paper.

* :mod:`repro.functions.n1` — *all pairs based*: a stable aggregate applied
  to the full distance distribution ``U_Q`` (min, max, expected, quantile,
  linear weighted aggregates).
* :mod:`repro.functions.n2` — *possible world based*: scores derived from an
  object's rank/distance across possible worlds (NN probability, expected
  rank, global top-k, U-top-k, the parameterized ranking model).
* :mod:`repro.functions.n3` — *selected pairs based*: counterpart-computable
  functions over a selected subset of pairs (Hausdorff, sum-of-minimal
  distances, Earth Mover's / Netflow distance).

Every function maps ``(object, query [, context])`` to a score where
**smaller is better**, so ``f(U) <= f(V)`` means ``U`` ranks at least as
close as ``V``.
"""

from repro.functions.base import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    QuantileAggregate,
    StableAggregate,
    WeightedSumAggregate,
)
from repro.functions.n1 import (
    expected_distance,
    max_distance,
    min_distance,
    n1_function,
    quantile_distance,
)
from repro.functions.n2 import (
    PossibleWorldScores,
    expected_rank,
    global_topk_score,
    nn_probability,
    parameterized_rank_score,
    u_topk_score,
)
from repro.functions.n3 import (
    earth_movers_distance,
    hausdorff_distance,
    netflow_distance,
    sum_of_min_distances,
)
from repro.functions.registry import FunctionFamily, default_function_suite

__all__ = [
    "FunctionFamily",
    "MaxAggregate",
    "MeanAggregate",
    "MinAggregate",
    "PossibleWorldScores",
    "QuantileAggregate",
    "StableAggregate",
    "WeightedSumAggregate",
    "default_function_suite",
    "earth_movers_distance",
    "expected_distance",
    "expected_rank",
    "global_topk_score",
    "hausdorff_distance",
    "max_distance",
    "min_distance",
    "n1_function",
    "netflow_distance",
    "nn_probability",
    "parameterized_rank_score",
    "quantile_distance",
    "sum_of_min_distances",
    "u_topk_score",
]
