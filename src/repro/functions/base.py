"""Stable aggregate functions (Definition 8).

An aggregate ``g`` over a random variable is *stable* when ``X <=_st Y``
implies ``g(X) <= g(Y)``.  Stability is exactly what makes the stochastic
order a correct dominance test for the N1 family (Theorem 5), so the family
of aggregates is modelled explicitly: each aggregate is a small class with a
``__call__`` over :class:`~repro.stats.distribution.DiscreteDistribution`.

Min, max, mean and every ``phi``-quantile are proven stable in Section 3.2;
``WeightedSumAggregate`` covers arbitrary non-negative linear combinations of
order statistics-like functionals built from stable parts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.stats.distribution import DiscreteDistribution


@runtime_checkable
class StableAggregate(Protocol):
    """Protocol for a stable aggregate ``g``: smaller distribution, smaller score."""

    name: str

    def __call__(self, dist: DiscreteDistribution) -> float:
        """Aggregate the distribution into a scalar score."""
        ...


@dataclass(frozen=True)
class MinAggregate:
    """``g(X) = min(X)``; stable (Section 3.2)."""

    name: str = "min"

    def __call__(self, dist: DiscreteDistribution) -> float:
        return dist.min()


@dataclass(frozen=True)
class MaxAggregate:
    """``g(X) = max(X)``; stable (Section 3.2)."""

    name: str = "max"

    def __call__(self, dist: DiscreteDistribution) -> float:
        return dist.max()


@dataclass(frozen=True)
class MeanAggregate:
    """``g(X) = E[X]`` (the expected distance); stable via the match order."""

    name: str = "mean"

    def __call__(self, dist: DiscreteDistribution) -> float:
        return dist.mean()


@dataclass(frozen=True)
class QuantileAggregate:
    """``g(X) = quan_phi(X)`` (Definition 10); stable for every phi in (0, 1]."""

    phi: float
    name: str = "quantile"

    def __post_init__(self) -> None:
        if not 0 < self.phi <= 1:
            raise ValueError(f"phi must lie in (0, 1]; got {self.phi}")
        object.__setattr__(self, "name", f"quantile[{self.phi:g}]")

    def __call__(self, dist: DiscreteDistribution) -> float:
        return dist.quantile(self.phi)


@dataclass(frozen=True)
class WeightedSumAggregate:
    """Non-negative weighted sum of stable aggregates; stable by closure.

    If each ``g_i`` is stable and ``w_i >= 0`` then
    ``g = sum_i w_i g_i`` satisfies ``X <=_st Y => g(X) <= g(Y)``.
    """

    components: tuple[tuple[float, StableAggregate], ...]
    name: str = "weighted-sum"

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("weighted sum needs at least one component")
        if any(w < 0 for w, _ in self.components):
            raise ValueError("weights must be non-negative for stability")
        label = "+".join(f"{w:g}*{g.name}" for w, g in self.components)
        object.__setattr__(self, "name", f"wsum[{label}]")

    def __call__(self, dist: DiscreteDistribution) -> float:
        return sum(w * g(dist) for w, g in self.components)


def standard_aggregates(quantiles: Sequence[float] = (0.25, 0.5, 0.75)) -> list[StableAggregate]:
    """The premier stable aggregates of Section 3.2 plus chosen quantiles."""
    aggs: list[StableAggregate] = [MinAggregate(), MaxAggregate(), MeanAggregate()]
    aggs.extend(QuantileAggregate(phi) for phi in quantiles)
    return aggs
