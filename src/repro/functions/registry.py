"""A registry of ready-made NN functions grouped by family.

Used by examples and integration tests to iterate "many NN functions" the
way an end user without a fixed function in mind would: evaluate each
function's nearest neighbor and compare it against the NN candidate sets of
the dominance operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

from repro.functions import n1, n2, n3
from repro.objects.uncertain import UncertainObject


class FunctionFamily(Enum):
    """The three NN function families of Section 3."""

    N1 = "all-pairs"
    N2 = "possible-world"
    N3 = "selected-pairs"


@dataclass(frozen=True)
class RankedFunction:
    """A named NN function with its family tag.

    ``score`` maps ``(object_index, objects, query)`` to a smaller-is-better
    value so that N2 members (which depend on the whole object set) share one
    signature with N1/N3 members (which do not).
    """

    name: str
    family: FunctionFamily
    score: Callable[[int, Sequence[UncertainObject], UncertainObject], float]

    def nearest(
        self, objects: Sequence[UncertainObject], query: UncertainObject
    ) -> int:
        """Index of the NN object under this function (ties -> smallest index)."""
        scores = [self.score(i, objects, query) for i in range(len(objects))]
        best = min(range(len(objects)), key=lambda i: (scores[i], i))
        return best


def _lift_pairwise(
    fn: Callable[[UncertainObject, UncertainObject], float]
) -> Callable[[int, Sequence[UncertainObject], UncertainObject], float]:
    def score(
        i: int, objects: Sequence[UncertainObject], query: UncertainObject
    ) -> float:
        return fn(objects[i], query)

    return score


_PW_CACHE: dict[tuple, n2.PossibleWorldScores] = {}
_PW_CACHE_LIMIT = 8


def shared_possible_worlds(
    objects: Sequence[UncertainObject], query: UncertainObject
) -> n2.PossibleWorldScores:
    """Memoised :class:`PossibleWorldScores` for an (objects, query) pair.

    The rank-distribution DP is by far the costliest scoring path, and a
    function suite evaluates several N2 functions over the same object set;
    this cache keys on object identities so those calls share one context.
    """
    key = (tuple(id(o) for o in objects), id(query))
    if key not in _PW_CACHE:
        if len(_PW_CACHE) >= _PW_CACHE_LIMIT:
            _PW_CACHE.pop(next(iter(_PW_CACHE)))
        _PW_CACHE[key] = n2.PossibleWorldScores(objects, query)
    return _PW_CACHE[key]


@dataclass
class FunctionSuite:
    """A bag of ranked functions, filterable by family."""

    functions: list[RankedFunction] = field(default_factory=list)

    def family(self, *families: FunctionFamily) -> list[RankedFunction]:
        """Functions whose family is one of ``families``."""
        wanted = set(families)
        return [f for f in self.functions if f.family in wanted]

    def __iter__(self):
        return iter(self.functions)

    def __len__(self) -> int:
        return len(self.functions)


def default_function_suite(
    quantiles: Sequence[float] = (0.25, 0.5, 0.75),
    topk: Sequence[int] = (1, 2),
) -> FunctionSuite:
    """A representative spread of NN functions across all three families."""
    fns: list[RankedFunction] = [
        RankedFunction("min", FunctionFamily.N1, _lift_pairwise(n1.min_distance)),
        RankedFunction("max", FunctionFamily.N1, _lift_pairwise(n1.max_distance)),
        RankedFunction(
            "expected", FunctionFamily.N1, _lift_pairwise(n1.expected_distance)
        ),
    ]
    for phi in quantiles:
        fns.append(
            RankedFunction(
                f"quantile[{phi:g}]",
                FunctionFamily.N1,
                _lift_pairwise(
                    lambda u, q, phi=phi: n1.quantile_distance(u, q, phi)
                ),
            )
        )
    fns.append(
        RankedFunction(
            "nn-probability",
            FunctionFamily.N2,
            lambda i, objs, q: -shared_possible_worlds(objs, q).nn_probability(i),
        )
    )
    fns.append(
        RankedFunction(
            "expected-rank",
            FunctionFamily.N2,
            lambda i, objs, q: shared_possible_worlds(objs, q).expected_rank(i),
        )
    )
    for k in topk:
        fns.append(
            RankedFunction(
                f"global-top{k}",
                FunctionFamily.N2,
                lambda i, objs, q, k=k: -shared_possible_worlds(objs, q).topk_probability(i, k),
            )
        )
    fns.extend(
        [
            RankedFunction(
                "hausdorff", FunctionFamily.N3, _lift_pairwise(n3.hausdorff_distance)
            ),
            RankedFunction(
                "sum-min-dist",
                FunctionFamily.N3,
                _lift_pairwise(n3.sum_of_min_distances),
            ),
            RankedFunction(
                "emd", FunctionFamily.N3, _lift_pairwise(n3.earth_movers_distance)
            ),
        ]
    )
    return FunctionSuite(fns)
