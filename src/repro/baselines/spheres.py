"""Hypersphere-approximation dominance (in the spirit of reference [25]).

Long et al. (SIGMOD 2014) prune NN candidates with objects approximated by
bounding *hyperspheres* instead of MBRs.  This module provides:

* :func:`minimal_enclosing_ball` — Welzl's randomised algorithm, built from
  scratch, exact for the small dimensionalities of the experiments (support
  sets of at most ``d + 1`` points, circumball via a linear system);
* :func:`sphere_dominates` — a *sound* sphere-level full-dominance test via
  the triangle inequality: with query ball ``(c_q, r_q)``, dominator ball
  ``(c_u, r_u)`` and dominated ball ``(c_v, r_v)``,

  ``|c_q - c_u| + r_q + r_u  <=  max(|c_q - c_v| - r_q - r_v, 0)``

  implies ``delta(u, q) <= delta(v, q)`` for all members.  (Long et al.'s
  contribution is a tighter *optimal* test; the triangle bound is the
  classical sound one and suffices for a pruning baseline.)
* :func:`sphere_nn_candidates` — the resulting baseline candidate search,
  comparable to ``F+-SD`` but with balls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.objects.uncertain import UncertainObject


@dataclass(frozen=True)
class Ball:
    """A closed ball with center and radius."""

    center: np.ndarray
    radius: float

    def contains(self, point: np.ndarray, tol: float = 1e-7) -> bool:
        """Whether ``point`` lies inside the ball (with slack ``tol``)."""
        return float(np.linalg.norm(point - self.center)) <= self.radius + tol


def _circumball(points: np.ndarray) -> Ball:
    """Smallest ball with all of ``points`` (|points| <= d + 1) on its boundary.

    Solves the linear system expressing equidistance from the first point;
    degenerate (affinely dependent) support sets fall back to a least-squares
    solution, which still yields a valid bounding ball.
    """
    if len(points) == 0:
        return Ball(np.zeros(1), 0.0)
    if len(points) == 1:
        return Ball(points[0].copy(), 0.0)
    base = points[0]
    rest = points[1:] - base
    a = 2.0 * rest
    b = np.einsum("ij,ij->i", rest, rest)
    center_offset, *_ = np.linalg.lstsq(a, b, rcond=None)
    center = base + center_offset
    radius = float(np.linalg.norm(points[0] - center))
    return Ball(center, radius)


def minimal_enclosing_ball(
    points: np.ndarray, seed: int = 0
) -> Ball:
    """Welzl's algorithm (move-to-front variant, iterative boundary sets).

    Exact minimal enclosing ball in expected linear time for fixed dimension.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.size == 0:
        raise ValueError("cannot bound an empty point set")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(pts))
    shuffled = pts[order]

    def welzl(n: int, boundary: list[np.ndarray]) -> Ball:
        if n == 0 or len(boundary) == pts.shape[1] + 1:
            return _circumball(np.array(boundary)) if boundary else Ball(
                shuffled[0] * 0.0, 0.0
            )
        ball = welzl(n - 1, boundary)
        p = shuffled[n - 1]
        if ball.contains(p):
            return ball
        return welzl(n - 1, boundary + [p])

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(pts) + 100))
    try:
        return welzl(len(shuffled), [])
    finally:
        sys.setrecursionlimit(old_limit)


def bounding_ball(obj: UncertainObject) -> Ball:
    """Minimal enclosing ball of an object's instances."""
    return minimal_enclosing_ball(obj.points)


def sphere_dominates(u: Ball, v: Ball, query: Ball) -> bool:
    """Sound sphere-level full dominance (triangle-inequality bound).

    True implies every member of ``u`` is *strictly* closer than every
    member of ``v`` to every member of ``query`` — strict, so identical
    balls never dominate each other.
    """
    worst_u = float(np.linalg.norm(query.center - u.center)) + query.radius + u.radius
    best_v = max(
        float(np.linalg.norm(query.center - v.center))
        - query.radius
        - v.radius,
        0.0,
    )
    return worst_u < best_v - 1e-12


def sphere_nn_candidates(
    objects: Sequence[UncertainObject], query: UncertainObject
) -> list[UncertainObject]:
    """Baseline candidate set: objects not sphere-dominated by any other."""
    balls = [minimal_enclosing_ball(obj.points) for obj in objects]
    q_ball = minimal_enclosing_ball(query.points)
    out: list[UncertainObject] = []
    for j, v in enumerate(objects):
        dominated = any(
            i != j and sphere_dominates(balls[i], balls[j], q_ball)
            for i in range(len(objects))
        )
        if not dominated:
            out.append(v)
    return out
