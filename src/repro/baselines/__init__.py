"""Competitor approaches from prior work, for comparison.

* :mod:`repro.baselines.nncore` — the *NN-core* of Yuen et al. (TKDE 2010,
  reference [36]): candidates from pairwise "supersedes" competitions.  The
  paper's Figure 1 shows it can miss NN objects of popular functions; this
  implementation lets the claim be measured.
* :mod:`repro.baselines.spheres` — hypersphere-approximation dominance in
  the spirit of Long et al. (SIGMOD 2014, reference [25]): objects bounded
  by minimal enclosing balls (Welzl's algorithm, built from scratch) with a
  sound triangle-inequality dominance test.
"""

from repro.baselines.nncore import nn_core, supersedes, supersede_probability
from repro.baselines.spheres import (
    Ball,
    minimal_enclosing_ball,
    sphere_dominates,
    sphere_nn_candidates,
)

__all__ = [
    "Ball",
    "minimal_enclosing_ball",
    "nn_core",
    "sphere_dominates",
    "sphere_nn_candidates",
    "supersede_probability",
    "supersedes",
]
