"""NN-core (Yuen et al., reference [36] of the paper).

An object ``U`` *supersedes* ``V`` when it is more likely to be closer to
the query: ``Pr(delta(U, Q) < delta(V, Q)) > 1/2`` over the joint
distribution of one instance drawn from each of ``U``, ``V`` and ``Q`` (ties
split evenly).  The *NN-core* is the minimal set of objects that supersede
every object outside the set.

Because the supersedes relation is complete (every pair compares one way or
the other once ties are split), the NN-core is exactly the *top cycle*
(Smith set) of the supersedes tournament: the smallest strongly-connected
component with no incoming edges in the condensation.  We compute it with an
in-house iterative Tarjan SCC over the tournament digraph.

The paper (Section 1, Figure 1) shows why NN-core is too aggressive as a
candidate set: it can exclude the NN object of popular N1 functions such as
``max`` and the expected distance — see ``tests/test_nncore.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.distance import pairwise_distances
from repro.objects.uncertain import UncertainObject

_TIE_TOL = 1e-12


def supersede_probability(
    u: UncertainObject, v: UncertainObject, query: UncertainObject
) -> float:
    """``Pr(delta(U, Q) < delta(V, Q))`` with ties counted half.

    Exact computation over all ``(q, u, v)`` instance triples — conditioning
    on the query instance keeps ``U`` and ``V`` independent.
    """
    du = pairwise_distances(query.points, u.points)  # (k, m_u)
    dv = pairwise_distances(query.points, v.points)  # (k, m_v)
    prob = 0.0
    for qi, q_prob in enumerate(query.probs):
        wins = (du[qi][:, None] < dv[qi][None, :] - _TIE_TOL).astype(float)
        ties = (np.abs(du[qi][:, None] - dv[qi][None, :]) <= _TIE_TOL).astype(float)
        weight = np.outer(u.probs, v.probs)
        prob += float(q_prob) * float(((wins + 0.5 * ties) * weight).sum())
    return prob


def supersedes(
    u: UncertainObject, v: UncertainObject, query: UncertainObject
) -> bool:
    """Whether ``U`` supersedes ``V`` (wins at least half the comparisons)."""
    return supersede_probability(u, v, query) >= 0.5


def _tarjan_sccs(adj: list[list[int]]) -> list[list[int]]:
    """Strongly connected components (iterative Tarjan), in discovery order."""
    n = len(adj)
    index = [-1] * n
    low = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = 0
    for root in range(n):
        if index[root] >= 0:
            continue
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            recurse = False
            for i in range(child_idx, len(adj[node])):
                child = adj[node][i]
                if index[child] < 0:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if on_stack[child]:
                    low[node] = min(low[node], index[child])
            if recurse:
                continue
            if low[node] == index[node]:
                component: list[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def nn_core(
    objects: Sequence[UncertainObject], query: UncertainObject
) -> list[UncertainObject]:
    """The NN-core: the top cycle of the supersedes tournament.

    Returns the objects of the unique source component of the tournament's
    condensation — the minimal set superseding everything outside it.
    """
    n = len(objects)
    if n == 0:
        return []
    if n == 1:
        return [objects[0]]
    beats = np.zeros((n, n), dtype=bool)
    for i in range(n):
        for j in range(i + 1, n):
            p = supersede_probability(objects[i], objects[j], query)
            beats[i, j] = p >= 0.5
            beats[j, i] = p <= 0.5  # ties supersede both ways
    adj = [list(np.nonzero(beats[i])[0]) for i in range(n)]
    sccs = _tarjan_sccs(adj)
    # Completeness makes the condensation a total order, so exactly one
    # component beats every outsider — that component is the NN-core.
    for component in sccs:
        members = set(component)
        dominates_all = all(
            beats[i, j] for i in component for j in range(n) if j not in members
        )
        if dominates_all:
            return [objects[i] for i in sorted(component)]
    # Unreachable for a complete relation; be safe rather than wrong.
    return list(objects)
