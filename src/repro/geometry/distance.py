"""Distance metrics between points.

The paper assumes Euclidean distance but notes the techniques extend to any
metric.  All public functions accept array-likes and operate on
``numpy.ndarray`` internally.  ``pairwise_distances`` is the workhorse used to
materialise the distance distribution :math:`U_Q` between an object and a
query (Section 2.1 of the paper).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

Metric = Callable[[np.ndarray, np.ndarray], float]


def euclidean(u: np.ndarray, v: np.ndarray) -> float:
    """Euclidean (L2) distance between two points."""
    diff = np.subtract(u, v, dtype=float)
    return float(np.sqrt(np.dot(diff, diff)))


def squared_euclidean(u: np.ndarray, v: np.ndarray) -> float:
    """Squared Euclidean distance; monotone in :func:`euclidean`."""
    diff = np.subtract(u, v, dtype=float)
    return float(np.dot(diff, diff))


def manhattan(u: np.ndarray, v: np.ndarray) -> float:
    """Manhattan (L1) distance between two points."""
    diff = np.subtract(u, v, dtype=float)
    return float(np.abs(diff).sum())


def chebyshev(u: np.ndarray, v: np.ndarray) -> float:
    """Chebyshev (L-infinity) distance between two points."""
    diff = np.subtract(u, v, dtype=float)
    return float(np.abs(diff).max())


_METRICS: dict[str, Metric] = {
    "euclidean": euclidean,
    "l2": euclidean,
    "manhattan": manhattan,
    "l1": manhattan,
    "chebyshev": chebyshev,
    "linf": chebyshev,
}

_NORMS = {
    "euclidean": lambda v: float(np.sqrt(np.dot(v, v))),
    "l2": lambda v: float(np.sqrt(np.dot(v, v))),
    "manhattan": lambda v: float(np.abs(v).sum()),
    "l1": lambda v: float(np.abs(v).sum()),
    "chebyshev": lambda v: float(np.abs(v).max()),
    "linf": lambda v: float(np.abs(v).max()),
}


_BATCH_NORMS = {
    "euclidean": lambda v, axis=-1: np.sqrt((v * v).sum(axis=axis)),
    "l2": lambda v, axis=-1: np.sqrt((v * v).sum(axis=axis)),
    "manhattan": lambda v, axis=-1: np.abs(v).sum(axis=axis),
    "l1": lambda v, axis=-1: np.abs(v).sum(axis=axis),
    "chebyshev": lambda v, axis=-1: np.abs(v).max(axis=axis),
    "linf": lambda v, axis=-1: np.abs(v).max(axis=axis),
}


def resolve_batch_norm(metric: str):
    """Vectorised norm reducing per-dimension gap arrays along an axis.

    The batch counterpart of :func:`resolve_norm`: maps an ``(..., d)`` array
    of per-dimension gaps to an ``(...,)`` array of distances.  Used by the
    batched MBR ``mindist``/``maxdist`` kernels.

    Raises:
        KeyError: for unknown names (callable metrics have no generic norm).
    """
    try:
        return _BATCH_NORMS[metric.lower()]
    except (KeyError, AttributeError):
        known = ", ".join(sorted(_BATCH_NORMS))
        raise KeyError(
            f"no batch norm for metric {metric!r}; known: {known}"
        ) from None


def resolve_norm(metric: str):
    """Vector norm matching a named Minkowski metric.

    Used by MBR ``mindist``/``maxdist`` under non-Euclidean metrics: both
    reduce to a norm of a per-dimension gap vector because coordinate
    differences are minimised/maximised independently for every Lp metric.

    Raises:
        KeyError: for unknown names (callable metrics have no generic norm).
    """
    try:
        return _NORMS[metric.lower()]
    except KeyError:
        known = ", ".join(sorted(_NORMS))
        raise KeyError(f"no norm for metric {metric!r}; known: {known}") from None


def is_euclidean(metric: str | Metric) -> bool:
    """Whether the metric is (named) Euclidean."""
    if callable(metric):
        return metric is euclidean
    return metric.lower() in ("euclidean", "l2")


def resolve_metric(metric: str | Metric) -> Metric:
    """Return a callable metric for a name or pass a callable through.

    Raises:
        KeyError: if ``metric`` is a string that names no known metric.
    """
    if callable(metric):
        return metric
    try:
        return _METRICS[metric.lower()]
    except KeyError:
        known = ", ".join(sorted(_METRICS))
        raise KeyError(f"unknown metric {metric!r}; known metrics: {known}") from None


def pairwise_distances(
    xs: np.ndarray, ys: np.ndarray, metric: str | Metric = "euclidean"
) -> np.ndarray:
    """All pairwise distances between two point sets.

    Args:
        xs: array of shape ``(m, d)``.
        ys: array of shape ``(k, d)``.
        metric: metric name or callable.

    Returns:
        Array of shape ``(m, k)`` where entry ``(i, j)`` is the distance
        between ``xs[i]`` and ``ys[j]``.  Euclidean and Manhattan metrics are
        vectorised; arbitrary callables fall back to a Python loop.
    """
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    ys = np.atleast_2d(np.asarray(ys, dtype=float))
    if xs.shape[1] != ys.shape[1]:
        raise ValueError(
            f"dimensionality mismatch: {xs.shape[1]} vs {ys.shape[1]}"
        )
    if metric in ("euclidean", "l2") or metric is euclidean:
        diff = xs[:, None, :] - ys[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    if metric in ("manhattan", "l1") or metric is manhattan:
        return np.abs(xs[:, None, :] - ys[None, :, :]).sum(axis=2)
    if metric in ("chebyshev", "linf") or metric is chebyshev:
        return np.abs(xs[:, None, :] - ys[None, :, :]).max(axis=2)
    fn = resolve_metric(metric)
    out = np.empty((xs.shape[0], ys.shape[0]), dtype=float)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = fn(x, y)
    return out
