"""Bisector half-space tests: the instance ordering ``u <=_Q v``.

``u <=_Q v`` holds when instance ``u`` is at least as close as ``v`` to every
query instance (Section 2.1).  It is the edge condition of the P-SD max-flow
network (Theorem 12) and, applied pairwise, defines instance-level F-SD.

Two equivalent formulations are provided:

* :func:`closer_to_query` — direct comparison of distances against a set of
  query points (typically the convex hull vertices, see
  :mod:`repro.geometry.convexhull`).
* :func:`distance_vector` — the k-dimensional mapping of Section 5.1.2 where
  instance ``u`` maps to ``(delta(u, q_1), ..., delta(u, q_k))``; then
  ``u <=_Q v`` iff the vector of ``u`` is coordinate-wise no larger than the
  vector of ``v``.  This enables the R-tree range-query construction of the
  P-SD network.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.distance import pairwise_distances


def distance_vector(points: np.ndarray, query_points: np.ndarray) -> np.ndarray:
    """Map each point to its vector of distances to the query points.

    Args:
        points: shape ``(m, d)``.
        query_points: shape ``(k, d)`` — normally ``CH(Q)``.

    Returns:
        Array of shape ``(m, k)``; row ``i`` is the distance vector of
        ``points[i]``.  ``u <=_Q v`` iff ``row(u) <= row(v)`` coordinate-wise.
    """
    return pairwise_distances(points, query_points)


def closer_to_query(
    u: np.ndarray,
    v: np.ndarray,
    query_points: np.ndarray,
    *,
    tol: float = 1e-9,
) -> bool:
    """Whether ``u <=_Q v``: ``delta(u, q) <= delta(v, q)`` for all ``q``.

    Because ``delta^2(u, q) - delta^2(v, q)`` is linear in ``q``, passing the
    convex hull vertices of the query instead of all instances yields the
    same answer.

    Args:
        u: candidate closer instance, shape ``(d,)``.
        v: candidate farther instance, shape ``(d,)``.
        query_points: shape ``(k, d)``.
        tol: numeric slack added to the right-hand side, in (unsquared)
            distance units — the same boundary semantics as
            :func:`adjacency_from_vectors`, so the scalar and batched
            halfspace tests agree on near-tie pairs.
    """
    q = np.atleast_2d(np.asarray(query_points, dtype=float))
    du = q - np.asarray(u, dtype=float)
    dv = q - np.asarray(v, dtype=float)
    du2 = np.einsum("ij,ij->i", du, du)
    dv2 = np.einsum("ij,ij->i", dv, dv)
    return bool(np.all(np.sqrt(du2) <= np.sqrt(dv2) + tol))


def adjacency_from_vectors(
    du: np.ndarray, dv: np.ndarray, *, tol: float = 1e-9
) -> np.ndarray:
    """``D[i, j] = (u_i <=_Q v_j)`` from precomputed distance vectors.

    One broadcast over all ``(u, v)`` instance pairs and all query (hull)
    vertices — the batched halfspace test behind the P-SD network edges.

    Args:
        du: distance vectors of the ``U`` instances, shape ``(m, k)``.
        dv: distance vectors of the ``V`` instances, shape ``(n, k)``.
        tol: numeric slack added to the right-hand side.

    Returns:
        Boolean array of shape ``(m, n)``.
    """
    return np.all(du[:, None, :] <= dv[None, :, :] + tol, axis=2)


def dominance_matrix(
    us: np.ndarray,
    vs: np.ndarray,
    query_points: np.ndarray,
    *,
    tol: float = 1e-9,
) -> np.ndarray:
    """Boolean matrix ``D[i, j] = (us[i] <=_Q vs[j])``.

    Vectorised over all instance pairs; used to build the P-SD network and
    instance-level F-SD in one shot.
    """
    du = pairwise_distances(us, query_points)  # (m, k)
    dv = pairwise_distances(vs, query_points)  # (n, k)
    return adjacency_from_vectors(du, dv, tol=tol)
