"""Geometric primitives used throughout the library.

This subpackage provides the low-level spatial machinery the paper's
algorithms depend on:

* distance metrics between points (:mod:`repro.geometry.distance`),
* minimal bounding rectangles with ``mindist``/``maxdist`` computations and
  the Emrich et al. optimal MBR dominance test (:mod:`repro.geometry.mbr`),
* convex hulls of query instance sets (:mod:`repro.geometry.convexhull`),
* bisector half-space tests realising the instance-level ordering
  ``u <=_Q v`` (:mod:`repro.geometry.halfspace`).
"""

from repro.geometry.convexhull import convex_hull, convex_hull_indices, point_in_hull
from repro.geometry.distance import (
    chebyshev,
    euclidean,
    manhattan,
    pairwise_distances,
    resolve_metric,
    squared_euclidean,
)
from repro.geometry.halfspace import closer_to_query, distance_vector
from repro.geometry.mbr import MBR, mbr_dominates

__all__ = [
    "MBR",
    "chebyshev",
    "closer_to_query",
    "convex_hull",
    "convex_hull_indices",
    "distance_vector",
    "euclidean",
    "manhattan",
    "mbr_dominates",
    "point_in_hull",
    "pairwise_distances",
    "resolve_metric",
    "squared_euclidean",
]
