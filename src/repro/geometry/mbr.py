"""Minimal bounding rectangles (MBRs) and the optimal MBR dominance test.

MBRs approximate multi-instance objects at index level.  Two facilities are
provided:

* ``MBR`` — an axis-aligned box with ``mindist``/``maxdist`` to points and to
  other boxes, union/intersection and containment predicates.  These power
  the R-tree (:mod:`repro.index.rtree`) and the level-by-level filters of
  Section 5.1.
* :func:`mbr_dominates` — the *optimal* MBR-based full-spatial-dominance test
  of Emrich et al. (SIGMOD 2010, reference [16] of the paper), deciding in
  ``O(d)`` whether ``maxdist(q, U) <= mindist(q, V)`` holds for **every**
  point ``q`` inside the query rectangle.  The paper uses this test both as
  the ``F+-SD`` baseline operator and as the cover-based validation rule for
  all other operators (Theorem 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.distance import resolve_batch_norm


@dataclass(frozen=True)
class MBR:
    """Axis-aligned minimal bounding rectangle.

    Attributes:
        lo: componentwise lower corner, shape ``(d,)``.
        hi: componentwise upper corner, shape ``(d,)``.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=float)
        hi = np.asarray(self.hi, dtype=float)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("MBR corners must be 1-d arrays of equal shape")
        if np.any(lo > hi + 1e-12):
            raise ValueError(f"invalid MBR: lo={lo} exceeds hi={hi}")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """Smallest MBR enclosing a non-empty set of points."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.size == 0:
            raise ValueError("cannot bound an empty point set")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @property
    def dim(self) -> int:
        """Dimensionality of the box."""
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        """Geometric center of the box."""
        return (self.lo + self.hi) / 2.0

    @property
    def margin(self) -> float:
        """Sum of edge lengths (used by R*-style split heuristics)."""
        return float((self.hi - self.lo).sum())

    def volume(self) -> float:
        """Product of edge lengths."""
        return float(np.prod(self.hi - self.lo))

    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR enclosing both boxes."""
        return MBR(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def enlargement(self, other: "MBR") -> float:
        """Volume increase needed to absorb ``other`` (R-tree insert metric)."""
        return self.union(other).volume() - self.volume()

    def intersects(self, other: "MBR") -> bool:
        """True when the boxes share at least one point."""
        return bool(np.all(self.lo <= other.hi) and np.all(other.lo <= self.hi))

    def contains_point(self, point: np.ndarray) -> bool:
        """True when ``point`` lies inside the closed box."""
        p = np.asarray(point, dtype=float)
        return bool(np.all(self.lo <= p) and np.all(p <= self.hi))

    def contains(self, other: "MBR") -> bool:
        """True when ``other`` lies fully inside this box."""
        return bool(np.all(self.lo <= other.lo) and np.all(other.hi <= self.hi))

    def mindist(self, point: np.ndarray, norm=None) -> float:
        """Minimal distance from ``point`` to the box (0 inside).

        ``norm`` maps the per-dimension gap vector to a scalar (Euclidean by
        default); per-dimension gaps are metric-independent for every
        Minkowski metric, so any Lp norm yields the exact Lp mindist.
        """
        p = np.asarray(point, dtype=float)
        gap = np.maximum(np.maximum(self.lo - p, p - self.hi), 0.0)
        if norm is not None:
            return norm(gap)
        return float(np.sqrt(np.dot(gap, gap)))

    def maxdist(self, point: np.ndarray, norm=None) -> float:
        """Maximal distance from ``point`` to the box (Euclidean default)."""
        p = np.asarray(point, dtype=float)
        far = np.maximum(np.abs(p - self.lo), np.abs(p - self.hi))
        if norm is not None:
            return norm(far)
        return float(np.sqrt(np.dot(far, far)))

    def mindist_mbr(self, other: "MBR", norm=None) -> float:
        """Minimal distance between any two points of the boxes."""
        gap = np.maximum(np.maximum(self.lo - other.hi, other.lo - self.hi), 0.0)
        if norm is not None:
            return norm(gap)
        return float(np.sqrt(np.dot(gap, gap)))

    def maxdist_mbr(self, other: "MBR", norm=None) -> float:
        """Maximal distance between any two points of the boxes."""
        far = np.maximum(np.abs(self.hi - other.lo), np.abs(other.hi - self.lo))
        if norm is not None:
            return norm(far)
        return float(np.sqrt(np.dot(far, far)))


# --------------------------------------------------------------------- #
# Batched MBR bounds (vectorised kernels; see repro.core.kernels)
# --------------------------------------------------------------------- #


def boxes_mindist_points(
    los: np.ndarray, his: np.ndarray, points: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Minimal distances of many boxes to many points in one broadcast.

    Args:
        los: lower corners, shape ``(b, d)``.
        his: upper corners, shape ``(b, d)``.
        points: shape ``(n, d)``.
        metric: Minkowski metric name (per-dimension gaps are metric
            independent, so any Lp norm of the gap vector is exact).

    Returns:
        Array of shape ``(b, n)``; entry ``(i, j)`` equals
        ``MBR(los[i], his[i]).mindist(points[j])`` under the metric.
    """
    los = np.atleast_2d(np.asarray(los, dtype=float))
    his = np.atleast_2d(np.asarray(his, dtype=float))
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    gap = np.maximum(
        np.maximum(los[:, None, :] - pts[None, :, :], pts[None, :, :] - his[:, None, :]),
        0.0,
    )
    return resolve_batch_norm(metric)(gap)


def boxes_maxdist_points(
    los: np.ndarray, his: np.ndarray, points: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """Maximal distances of many boxes to many points; shape ``(b, n)``."""
    los = np.atleast_2d(np.asarray(los, dtype=float))
    his = np.atleast_2d(np.asarray(his, dtype=float))
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    far = np.maximum(
        np.abs(pts[None, :, :] - los[:, None, :]),
        np.abs(pts[None, :, :] - his[:, None, :]),
    )
    return resolve_batch_norm(metric)(far)


def mbr_mindist_points(
    lo: np.ndarray, hi: np.ndarray, points: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """``mindist`` of one box to many points; shape ``(n,)``."""
    return boxes_mindist_points(lo[None, :], hi[None, :], points, metric)[0]


def mbr_maxdist_points(
    lo: np.ndarray, hi: np.ndarray, points: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """``maxdist`` of one box to many points; shape ``(n,)``."""
    return boxes_maxdist_points(lo[None, :], hi[None, :], points, metric)[0]


def boxes_mindist_box(
    los: np.ndarray,
    his: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    metric: str = "euclidean",
) -> np.ndarray:
    """``mindist`` of many boxes to one box; shape ``(b,)``.

    The batch counterpart of :meth:`MBR.mindist_mbr`, used to key a whole
    R-tree node's children against the query MBR in one call.
    """
    los = np.atleast_2d(np.asarray(los, dtype=float))
    his = np.atleast_2d(np.asarray(his, dtype=float))
    gap = np.maximum(np.maximum(los - hi[None, :], lo[None, :] - his), 0.0)
    return resolve_batch_norm(metric)(gap)


def boxes_mindist_point(
    los: np.ndarray, his: np.ndarray, point: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """``mindist`` of many boxes to one point; shape ``(b,)``."""
    p = np.asarray(point, dtype=float)
    return boxes_mindist_points(los, his, p[None, :], metric)[:, 0]


def boxes_maxdist_point(
    los: np.ndarray, his: np.ndarray, point: np.ndarray, metric: str = "euclidean"
) -> np.ndarray:
    """``maxdist`` of many boxes to one point; shape ``(b,)``."""
    p = np.asarray(point, dtype=float)
    return boxes_maxdist_points(los, his, p[None, :], metric)[:, 0]


def mbr_corner_terms(
    u_los: np.ndarray, u_his: np.ndarray, q_lo: np.ndarray, q_hi: np.ndarray
) -> np.ndarray:
    """Candidate-side terms of :func:`mbr_dominates_batch`, shape ``(2, b, d)``.

    Per query-box corner, ``U`` box and dimension: the maximal squared
    coordinate distance from the corner to the box edge.  Depends only on the
    ``U`` boxes and the query box, so callers testing many ``V`` boxes
    against a fixed candidate set can compute it once and pass it back via
    ``u_max_sq``.
    """
    u_los = np.atleast_2d(np.asarray(u_los, dtype=float))
    u_his = np.atleast_2d(np.asarray(u_his, dtype=float))
    q = np.stack([np.asarray(q_lo, dtype=float), np.asarray(q_hi, dtype=float)])
    a = q[:, None, :] - u_los[None, :, :]  # (2, b, d)
    b = q[:, None, :] - u_his[None, :, :]
    return np.maximum(a * a, b * b)


def mbr_dominates_batch(
    u_los: np.ndarray,
    u_his: np.ndarray,
    v_lo: np.ndarray,
    v_hi: np.ndarray,
    q_lo: np.ndarray,
    q_hi: np.ndarray,
    *,
    strict: bool = False,
    u_max_sq: np.ndarray | None = None,
) -> np.ndarray:
    """:func:`mbr_dominates` of many candidate boxes against one pair.

    Evaluates, for every box ``U_i = (u_los[i], u_his[i])``, whether ``U_i``
    dominates the box ``(v_lo, v_hi)`` w.r.t. the query box ``(q_lo, q_hi)``
    — the same per-dimension endpoint maximisation as the scalar test,
    broadcast over all ``U`` boxes at once.

    Args:
        u_max_sq: optional precomputed :func:`mbr_corner_terms` of the ``U``
            boxes against the query box (they are ``V``-independent).

    Returns:
        Boolean array of shape ``(b,)``.
    """
    if u_max_sq is None:
        u_max_sq = mbr_corner_terms(u_los, u_his, q_lo, q_hi)
    q = np.stack([np.asarray(q_lo, dtype=float), np.asarray(q_hi, dtype=float)])
    v_gap = np.maximum(
        np.maximum(np.asarray(v_lo, dtype=float)[None, :] - q, q - np.asarray(v_hi, dtype=float)[None, :]),
        0.0,
    )  # (2, d)
    v_min_sq = v_gap * v_gap
    total = (u_max_sq - v_min_sq[:, None, :]).max(axis=0).sum(axis=1)
    if strict:
        return total < 0.0
    return total <= 1e-12


def _dim_max_sq(q: float, lo: float, hi: float) -> float:
    """Max of ``(q - x)^2`` over ``x`` in ``{lo, hi}`` (1-d maxdist term)."""
    a = q - lo
    b = q - hi
    return max(a * a, b * b)


def _dim_min_sq(q: float, lo: float, hi: float) -> float:
    """Min of ``(q - x)^2`` over ``x`` in ``[lo, hi]`` (1-d mindist term)."""
    if q < lo:
        d = lo - q
    elif q > hi:
        d = q - hi
    else:
        return 0.0
    return d * d


def mbr_dominates(u: MBR, v: MBR, q: MBR, *, strict: bool = False) -> bool:
    """Optimal MBR dominance test (Emrich et al., paper reference [16]).

    Decides whether **every** point of ``u`` is at least as close as **every**
    point of ``v`` to **every** point of ``q``; formally whether

    .. math:: \\max_{p \\in q} \\big( maxdist(p, u)^2 - mindist(p, v)^2 \\big) \\le 0.

    Because the squared Euclidean distance decomposes per dimension and each
    1-d term is convex in the query coordinate, the maximum over the query box
    is attained with every coordinate at one of its two endpoints, and the
    maximisation decomposes dimension by dimension — an exact ``O(d)`` test.

    Args:
        u: candidate dominator box.
        v: candidate dominated box.
        q: query box.
        strict: when True require strict inequality (``< 0``), i.e. every
            instance of ``u`` strictly closer; the paper's definitions use the
            non-strict form, which is the default.

    Returns:
        True iff the (non-)strict full spatial dominance holds at MBR level.
    """
    if not (u.dim == v.dim == q.dim):
        raise ValueError("MBR dimensionalities differ")
    total = 0.0
    for i in range(q.dim):
        best = -np.inf
        for qi in (float(q.lo[i]), float(q.hi[i])):
            term = _dim_max_sq(qi, float(u.lo[i]), float(u.hi[i])) - _dim_min_sq(
                qi, float(v.lo[i]), float(v.hi[i])
            )
            if term > best:
                best = term
        total += best
    if strict:
        return total < 0.0
    return total <= 1e-12
