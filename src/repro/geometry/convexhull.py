"""Convex hulls of query instance sets and point-in-hull tests.

Section 5.1.2 of the paper observes that the instance ordering
``u <=_Q v`` (``u`` at least as close as ``v`` to *every* query instance) only
needs to be verified at the vertices of the convex hull of the query: the
condition ``delta(u, q) <= delta(v, q)`` is equivalent to a linear inequality
in ``q`` (the bisector half-space), so if it holds at the hull vertices it
holds throughout the hull, hence for every query instance.  Replacing ``Q``
with ``CH(Q)`` is the paper's geometric filter (the ``G`` in the Appendix C
filter ablation).  A second geometric rule needs the converse test: an
instance of ``V`` *inside* ``CH(Q)`` can never be peer-dominated.

The reference implementation of the paper uses ``qhull``; we implement the
machinery from scratch:

* exact Andrew monotone chain and point-in-convex-polygon tests in 2-d;
* for ``d >= 3`` an *extreme point filter* based on scale-normalised
  Frank-Wolfe minimisation over the simplex.  The filter is conservative by
  construction: a point is only dropped (or reported inside) when the
  optimiser certifies membership to tight tolerance, so inconclusive answers
  merely keep extra hull points / skip an optional pruning rule — never
  affecting correctness.
"""

from __future__ import annotations

import numpy as np


def _monotone_chain_indices(points: np.ndarray) -> list[int]:
    """Indices of hull vertices of 2-d ``points`` in counter-clockwise order."""
    order = sorted(range(len(points)), key=lambda i: (points[i][0], points[i][1]))

    def cross(o: int, a: int, b: int) -> float:
        oa = points[a] - points[o]
        ob = points[b] - points[o]
        return float(oa[0] * ob[1] - oa[1] * ob[0])

    lower: list[int] = []
    for i in order:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], i) <= 0:
            lower.pop()
        lower.append(i)
    upper: list[int] = []
    for i in reversed(order):
        while len(upper) >= 2 and cross(upper[-2], upper[-1], i) <= 0:
            upper.pop()
        upper.append(i)
    return lower[:-1] + upper[:-1]


def _frank_wolfe_in_hull(
    point: np.ndarray, others: np.ndarray, iters: int = 500, tol: float = 1e-7
) -> bool:
    """Certify (conservatively) that ``point`` is in ``conv(others)``.

    Frank-Wolfe with exact line search on ``||A w - point||^2`` over the
    simplex, after shifting/scaling coordinates to a unit-diameter frame so
    the tolerance is scale free.  Used only where a false *negative* is safe
    (keeping an interior point as a hull vertex, skipping an optional
    pruning rule).
    """
    others = np.atleast_2d(np.asarray(others, dtype=float))
    n = others.shape[0]
    if n == 0:
        return False
    target = np.asarray(point, dtype=float)
    scale = max(float(np.abs(others - target).max()), 1e-12)
    others = (others - target) / scale
    target = np.zeros_like(target)

    w = np.full(n, 1.0 / n)
    current = others.T @ w
    for _ in range(iters):
        residual = current  # target is the origin in the shifted frame
        if float(np.linalg.norm(residual)) <= tol:
            return True
        grad = others @ residual
        j = int(np.argmin(grad))
        direction = others[j] - current
        denom = float(np.dot(direction, direction))
        if denom <= 1e-18:
            break
        # Exact line search for the quadratic objective, clamped to [0, 1].
        step = float(np.clip(-np.dot(residual, direction) / denom, 0.0, 1.0))
        if step <= 0.0:
            break  # no descent direction inside the simplex
        w *= 1.0 - step
        w[j] += step
        current = current + step * direction
    return float(np.linalg.norm(current)) <= tol


def _point_in_polygon(point: np.ndarray, hull: np.ndarray) -> bool:
    """Exact membership in a convex polygon given CCW-ordered vertices."""
    n = hull.shape[0]
    if n == 1:
        return bool(np.allclose(point, hull[0], atol=1e-9))
    if n == 2:
        a, b = hull[0], hull[1]
        ab = b - a
        ap = point - a
        cross = ab[0] * ap[1] - ab[1] * ap[0]
        scale = max(float(np.abs(ab).max()), 1e-12)
        if abs(cross) > 1e-9 * scale * scale:
            return False
        t = float(np.dot(ap, ab) / max(np.dot(ab, ab), 1e-18))
        return -1e-9 <= t <= 1 + 1e-9
    for i in range(n):
        a, b = hull[i], hull[(i + 1) % n]
        ab = b - a
        ap = point - a
        if ab[0] * ap[1] - ab[1] * ap[0] < -1e-9:
            return False
    return True


def point_in_hull(point: np.ndarray, points: np.ndarray) -> bool:
    """Whether ``point`` lies in the convex hull of ``points``.

    Exact in one and two dimensions; conservative (may answer False for
    borderline interior points) in higher dimensions.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    p = np.asarray(point, dtype=float)
    d = pts.shape[1]
    if d == 1:
        return bool(pts[:, 0].min() - 1e-9 <= p[0] <= pts[:, 0].max() + 1e-9)
    if d == 2:
        hull = pts[convex_hull_indices(pts)]
        return _point_in_polygon(p, hull)
    return _frank_wolfe_in_hull(p, pts)


def convex_hull_indices(points: np.ndarray) -> list[int]:
    """Indices of the convex hull vertices of ``points``.

    In one dimension only the min and max points are returned; in two
    dimensions the exact monotone chain is used; in higher dimensions an
    extreme point filter drops points that provably lie inside the hull of
    the rest.  Duplicate points are collapsed first.

    Returns:
        Indices into ``points``; every point of ``points`` is a convex
        combination of the returned vertices.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n, d = pts.shape
    if n == 0:
        return []
    # Collapse duplicates, keeping the first occurrence of each location.
    _, first = np.unique(pts.round(decimals=12), axis=0, return_index=True)
    unique_idx = sorted(int(i) for i in first)
    upts = pts[unique_idx]
    if len(unique_idx) <= 2:
        return unique_idx
    if d == 1:
        lo = int(np.argmin(upts[:, 0]))
        hi = int(np.argmax(upts[:, 0]))
        return sorted({unique_idx[lo], unique_idx[hi]})
    if d == 2:
        hull_local = _monotone_chain_indices(upts)
        return [unique_idx[i] for i in hull_local]
    keep: list[int] = []
    for i in range(len(unique_idx)):
        rest = np.delete(upts, i, axis=0)
        if not _frank_wolfe_in_hull(upts[i], rest):
            keep.append(unique_idx[i])
    # A degenerate filter outcome (everything judged interior) falls back to
    # keeping all points, which is always correct.
    return keep if keep else unique_idx


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Convex hull vertices of ``points`` as an array of shape ``(k, d)``."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    idx = convex_hull_indices(pts)
    return pts[idx]
