"""Definition-level reference implementations (testing oracles).

Every optimised dominance check and the full Algorithm 1 search are verified
against the plain-definition implementations in this module.  These use no
index, no filters, no convex hulls — just the formulas from Section 2 — so
agreement is strong evidence the optimised paths are correct.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.flow.maxflow import FlowNetwork, max_flow
from repro.geometry.distance import pairwise_distances
from repro.objects.uncertain import UncertainObject
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_equal, stochastic_leq

_TOL = 1e-9

DominanceFn = Callable[[UncertainObject, UncertainObject, UncertainObject], bool]


def brute_f_dominates(
    u: UncertainObject, v: UncertainObject, query: UncertainObject
) -> bool:
    """F-SD by direct triple comparison over all instances.

    Includes the ``U_Q != V_Q`` guard for consistency with
    :mod:`repro.core.fsd` (see the module docstring there).
    """
    du = pairwise_distances(u.points, query.points)  # (m_u, k)
    dv = pairwise_distances(v.points, query.points)  # (m_v, k)
    if np.any(du.max(axis=0) > dv.min(axis=0) + _TOL):
        return False
    return not stochastic_equal(
        u.distance_distribution(query), v.distance_distribution(query)
    )


def brute_s_dominates(
    u: UncertainObject, v: UncertainObject, query: UncertainObject
) -> bool:
    """S-SD straight from Definition 2."""
    u_q = u.distance_distribution(query)
    v_q = v.distance_distribution(query)
    return stochastic_leq(u_q, v_q) and not stochastic_equal(u_q, v_q)


def brute_ss_dominates(
    u: UncertainObject, v: UncertainObject, query: UncertainObject
) -> bool:
    """SS-SD straight from Definition 3."""
    for q in query.points:
        u_q = u.distance_distribution_to_point(q)
        v_q = v.distance_distribution_to_point(q)
        if not stochastic_leq(u_q, v_q):
            return False
    return not stochastic_equal(
        u.distance_distribution(query), v.distance_distribution(query)
    )


def brute_p_dominates(
    u: UncertainObject, v: UncertainObject, query: UncertainObject
) -> bool:
    """P-SD via the Theorem 12 reduction with no filters and no hulls.

    The ``<=_Q`` tests run against *all* query instances (not the hull), and
    the max flow is computed on the raw network — an independent path from
    :func:`repro.core.psd.p_dominates`.
    """
    du = pairwise_distances(u.points, query.points)
    dv = pairwise_distances(v.points, query.points)
    adj = np.all(du[:, None, :] <= dv[None, :, :] + _TOL, axis=2)
    m, n = len(u), len(v)
    net = FlowNetwork(m + n + 2)
    source, sink = 0, m + n + 1
    for i in range(m):
        net.add_edge(source, 1 + i, float(u.probs[i]))
    for j in range(n):
        net.add_edge(1 + m + j, sink, float(v.probs[j]))
    for i in range(m):
        for j in range(n):
            if adj[i, j]:
                net.add_edge(1 + i, 1 + m + j, 2.0)
    if max_flow(net, source, sink) < 1.0 - 1e-6:
        return False
    return not stochastic_equal(
        u.distance_distribution(query), v.distance_distribution(query)
    )


def brute_force_nnc(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    dominates: DominanceFn,
) -> list[UncertainObject]:
    """NNC by Definition 6: objects dominated by no other object.

    Quadratic in the number of objects; the gold standard the Algorithm 1
    implementation is tested against.
    """
    out: list[UncertainObject] = []
    for v in objects:
        if not any(u is not v and dominates(u, v, query) for u in objects):
            out.append(v)
    return out


def distance_distribution_bruteforce(
    obj: UncertainObject, query: UncertainObject
) -> DiscreteDistribution:
    """``U_Q`` assembled pair by pair in pure Python (Example 1 style)."""
    pairs = []
    for q, pq in zip(query.points, query.probs):
        for x, px in zip(obj.points, obj.probs):
            pairs.append((float(np.linalg.norm(q - x)), float(pq) * float(px)))
    return DiscreteDistribution.from_pairs(pairs)
