"""NN candidates computation — Algorithm 1 of the paper.

Objects (their MBRs) live in a global R-tree.  A min-heap visits entries and
objects in non-decreasing minimal distance to the query; every surviving
object joins the candidate set, and accepted candidates prune later entries
through the MBR-level F-SD validation rule (Theorem 4).

Two exactness refinements over the paper's sketch:

* objects are *re-keyed by their exact* ``min(V_Q)`` before processing (the
  MBR mindist is only a lower bound), so the "no later object can dominate
  an earlier one" argument — which rests on the statistic pruning rule
  ``min(U_Q) <= min(V_Q)`` — holds exactly;
* objects whose exact minimal distances tie are cross-checked in both
  directions before being reported, so the output equals the brute-force
  NNC even under distance ties.

The search is *progressive* (Figure 14): :meth:`NNCSearch.stream` yields
candidates as soon as they are certain, long before the traversal finishes.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.core.operators import OperatorKind, _BaseOperator, make_operator
from repro.geometry.mbr import mbr_dominates
from repro.index.rtree import RTree, RTreeNode
from repro.objects.uncertain import UncertainObject

_TIE_TOL = 1e-9


@dataclass
class NNCResult:
    """Outcome of an NNC search.

    Attributes:
        candidates: the NN candidate objects in acceptance order.
        elapsed: total wall-clock seconds.
        yield_times: seconds (from search start) at which each candidate
            became certain — the progressive profile of Figure 14(a).
        counters: instrumentation collected during the search.
    """

    candidates: list[UncertainObject] = field(default_factory=list)
    elapsed: float = 0.0
    yield_times: list[float] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)

    def __len__(self) -> int:
        return len(self.candidates)

    def oids(self) -> list:
        """Candidate object ids in acceptance order."""
        return [c.oid for c in self.candidates]


class NNCSearch:
    """Algorithm 1 bound to an object collection.

    Args:
        objects: the dataset; a global R-tree over MBRs is built once and
            reused across queries and operators.
        global_fanout: fan-out of the global R-tree (paper: page-sized; any
            moderate value preserves the algorithmics).
    """

    def __init__(
        self, objects: Sequence[UncertainObject], global_fanout: int = 16
    ) -> None:
        self.objects = list(objects)
        entries = [(obj.mbr, obj) for obj in self.objects]
        self.tree = RTree.bulk_load(entries, max_entries=global_fanout)

    def add_object(self, obj: UncertainObject) -> None:
        """Insert a new object into the collection and the global R-tree.

        Subsequent searches see the object immediately; existing query
        contexts remain valid (they cache per-object artefacts only).
        """
        self.objects.append(obj)
        self.tree.insert(obj.mbr, obj)

    def remove_object(self, obj: UncertainObject) -> bool:
        """Remove an object (by identity) from the collection and index.

        Returns:
            True when the object was present and removed.
        """
        if not self.tree.delete(obj.mbr, obj):
            return False
        self.objects = [o for o in self.objects if o is not obj]
        return True

    # ------------------------------------------------------------------ #

    def run(
        self,
        query: UncertainObject,
        operator: _BaseOperator | OperatorKind | str,
        *,
        k: int = 1,
        ctx: QueryContext | None = None,
    ) -> NNCResult:
        """Compute the full NN candidate set (batch form of Algorithm 1).

        With ``k > 1`` this computes the *k-NN candidates* (the k-skyband
        under the operator): objects dominated by fewer than ``k`` others —
        the natural candidate set for top-k NN queries.
        """
        result = NNCResult()
        start = time.perf_counter()
        for candidate, when in self._stream_timed(query, operator, k=k, ctx=ctx):
            result.candidates.append(candidate)
            result.yield_times.append(when)
        result.elapsed = time.perf_counter() - start
        result.counters = self._last_counters
        return result

    def stream(
        self,
        query: UncertainObject,
        operator: _BaseOperator | OperatorKind | str,
        *,
        k: int = 1,
        ctx: QueryContext | None = None,
    ) -> Iterator[UncertainObject]:
        """Yield (k-)NN candidates progressively (Figure 14)."""
        for candidate, _ in self._stream_timed(query, operator, k=k, ctx=ctx):
            yield candidate

    # ------------------------------------------------------------------ #

    def _stream_timed(
        self,
        query: UncertainObject,
        operator: _BaseOperator | OperatorKind | str,
        *,
        k: int = 1,
        ctx: QueryContext | None = None,
    ) -> Iterator[tuple[UncertainObject, float]]:
        if k < 1:
            raise ValueError("k must be at least 1")
        if not isinstance(operator, _BaseOperator):
            operator = make_operator(operator)
        if ctx is None:
            ctx = QueryContext(query)
        self._last_counters = ctx.counters
        start = time.perf_counter()
        q_mbr = query.mbr
        norm = ctx.norm  # metric-aware MBR distances (None = Euclidean)
        counter = itertools.count()
        # Heap items: (key, tiebreak, kind, payload)
        #   kind 0 = R-tree node, 1 = unrefined object, 2 = refined object.
        heap: list[tuple[float, int, int, object]] = []
        root = self.tree.root
        if root.mbr is not None:
            heapq.heappush(
                heap, (root.mbr.mindist_mbr(q_mbr, norm), next(counter), 0, root)
            )
        # Accepted candidates: [obj, exact dmin, dominator count].  The
        # count can only grow while the candidate is pending (distance
        # ties); objects with count >= k are evicted.
        accepted: list[list] = []
        pending: list[list] = []  # not yet yielded (same record objects)
        while heap:
            key, _, kind, item = heapq.heappop(heap)
            # Flush pending candidates that can no longer gain dominators:
            # every unseen object has exact dmin >= key (keys are lower
            # bounds), so strictly-smaller pending dmins are final.
            for record in list(pending):
                if record[1] < key - _TIE_TOL:
                    pending.remove(record)
                    yield record[0], time.perf_counter() - start
            if kind == 0:
                node: RTreeNode = item  # type: ignore[assignment]
                ctx.counters.nodes_visited += 1
                if self._entry_pruned(node.mbr, q_mbr, accepted, ctx, k):
                    continue
                if node.is_leaf:
                    for mbr, obj in node.entries:
                        heapq.heappush(
                            heap,
                            (mbr.mindist_mbr(q_mbr, norm), next(counter), 1, obj),
                        )
                else:
                    for child in node.children:
                        heapq.heappush(
                            heap,
                            (
                                child.mbr.mindist_mbr(q_mbr, norm),  # type: ignore[union-attr]
                                next(counter),
                                0,
                                child,
                            ),
                        )
                continue
            obj: UncertainObject = item  # type: ignore[assignment]
            if kind == 1:
                # Lazy refinement: re-key by the exact minimal distance.
                exact = obj.min_distance(query, ctx.metric)
                heapq.heappush(heap, (exact, next(counter), 2, obj))
                continue
            ctx.counters.objects_visited += 1
            if self._entry_pruned(obj.mbr, q_mbr, accepted, ctx, k):
                continue
            dominators = 0
            for record in accepted:
                if operator.dominates(record[0], obj, ctx):
                    dominators += 1
                    if dominators >= k:
                        break
            if dominators >= k:
                ctx.counters.bump("objects_dominated")
                continue
            # Tie correction: the new candidate may dominate accepted
            # candidates with (numerically) equal exact minimal distance
            # that have not been yielded yet.
            for record in list(pending):
                if abs(record[1] - key) <= _TIE_TOL and operator.dominates(
                    obj, record[0], ctx
                ):
                    record[2] += 1
                    if record[2] >= k:
                        pending.remove(record)
                        accepted.remove(record)
            record = [obj, key, dominators]
            accepted.append(record)
            pending.append(record)
        for record in pending:
            yield record[0], time.perf_counter() - start

    @staticmethod
    def _entry_pruned(
        mbr, q_mbr, accepted: list[list], ctx: QueryContext, k: int
    ) -> bool:
        """Cover-based entry pruning: >= k accepted MBRs F-SD the entry."""
        if not ctx.is_euclidean:
            return False  # the MBR dominance test is Euclidean-only
        hits = 0
        for record in accepted:
            ctx.counters.mbr_tests += 1
            if mbr_dominates(record[0].mbr, mbr, q_mbr, strict=True):
                hits += 1
                if hits >= k:
                    return True
        return False


def nn_candidates(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    operator: _BaseOperator | OperatorKind | str = OperatorKind.P_SD,
    *,
    k: int = 1,
    ctx: QueryContext | None = None,
) -> NNCResult:
    """One-shot NN candidates search (builds the index, runs Algorithm 1).

    Args:
        objects: the dataset.
        query: multi-instance query object.
        operator: dominance operator (kind, name, or configured instance).
        k: with ``k > 1``, return the k-NN candidates (k-skyband): objects
            dominated by fewer than ``k`` others.
        ctx: optional pre-built query context (to share caches / counters).

    Returns:
        The :class:`NNCResult` with candidates and instrumentation.
    """
    return NNCSearch(objects).run(query, operator, k=k, ctx=ctx)
