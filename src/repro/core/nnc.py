"""NN candidates computation — Algorithm 1 of the paper.

Objects (their MBRs) live in a global R-tree.  A min-heap visits entries and
objects in non-decreasing minimal distance to the query; every surviving
object joins the candidate set, and accepted candidates prune later entries
through the MBR-level F-SD validation rule (Theorem 4).

Two exactness refinements over the paper's sketch:

* objects are *re-keyed by their exact* ``min(V_Q)`` before processing (the
  MBR mindist is only a lower bound), so the "no later object can dominate
  an earlier one" argument — which rests on the statistic pruning rule
  ``min(U_Q) <= min(V_Q)`` — holds exactly;
* objects whose exact minimal distances tie are cross-checked in both
  directions before being reported, so the output equals the brute-force
  NNC even under distance ties.

The search is *progressive* (Figure 14): :meth:`NNCSearch.stream` yields
candidates as soon as they are certain, long before the traversal finishes.
"""

from __future__ import annotations

import contextvars
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core import kernels as K
from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.core.operators import OperatorKind, _BaseOperator, make_operator
from repro.geometry.mbr import mbr_dominates
from repro.index.rtree import RTree, RTreeNode, _collect_entries
from repro.objects.uncertain import UncertainObject
from repro.obs.metrics import query_metrics_from_counters
from repro.resilience import RECOVERABLE_FAULTS
from repro.resilience.budget import BudgetExhausted, DegradationReport
from repro.resilience.faults import NumericalFault

_TIE_TOL = 1e-9

#: ``(id(search), report)`` of the most recent search finished in this
#: thread/task.  A ContextVar (not module or instance state) so concurrent
#: server requests sharing one :class:`NNCSearch` cannot observe each
#: other's degradation reports; read through
#: :attr:`NNCSearch.last_degradation`.
_LAST_DEGRADATION: contextvars.ContextVar[tuple[int, object] | None] = (
    contextvars.ContextVar("repro_last_degradation", default=None)
)


def _fault_reason(exc: Exception) -> str:
    """Event-label for a recovered fault (degradation report vocabulary)."""
    return "non-finite" if isinstance(exc, NumericalFault) else "injected"

# Operator kinds whose own filter stack re-derives the Theorem 11 statistic
# screen, making the batch pre-screen in the search loop a pure shortcut
# (excluded records would be rejected by the operator anyway, with the same
# statistics and tolerance).  Gated on the operator's flags so ablation
# configurations keep their honest cost profile.
_SCREEN_BY_STATISTICS = frozenset({OperatorKind.S_SD})
_SCREEN_BY_COVER = frozenset({OperatorKind.SS_SD, OperatorKind.P_SD})


def _screen_applies(operator: _BaseOperator) -> bool:
    """Whether the batch statistic screen mirrors this operator's pruning."""
    if operator.kind in _SCREEN_BY_STATISTICS:
        return operator.use_statistics
    if operator.kind in _SCREEN_BY_COVER:
        return operator.use_cover_pruning
    return False


def _mbr_screen_applies(operator: _BaseOperator, ctx: QueryContext) -> bool:
    """Whether the batched strict MBR validation replaces the operators' own.

    Every operator opens with the same strict Theorem 4 test (sufficient for
    dominance under all five semantics, F-SD being the strongest); batching
    it across the accepted set is valid exactly when the operator would run
    it scalar: F+-SD always does (it *is* the test), F-SD whenever the
    metric is Euclidean, the rest gate it on their ``use_mbr_validation``
    flag too.
    """
    if operator.kind is OperatorKind.F_PLUS_SD:
        return True
    if not ctx.is_euclidean:
        return False
    if operator.kind is OperatorKind.F_SD:
        return True
    return operator.use_mbr_validation


class _AcceptedIndex:
    """Stacked arrays over the accepted candidates for the batch screens.

    ``_entry_pruned`` and the statistic screen run on every heap pop, but
    the accepted set changes only on accept/evict; the stacks are rebuilt
    lazily against a revision counter bumped at each mutation, so steady
    state pays one numpy call per pop instead of one ``np.stack`` each.
    """

    __slots__ = (
        "rev",
        "_boxes_rev",
        "_stats_rev",
        "_corner_rev",
        "los",
        "his",
        "stats",
        "corner",
    )

    def __init__(self) -> None:
        self.rev = 0
        self._boxes_rev = -1
        self._stats_rev = -1
        self._corner_rev = -1
        self.los = self.his = self.stats = self.corner = None

    def bump(self) -> None:
        """Mark the accepted set as changed."""
        self.rev += 1

    def boxes(self, accepted: list[list]) -> tuple:
        """Stacked ``(los, his)`` MBR corners of the accepted candidates."""
        if self._boxes_rev != self.rev:
            self.los = np.stack([record[0].mbr.lo for record in accepted])
            self.his = np.stack([record[0].mbr.hi for record in accepted])
            self._boxes_rev = self.rev
        return self.los, self.his

    def statistics(self, accepted: list[list], ctx: QueryContext) -> np.ndarray:
        """``(n, 3)`` matrix of the accepted candidates' (min, mean, max)."""
        if self._stats_rev != self.rev:
            self.stats = np.array(
                [ctx.statistics(record[0]) for record in accepted], dtype=float
            )
            self._stats_rev = self.rev
        return self.stats

    def corner_sq(self, accepted: list[list], q_mbr) -> np.ndarray:
        """Cached :func:`repro.geometry.mbr.mbr_corner_terms` of the boxes.

        The candidate-side half of the batched Theorem 4 test depends only
        on the accepted boxes and the (fixed) query box, so it is shared by
        every entry/object screened against the same accepted set.
        """
        if self._corner_rev != self.rev:
            los, his = self.boxes(accepted)
            self.corner = K.mbr_corner_terms(los, his, q_mbr.lo, q_mbr.hi)
            self._corner_rev = self.rev
        return self.corner


@dataclass
class NNCResult:
    """Outcome of an NNC search.

    Attributes:
        candidates: the NN candidate objects in acceptance order.
        elapsed: total wall-clock seconds.
        yield_times: seconds (from search start) at which each candidate
            became certain — the progressive profile of Figure 14(a).
        counters: instrumentation collected during the search.
        degradation: ``None`` for an exact answer; otherwise the
            :class:`repro.resilience.budget.DegradationReport` explaining why
            the candidate list is a certified *superset* of the exact NNC
            (budget exhausted, or dominance decisions lost to recovered
            faults and defaulted to conservative non-dominance).
    """

    candidates: list[UncertainObject] = field(default_factory=list)
    elapsed: float = 0.0
    yield_times: list[float] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    degradation: DegradationReport | None = None
    #: Dominators found for each candidate (same order as ``candidates``),
    #: capped at ``k``.  Exact enough for membership: a candidate's true
    #: dominator count reaches ``k`` iff this one does (the k-skyband
    #: counting equivalence) — the input to the scatter-gather refiner of
    #: :mod:`repro.serve.shard`.  Conservative (drained) accepts report 0.
    dominator_counts: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.candidates)

    @property
    def exact(self) -> bool:
        """Whether the answer is exact (no degradation occurred)."""
        return self.degradation is None

    def oids(self) -> list:
        """Candidate object ids in acceptance order."""
        return [c.oid for c in self.candidates]


class NNCSearch:
    """Algorithm 1 bound to an object collection.

    Args:
        objects: the dataset; a global R-tree over MBRs is built once and
            reused across queries and operators.
        global_fanout: fan-out of the global R-tree (paper: page-sized; any
            moderate value preserves the algorithmics).
    """

    def __init__(
        self, objects: Sequence[UncertainObject], global_fanout: int = 16
    ) -> None:
        self.objects = list(objects)
        self._fanout = global_fanout
        entries = [(obj.mbr, obj) for obj in self.objects]
        self.tree = RTree.bulk_load(entries, max_entries=global_fanout)
        #: Deletion mask (tombstones): ids of objects logically removed but
        #: still present in the R-tree.  Masked objects are skipped by every
        #: search path; :meth:`compact` rebuilds the tree without them.
        #: Cheap O(1) deletes for the dynamic-update path of ``repro.serve``
        #: (a Guttman delete cascades reinserts; a mask does not).
        self._masked: dict[int, UncertainObject] = {}

    @property
    def last_degradation(self) -> DegradationReport | None:
        """Degradation report of this thread/task's most recent search here.

        ``None`` = exact.  The escape hatch for :meth:`stream` consumers, who
        have no :class:`NNCResult` to read the report from.  Backed by a
        :class:`contextvars.ContextVar`, not instance state: concurrent
        searches on one shared :class:`NNCSearch` (the serving layer runs
        many requests against one index) each observe only their own report.
        Prefer ``result.degradation`` / ``ctx.degradation`` where available.
        """
        entry = _LAST_DEGRADATION.get()
        if entry is None or entry[0] != id(self):
            return None
        return entry[1]

    def add_object(self, obj: UncertainObject) -> None:
        """Insert a new object into the collection and the global R-tree.

        Subsequent searches see the object immediately; existing query
        contexts remain valid (they cache per-object artefacts only).
        """
        self.objects.append(obj)
        self.tree.insert(obj.mbr, obj)

    def remove_object(self, obj: UncertainObject) -> bool:
        """Remove an object (by identity) from the collection and index.

        Returns:
            True when the object was present and removed.
        """
        if not self.tree.delete(obj.mbr, obj):
            return False
        self.objects = [o for o in self.objects if o is not obj]
        self._masked.pop(id(obj), None)
        return True

    def mask_object(self, obj: UncertainObject) -> bool:
        """Logically delete ``obj`` without touching the R-tree (tombstone).

        O(1): the entry stays in the index but every search skips it.  Call
        :meth:`compact` periodically to rebuild the tree without tombstones
        (``repro.serve.updates`` does so once the masked fraction passes its
        rebuild threshold).

        Returns:
            True when the object belongs to this collection and was not
            already masked.
        """
        key = id(obj)
        if key in self._masked or not any(o is obj for o in self.objects):
            return False
        self._masked[key] = obj
        return True

    @property
    def masked_count(self) -> int:
        """Number of tombstoned (masked, not yet compacted) objects."""
        return len(self._masked)

    def live_objects(self) -> list[UncertainObject]:
        """Objects not masked out (insertion order)."""
        if not self._masked:
            return list(self.objects)
        return [o for o in self.objects if id(o) not in self._masked]

    def compact(self) -> int:
        """Rebuild the R-tree without tombstoned objects.

        Returns the number of tombstones removed.
        """
        dropped = len(self._masked)
        if dropped:
            self.objects = self.live_objects()
            self._masked.clear()
            entries = [(obj.mbr, obj) for obj in self.objects]
            self.tree = RTree.bulk_load(entries, max_entries=self._fanout)
        return dropped

    # ------------------------------------------------------------------ #

    def run(
        self,
        query: UncertainObject,
        operator: _BaseOperator | OperatorKind | str,
        *,
        k: int = 1,
        ctx: QueryContext | None = None,
        seeds: Sequence[UncertainObject] = (),
    ) -> NNCResult:
        """Compute the full NN candidate set (batch form of Algorithm 1).

        With ``k > 1`` this computes the *k-NN candidates* (the k-skyband
        under the operator): objects dominated by fewer than ``k`` others —
        the natural candidate set for top-k NN queries.

        ``seeds`` are known objects from *outside* this collection (e.g.
        survivors of other shards in a scatter-gather search) that join the
        accepted set as dominators/pruners but are never reported as
        candidates.  Seeding is conservative: a seed can only add genuine
        dominance wins, so the output restricted to this collection stays a
        superset of the global answer (see ``repro.serve.shard``).

        With a budget or fault plan on ``ctx``, the result may be a flagged
        superset — check ``result.degradation`` (``None`` = exact).
        """
        result = NNCResult()
        start = time.perf_counter()
        if ctx is None:
            ctx = QueryContext(query)
        for candidate, when, dominators in self._stream_timed(
            query, operator, k=k, ctx=ctx, seeds=seeds
        ):
            result.candidates.append(candidate)
            result.yield_times.append(when)
            result.dominator_counts.append(dominators)
        result.elapsed = time.perf_counter() - start
        result.counters = self._last_counters
        result.degradation = ctx.degradation
        return result

    def stream(
        self,
        query: UncertainObject,
        operator: _BaseOperator | OperatorKind | str,
        *,
        k: int = 1,
        ctx: QueryContext | None = None,
        seeds: Sequence[UncertainObject] = (),
    ) -> Iterator[UncertainObject]:
        """Yield (k-)NN candidates progressively (Figure 14)."""
        for candidate, _, _ in self._stream_timed(
            query, operator, k=k, ctx=ctx, seeds=seeds
        ):
            yield candidate

    # ------------------------------------------------------------------ #

    def _stream_timed(
        self,
        query: UncertainObject,
        operator: _BaseOperator | OperatorKind | str,
        *,
        k: int = 1,
        ctx: QueryContext | None = None,
        seeds: Sequence[UncertainObject] = (),
    ) -> Iterator[tuple[UncertainObject, float]]:
        if k < 1:
            raise ValueError("k must be at least 1")
        if not isinstance(operator, _BaseOperator):
            operator = make_operator(operator)
        if ctx is None:
            ctx = QueryContext(query)
        self._last_counters = ctx.counters
        ctx.degradation = None
        _LAST_DEGRADATION.set((id(self), None))
        tracer = ctx.tracer
        traced = tracer.enabled
        metrics = ctx.metrics
        budget = ctx.budget
        faults = ctx.faults
        base_counts = ctx.counters.snapshot() if metrics is not None else None
        base_unresolved = ctx.counters.extra.get("unresolved_checks", 0)
        base_events = len(ctx.unresolved_events)
        # Degradation state: `aborted` is the BudgetExhausted that stopped
        # the traversal (or a (site, reason) pair for an unrecoverable-site
        # fault); `carry` holds the heap item popped when it struck, so the
        # conservative drain loses nothing.
        aborted: BudgetExhausted | tuple | None = None
        carry: tuple | None = None
        conservative = 0
        yielded = 0
        start = time.perf_counter()
        root_span = None
        if traced:
            # The generator may be abandoned mid-stream, so the root span is
            # entered/exited explicitly under try/finally instead of `with`.
            root_span = tracer.span(
                "search", counters=ctx.counters, op=operator.name, k=k
            )
            root_span.__enter__()
        try:
            q_mbr = query.mbr
            norm = ctx.norm  # metric-aware MBR distances (None = Euclidean)
            # Batch node expansion needs a named Minkowski metric (callable
            # metrics have no batch norm; non-Euclidean callables cannot even
            # build a context, so this only excludes an explicit `euclidean`).
            batch = ctx.kernels and isinstance(ctx.metric, str)
            counter = itertools.count()
            # Heap items: (key, tiebreak, kind, payload)
            #   kind 0 = R-tree node, 1 = unrefined object, 2 = refined object.
            heap: list[tuple[float, int, int, object]] = []
            root = self.tree.root
            if root.mbr is not None:
                heapq.heappush(
                    heap, (root.mbr.mindist_mbr(q_mbr, norm), next(counter), 0, root)
                )
            # Accepted candidates: [obj, exact dmin, dominator count].  The
            # count can only grow while the candidate is pending (distance
            # ties); objects with count >= k are evicted.
            accepted: list[list] = []
            pending: list[list] = []  # not yet yielded (same record objects)
            acc_idx = _AcceptedIndex()
            if seeds:
                # Foreign pre-accepted candidates (scatter-gather sharding):
                # they prune entries and count as dominators exactly like
                # locally accepted candidates, but never enter `pending`, so
                # they are not reported.  Keyed by exact dmin so the ordered
                # accept-tally accounting stays meaningful.
                seed_records = sorted(
                    ([s, ctx.min_distance(s), 0] for s in seeds),
                    key=lambda rec: rec[1],
                )
                accepted.extend(seed_records)
                acc_idx.bump()
            if budget is not None:
                budget.arm()
            if faults is not None:
                try:
                    faults.fire("search")
                except RECOVERABLE_FAULTS as exc:
                    # Nothing has been decided yet: degrade to the trivial
                    # superset (every object is a candidate) via the drain.
                    ctx.note_unresolved("search", _fault_reason(exc))
                    aborted = ("fault", "search")
            while heap and aborted is None:
                key, _, kind, item = heapq.heappop(heap)
                # Flush pending candidates that can no longer gain dominators:
                # every unseen object has exact dmin >= key (keys are lower
                # bounds), so strictly-smaller pending dmins are final.
                for record in list(pending):
                    if record[1] < key - _TIE_TOL:
                        pending.remove(record)
                        yielded += 1
                        yield record[0], time.perf_counter() - start, record[2]
                try:
                    if kind == 0:
                        node: RTreeNode = item  # type: ignore[assignment]
                        ctx.counters.nodes_visited += 1
                        if budget is not None:
                            budget.checkpoint("rtree-descent")
                        try:
                            if faults is not None:
                                faults.fire("entry-prune")
                            if traced:
                                with tracer.span(
                                    "entry-prune", counters=ctx.counters, target="node"
                                ) as span:
                                    pruned = self._entry_pruned(
                                        node.mbr, q_mbr, accepted, acc_idx, ctx, k
                                    )
                                    span.labels["pruned"] = pruned
                            else:
                                pruned = self._entry_pruned(
                                    node.mbr, q_mbr, accepted, acc_idx, ctx, k
                                )
                        except RECOVERABLE_FAULTS as exc:
                            # An unpruned node only costs work, never
                            # correctness: descend as if the test failed.
                            ctx.note_unresolved("entry-prune", _fault_reason(exc))
                            pruned = False
                        if pruned:
                            continue
                        try:
                            if faults is not None:
                                faults.fire("rtree-descent")
                            if traced:
                                with tracer.span(
                                    "rtree-descent",
                                    counters=ctx.counters,
                                    leaf=node.is_leaf,
                                ) as span:
                                    span.labels["members"] = self._expand_node(
                                        node, heap, counter, q_mbr, norm, batch, ctx
                                    )
                            else:
                                self._expand_node(
                                    node, heap, counter, q_mbr, norm, batch, ctx
                                )
                        except RECOVERABLE_FAULTS as exc:
                            # Conservative subtree recovery: enqueue every
                            # object under the node keyed by the node's own
                            # key — a valid lower bound for all of them.
                            # (`_expand_node` pushes nothing before its batch
                            # keying succeeds, so no member is half-pushed.)
                            ctx.note_unresolved("rtree-descent", _fault_reason(exc))
                            for _, payload in _collect_entries(node):
                                heapq.heappush(
                                    heap, (key, next(counter), 1, payload)
                                )
                        continue
                    obj: UncertainObject = item  # type: ignore[assignment]
                    if self._masked and id(obj) in self._masked:
                        continue  # tombstoned (see mask_object)
                    if kind == 1:
                        # Lazy refinement: re-key by the exact minimal distance
                        # (shares the context's cached distance matrix).
                        try:
                            exact_key = ctx.min_distance(obj)
                        except RECOVERABLE_FAULTS as exc:
                            # Keep the MBR-mindist key: a lower bound, so the
                            # object is only visited (and flushed) earlier —
                            # never dropped.
                            ctx.note_unresolved(
                                "distance-matrix", _fault_reason(exc)
                            )
                            exact_key = key
                        heapq.heappush(heap, (exact_key, next(counter), 2, obj))
                        continue
                    ctx.counters.objects_visited += 1
                    if traced:
                        with tracer.span(
                            "dominance-check",
                            counters=ctx.counters,
                            oid=obj.oid,
                            op=operator.name,
                        ) as span:
                            dominators = self._dominator_count(
                                obj, operator, ctx, accepted, acc_idx, q_mbr, k
                            )
                            span.labels["dominators"] = dominators
                    else:
                        dominators = self._dominator_count(
                            obj, operator, ctx, accepted, acc_idx, q_mbr, k
                        )
                    if dominators is None:
                        continue  # cover-based entry pruning dropped the object
                    if dominators >= k:
                        ctx.counters.bump("objects_dominated")
                        continue
                    # Tie correction: the new candidate may dominate accepted
                    # candidates with (numerically) equal exact minimal distance
                    # that have not been yielded yet.
                    for record in list(pending):
                        if abs(record[1] - key) <= _TIE_TOL:
                            try:
                                evicts = operator.dominates(obj, record[0], ctx)
                            except RECOVERABLE_FAULTS as exc:
                                # Skipping an eviction keeps a candidate:
                                # superset-safe.
                                ctx.note_unresolved(
                                    "dominance-check", _fault_reason(exc)
                                )
                                evicts = False
                            if evicts:
                                record[2] += 1
                                if record[2] >= k:
                                    pending.remove(record)
                                    accepted.remove(record)
                                    acc_idx.bump()
                    record = [obj, key, dominators]
                    accepted.append(record)
                    acc_idx.bump()
                    pending.append(record)
                except BudgetExhausted as exc:
                    aborted = exc
                    carry = (kind, item)
                    break
            for record in pending:
                yielded += 1
                yield record[0], time.perf_counter() - start, record[2]
            if aborted is not None:
                # Conservative drain: the containment chain certifies that
                # treating every unresolved dominance check as "not
                # dominated" yields a superset of the exact NNC, so every
                # object still on (or under) the frontier is emitted as a
                # candidate.  Pruning/eviction so far acted only on genuine
                # dominance wins, which brute force honors too — nothing
                # already dropped could have been in the exact answer.
                stash: list[tuple[int, object]] = []
                if carry is not None:
                    stash.append(carry)
                stash.extend((kind_, item_) for _, _, kind_, item_ in heap)
                seen = {id(rec[0]) for rec in accepted}
                for kind_, item_ in stash:
                    if kind_ == 0:
                        members = [p for _, p in _collect_entries(item_)]
                    else:
                        members = [item_]
                    for member in members:
                        if id(member) in seen or id(member) in self._masked:
                            continue
                        seen.add(id(member))
                        conservative += 1
                        yielded += 1
                        yield member, time.perf_counter() - start, 0
        finally:
            unresolved = (
                ctx.counters.extra.get("unresolved_checks", 0) - base_unresolved
            )
            report = None
            if aborted is not None or unresolved > 0:
                events = list(ctx.unresolved_events[base_events:])
                if isinstance(aborted, BudgetExhausted):
                    reason, site, phase = aborted.reason, aborted.site, "traversal"
                elif aborted is not None:
                    reason, site = aborted
                    phase = "traversal"
                else:
                    # Traversal finished; individual checks were unresolved.
                    site, first_reason = events[0]
                    reason = (
                        first_reason
                        if first_reason == "flow_augmentations"
                        else "fault"
                    )
                    phase = "completed"
                if conservative:
                    ctx.counters.bump("conservative_accepts", conservative)
                report = DegradationReport(
                    reason=reason,
                    site=site,
                    phase=phase,
                    unresolved_checks=unresolved,
                    conservative_accepts=conservative,
                    elapsed_ms=(time.perf_counter() - start) * 1e3,
                    budget=budget.limits() if budget is not None else None,
                    spent=budget.spent() if budget is not None else {},
                    events=events,
                )
            ctx.degradation = report
            _LAST_DEGRADATION.set((id(self), report))
            if root_span is not None:
                root_span.__exit__(None, None, None)
            if metrics is not None:
                snap = ctx.counters.snapshot()
                deltas = {
                    name: value - base_counts.get(name, 0)
                    for name, value in snap.items()
                    if value != base_counts.get(name, 0)
                }
                query_metrics_from_counters(
                    metrics,
                    deltas,
                    operator=operator.name,
                    elapsed=time.perf_counter() - start,
                    candidates=yielded,
                )
                if report is not None:
                    metrics.inc(
                        "repro_degraded_queries_total",
                        1,
                        {"operator": operator.name, "reason": report.reason},
                    )

    @staticmethod
    def _expand_node(
        node: RTreeNode, heap: list, counter, q_mbr, norm, batch: bool, ctx
    ) -> int:
        """Key a node's members and push them on the search heap.

        Returns the number of members pushed (a span label when tracing).
        """
        members = node.entries if node.is_leaf else node.children
        child_kind = 1 if node.is_leaf else 0
        if batch and members:
            # One broadcast keys the whole node's members at once.
            los, his = node.packed()
            dists = K.children_mindist_box(
                los, his, q_mbr.lo, q_mbr.hi, ctx.metric, counters=ctx.counters
            ).tolist()
        elif node.is_leaf:
            dists = [mbr.mindist_mbr(q_mbr, norm) for mbr, _ in node.entries]
        else:
            dists = [
                child.mbr.mindist_mbr(q_mbr, norm)  # type: ignore[union-attr]
                for child in node.children
            ]
        for dist, member in zip(dists, members):
            payload = member[1] if node.is_leaf else member
            heapq.heappush(heap, (dist, next(counter), child_kind, payload))
        return len(members)

    def _dominator_count(
        self,
        obj: UncertainObject,
        operator: _BaseOperator,
        ctx: QueryContext,
        accepted: list[list],
        acc_idx: _AcceptedIndex,
        q_mbr,
        k: int,
    ) -> int | None:
        """Count dominators of ``obj`` among the accepted records.

        Returns None when cover-based entry pruning drops the object outright
        (>= k accepted MBRs strictly F-SD-dominate its box), else the number
        of dominators found before the early exit at ``k``.

        The kernel path keeps **scalar-equivalent counter accounting**: the
        batch screens decide each pair exactly as the scalar operator calls
        would, so ``dominance_checks``, ``mbr_tests`` and the prune/validate
        tallies are incremented pair by pair, in visit order, with the same
        early exit — a ``kernels=True`` run reports the same filter
        effectiveness totals as the ``kernels=False`` reference
        (``tests/test_counters_parity.py``).
        """
        counters = ctx.counters
        resilient = ctx.resilient
        screen = None
        definite = None
        if ctx.kernels and accepted:
            try:
                mask = None
                if ctx.is_euclidean or operator.kind is OperatorKind.F_PLUS_SD:
                    # One strict Theorem 4 mask serves both the cover-based
                    # entry pruning and the per-record validation screen.
                    u_los, u_his = acc_idx.boxes(accepted)
                    mask = K.mbr_dominance_mask(
                        u_los,
                        u_his,
                        obj.mbr,
                        q_mbr,
                        strict=True,
                        u_max_sq=acc_idx.corner_sq(accepted, q_mbr),
                        counters=counters,
                    )
                if ctx.is_euclidean and mask is not None:
                    # Scalar-equivalent cover-prune tally: the scalar loop tests
                    # record boxes in order and stops at the k-th hit.
                    hits = np.nonzero(mask)[0]
                    if hits.size >= k:
                        counters.mbr_tests += int(hits[k - 1]) + 1
                        return None  # same drop as _entry_pruned on the object box
                    counters.mbr_tests += len(accepted)
                if _mbr_screen_applies(operator, ctx):
                    # Batch Theorem 4 validation: records whose boxes strictly
                    # dominate the object's are certain dominators (their
                    # operator call would return True immediately).
                    definite = mask
                if _screen_applies(operator):
                    # Batch Theorem 11 screen: records whose (min, mean, max)
                    # vectors already violate the necessary ordering cannot
                    # dominate, so their operator calls are skipped wholesale.
                    u_stats = acc_idx.statistics(accepted, ctx)
                    v_stats = np.asarray(ctx.statistics(obj), dtype=float)
                    screen = K.statistic_prune(u_stats, v_stats, counters=counters)
            except RECOVERABLE_FAULTS as exc:
                # Screens are shortcuts; without them every pair just runs
                # its full scalar check below.
                ctx.note_unresolved("dominance-check", _fault_reason(exc))
                screen = definite = None
        elif self._entry_pruned(obj.mbr, q_mbr, accepted, acc_idx, ctx, k):
            return None
        mbr_checked = definite is not None
        op_kind = operator.kind
        is_psd = op_kind is OperatorKind.P_SD
        dominators = 0
        for idx, record in enumerate(accepted):
            if mbr_checked and definite[idx]:
                # Scalar equivalent: the operator's own strict Theorem 4
                # test succeeds immediately for this pair.
                counters.mbr_tests += 1
                if op_kind is not OperatorKind.F_PLUS_SD:
                    counters.dominance_checks += 1
                    counters.validated_by_mbr += 1
                    if resilient:
                        ctx.spend_check(1)
                dominators += 1
            elif screen is not None and not screen[idx]:
                # Scalar equivalent: the operator runs its (failed) strict
                # MBR test, then its statistic screen rejects the pair.
                counters.count_comparisons(3)
                if is_psd:
                    # P-SD pays the screen through its nested SS-SD call:
                    # two dominance checks, two cover-prune hits, and an MBR
                    # test each for the outer check (gated on the validation
                    # flag, tracked by `mbr_checked`) and the nested SS-SD
                    # (unconditional under the Euclidean metric).
                    counters.dominance_checks += 2
                    counters.mbr_tests += (1 if mbr_checked else 0) + (
                        1 if ctx.is_euclidean else 0
                    )
                    counters.pruned_by_cover += 2
                    if resilient:
                        ctx.spend_check(2)
                else:
                    counters.dominance_checks += 1
                    if mbr_checked:
                        counters.mbr_tests += 1
                    if op_kind is OperatorKind.S_SD:
                        counters.pruned_by_statistics += 1
                    else:
                        counters.pruned_by_cover += 1
                    if resilient:
                        ctx.spend_check(1)
            else:
                if mbr_checked:
                    # The operator skips re-running the strict MBR test the
                    # batch already settled negatively; keep the scalar
                    # tally (P-SD would run it twice: itself + nested SS-SD).
                    counters.mbr_tests += 2 if is_psd else 1
                try:
                    dominates = operator.dominates(
                        record[0], obj, ctx, mbr_checked=mbr_checked
                    )
                except RECOVERABLE_FAULTS as exc:
                    # Conservative non-dominance: the pair stays unresolved
                    # and contributes no dominator, so the object survives.
                    ctx.note_unresolved("dominance-check", _fault_reason(exc))
                    dominates = False
                if dominates:
                    dominators += 1
            if dominators >= k:
                break
        return dominators

    @staticmethod
    def _entry_pruned(
        mbr,
        q_mbr,
        accepted: list[list],
        acc_idx: _AcceptedIndex,
        ctx: QueryContext,
        k: int,
    ) -> bool:
        """Cover-based entry pruning: >= k accepted MBRs F-SD the entry."""
        if not ctx.is_euclidean:
            return False  # the MBR dominance test is Euclidean-only
        if not accepted:
            return False
        if ctx.kernels:
            # All accepted candidates' boxes against the entry in one shot.
            u_los, u_his = acc_idx.boxes(accepted)
            mask = K.mbr_dominance_mask(
                u_los,
                u_his,
                mbr,
                q_mbr,
                strict=True,
                u_max_sq=acc_idx.corner_sq(accepted, q_mbr),
                counters=ctx.counters,
            )
            # Scalar-equivalent tally: the scalar loop below tests boxes in
            # order and stops at the k-th hit.
            hits = np.nonzero(mask)[0]
            if hits.size >= k:
                ctx.counters.mbr_tests += int(hits[k - 1]) + 1
                return True
            ctx.counters.mbr_tests += len(accepted)
            return False
        hits = 0
        for record in accepted:
            ctx.counters.mbr_tests += 1
            if mbr_dominates(record[0].mbr, mbr, q_mbr, strict=True):
                hits += 1
                if hits >= k:
                    return True
        return False


def nn_candidates(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    operator: _BaseOperator | OperatorKind | str = OperatorKind.P_SD,
    *,
    k: int = 1,
    ctx: QueryContext | None = None,
) -> NNCResult:
    """One-shot NN candidates search (builds the index, runs Algorithm 1).

    Args:
        objects: the dataset.
        query: multi-instance query object.
        operator: dominance operator (kind, name, or configured instance).
        k: with ``k > 1``, return the k-NN candidates (k-skyband): objects
            dominated by fewer than ``k`` others.
        ctx: optional pre-built query context (to share caches / counters).

    Returns:
        The :class:`NNCResult` with candidates and instrumentation.
    """
    return NNCSearch(objects).run(query, operator, k=k, ctx=ctx)
