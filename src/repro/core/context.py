"""Per-query evaluation context with shared caches.

NN candidate search evaluates many dominance checks against one query; the
context caches everything reusable across those checks:

* the convex hull of the query instances (geometric filter, Section 5.1.2),
* the query MBR,
* per-object distance distributions ``U_Q`` and per-query-instance
  distributions ``U_q``,
* per-object summary statistics (min / mean / max) for the statistic-based
  pruning rule (Theorem 11),
* per-object level partitions (local R-tree slices) for the level-by-level
  filters.

Objects are keyed by identity, so the context must outlive neither the query
nor the object set it serves.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels as K
from repro.core.counters import Counters
from repro.obs.tracer import NULL_TRACER
from repro.geometry.convexhull import convex_hull
from repro.geometry.distance import is_euclidean, resolve_norm
from repro.geometry.mbr import MBR
from repro.objects.uncertain import UncertainObject
from repro.resilience.faults import NumericalFault
from repro.stats.distribution import DiscreteDistribution


class QueryContext:
    """Caches shared by all dominance checks against one query.

    Args:
        query: the query object.
        counters: optional instrumentation sink (a fresh one is created when
            omitted).
        use_hull: when True (default) the geometric filter replaces the query
            instance set with its convex hull vertices for instance-ordering
            tests; disabling reproduces the "no geometry" ablation rows.
        level_groups: number of groups the level-by-level filters partition
            each object into (via its local R-tree).
        metric: distance metric name ("euclidean", "manhattan"/"l1",
            "chebyshev"/"linf").  The distribution-based operators (S-SD,
            SS-SD) work under any metric; for non-Euclidean metrics the
            geometric filters that rest on bisector linearity (convex hull
            reduction, MBR dominance validation, hull-interior rule) are
            disabled automatically — correctness is preserved, only pruning
            power is reduced.
        kernels: when True (default) distance matrices, CDF sweeps, MBR
            bounds and pruning screens run through the vectorised batch
            kernels of :mod:`repro.core.kernels`; ``kernels=False`` selects
            the scalar reference loops (one metric call per pair, the
            single-scan CDF merge, per-point MBR bounds) — bit-compatible
            results, used as the property-testing oracle and the baseline
            of ``benchmarks/bench_kernels.py``.
        tracer: optional :class:`repro.obs.tracer.Tracer`; defaults to the
            shared no-op :data:`repro.obs.tracer.NULL_TRACER`, so untraced
            queries pay only an ``enabled`` attribute check per span site.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; when
            set, searches feed per-query metrics (latency, counter totals,
            prune-rule hits), the kernels feed batch-size histograms, and a
            tracer without its own registry adopts this one for span
            latencies.
        budget: optional :class:`repro.resilience.budget.Budget`; when set,
            the search driver, operators, kernels, R-tree descents, and the
            max-flow loop hit cooperative checkpoints, and on exhaustion the
            search degrades to a certified superset instead of failing (see
            DESIGN.md §12).
        faults: optional :class:`repro.resilience.faults.FaultPlan`; fires
            deterministic injected faults at named pipeline sites.  Test
            machinery — never set in production paths.
    """

    def __init__(
        self,
        query: UncertainObject,
        *,
        counters: Counters | None = None,
        use_hull: bool = True,
        level_groups: int = 4,
        metric: str = "euclidean",
        kernels: bool = True,
        tracer=None,
        metrics=None,
        budget=None,
        faults=None,
    ) -> None:
        self.query = query
        self.counters = counters if counters is not None else Counters()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        if metrics is not None:
            # Instance attribute shadows the Counters.metrics ClassVar, so
            # the kernel hot path finds the sink without extra plumbing.
            self.counters.metrics = metrics
            if getattr(self.tracer, "metrics", None) is None and self.tracer.enabled:
                self.tracer.metrics = metrics
        self.budget = budget
        self.faults = faults
        #: One flag for the operator hot path: resilience plumbing is only
        #: consulted behind it, so an unbudgeted, unfaulted query pays a
        #: single attribute check per dominance check.
        self.resilient = budget is not None or faults is not None
        if budget is not None:
            # Same shadow trick as metrics: the kernels find the budget on
            # the counter bag and hit a deadline checkpoint per invocation.
            self.counters.budget = budget
        #: ``(site, reason)`` pairs for dominance decisions that defaulted
        #: to conservative non-dominance (capped; the counter keeps going).
        self.unresolved_events: list[tuple[str, str]] = []
        #: :class:`repro.resilience.budget.DegradationReport` of the most
        #: recent search run with this context (``None`` = exact).  Request
        #: -scoped — unlike any shared search-instance state, concurrent
        #: queries each hold their own context and cannot cross-observe.
        self.degradation = None
        self.level_groups = level_groups
        self.metric = metric
        self.kernels = bool(kernels)
        self.is_euclidean = is_euclidean(metric)
        self.norm = None if self.is_euclidean else resolve_norm(metric)
        self.query_mbr: MBR = query.mbr
        if use_hull and self.is_euclidean and len(query) > 2:
            self.hull_points = convex_hull(query.points)
        else:
            self.hull_points = query.points
        self._dist_matrices: dict[int, np.ndarray] = {}
        self._dist_dists: dict[int, DiscreteDistribution] = {}
        self._per_q_dists: dict[int, list[DiscreteDistribution]] = {}
        self._stats: dict[int, tuple[float, float, float]] = {}
        self._partitions: dict[tuple[int, int], list[tuple[MBR, np.ndarray, float]]] = {}
        self._hull_vectors: dict[int, np.ndarray] = {}
        self._hull_extremes: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._row_extremes: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._sorted_rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------ #

    def spend_check(self, n: int = 1, *, fire: bool = False) -> None:
        """Charge ``n`` dominance checks to the budget; optionally fire faults.

        Called behind ``self.resilient`` wherever ``counters.dominance_checks``
        is bumped — operator entries pass ``fire=True`` (the injection point
        for ``dominance-check`` faults); the search driver's batch-equivalent
        accounting charges without firing.

        Raises:
            BudgetExhausted: the dominance-check cap or deadline tripped
                (the driver catches this and drains conservatively).
            InjectedFault: a ``dominance-check`` fault fired (callers treat
                the pair as unresolved — conservative non-dominance).
        """
        budget = self.budget
        if budget is not None:
            budget.spend_dominance_checks(n)
        if fire and self.faults is not None:
            self.faults.fire("dominance-check")

    def note_unresolved(self, site: str, reason: str) -> None:
        """Record one dominance decision that defaulted conservatively.

        Feeds the ``unresolved_checks`` counter (and through it the metrics
        export) plus a capped event list for the degradation report.
        """
        self.counters.bump("unresolved_checks")
        if len(self.unresolved_events) < 32:
            self.unresolved_events.append((site, reason))

    # ------------------------------------------------------------------ #

    def distance_matrix(self, obj: UncertainObject) -> np.ndarray:
        """Raw pair-distance matrix, shape ``(|Q|, m)``, cached.

        The one broadcast every per-object artefact derives from: ``U_Q``
        ravels it, ``U_q`` reads its rows, ``min(U_Q)`` is its minimum.
        """
        key = id(obj)
        mat = self._dist_matrices.get(key)
        if mat is None:
            if self.kernels:
                mat = K.distance_matrix(
                    self.query.points, obj.points, self.metric, counters=self.counters
                )
            else:
                mat = K.distance_matrix_scalar(
                    self.query.points, obj.points, self.metric, counters=self.counters
                )
            if self.faults is not None:
                # Fault harness only: poison + finiteness guard.  A corrupted
                # matrix is detected, NOT cached — the next access recomputes
                # it cleanly once the fault's firing window is spent.
                mat = self.faults.corrupt("distance-matrix", mat)
                if not np.isfinite(mat).all():
                    raise NumericalFault("distance-matrix")
            self._dist_matrices[key] = mat
        return mat

    def distance_distribution(self, obj: UncertainObject) -> DiscreteDistribution:
        """``U_Q`` for ``obj``, cached."""
        key = id(obj)
        if key not in self._dist_dists:
            mat = self.distance_matrix(obj)
            probs = np.outer(self.query.probs, obj.probs)
            self._dist_dists[key] = DiscreteDistribution(mat.ravel(), probs.ravel())
        return self._dist_dists[key]

    def per_instance_distributions(
        self, obj: UncertainObject
    ) -> list[DiscreteDistribution]:
        """``[U_q for q in Q]`` in query instance order, cached."""
        key = id(obj)
        if key not in self._per_q_dists:
            dists = self.distance_matrix(obj)
            self._per_q_dists[key] = [
                DiscreteDistribution(row, obj.probs) for row in dists
            ]
        return self._per_q_dists[key]

    def min_distance(self, obj: UncertainObject) -> float:
        """Exact ``min(U_Q)`` from the cached distance matrix."""
        return float(self.distance_matrix(obj).min())

    def statistics(self, obj: UncertainObject) -> tuple[float, float, float]:
        """``(min, mean, max)`` of ``U_Q`` (Theorem 11 pruning inputs)."""
        key = id(obj)
        if key not in self._stats:
            dist = self.distance_distribution(obj)
            self._stats[key] = (dist.min(), dist.mean(), dist.max())
        return self._stats[key]

    def hull_distance_vectors(self, obj: UncertainObject) -> np.ndarray:
        """Distance of every instance to every hull vertex, shape ``(m, k)``."""
        key = id(obj)
        if key not in self._hull_vectors:
            if self.hull_points is self.query.points:
                # Hull not reduced: the distance matrix already holds these.
                vecs = self.distance_matrix(obj).T
            elif self.kernels:
                vecs = K.distance_matrix(
                    obj.points, self.hull_points, self.metric, counters=self.counters
                )
            else:
                vecs = K.distance_matrix_scalar(
                    obj.points, self.hull_points, self.metric, counters=self.counters
                )
            self._hull_vectors[key] = vecs
        return self._hull_vectors[key]

    def hull_extremes(self, obj: UncertainObject) -> tuple[np.ndarray, np.ndarray]:
        """Per hull vertex: (max, min) distance over the object's instances.

        The F-SD per-vertex comparison reduces to these two ``(k,)``
        vectors; they depend only on the object, so the kernel path caches
        them instead of re-reducing the hull matrix for every pair.
        """
        key = id(obj)
        out = self._hull_extremes.get(key)
        if out is None:
            vecs = self.hull_distance_vectors(obj)  # (m, k)
            out = (vecs.max(axis=0), vecs.min(axis=0))
            self._hull_extremes[key] = out
        return out

    def row_extremes(self, obj: UncertainObject) -> tuple[np.ndarray, np.ndarray]:
        """Per query instance: (min, max) distance over the object's instances.

        The SS-SD per-``q`` statistic screen inputs, shape ``(|Q|,)`` each;
        cached per object for the same reason as :meth:`hull_extremes`.
        """
        key = id(obj)
        out = self._row_extremes.get(key)
        if out is None:
            mat = self.distance_matrix(obj)  # (|Q|, m)
            out = (mat.min(axis=1), mat.max(axis=1))
            self._row_extremes[key] = out
        return out

    def sorted_rows(self, obj: UncertainObject) -> tuple[np.ndarray, np.ndarray]:
        """Row-sorted distance matrix with prefix-summed probabilities.

        Returns ``(vals, cum)`` with ``vals`` the ``(|Q|, m)`` matrix sorted
        along each row and ``cum`` the ``(|Q|, m + 1)`` cumulative masses in
        that order (leading zero column) — the per-``q`` CDFs of the object,
        ready for the merge-rank dominance kernel.  The accumulation order
        matches the scalar scan's, so borderline tolerance comparisons agree.
        """
        key = id(obj)
        out = self._sorted_rows.get(key)
        if out is None:
            mat = self.distance_matrix(obj)  # (|Q|, m)
            order = np.argsort(mat, axis=1, kind="stable")
            vals = np.take_along_axis(mat, order, axis=1)
            probs = np.asarray(obj.probs, dtype=float)[order]
            cum = np.zeros((mat.shape[0], mat.shape[1] + 1))
            np.cumsum(probs, axis=1, out=cum[:, 1:])
            out = (vals, cum)
            self._sorted_rows[key] = out
        return out

    def partitions(
        self, obj: UncertainObject, groups: int | None = None
    ) -> list[tuple[MBR, np.ndarray, float]]:
        """Level partitions ``(mbr, instance_indices, mass)`` of ``obj``.

        Derived from the object's local R-tree (fan-out 4 per the paper),
        descended until at least ``groups`` groups exist (defaults to the
        context's ``level_groups``).  The iterative level-by-level filters
        call this with increasing granularities; each level is cached.
        """
        if groups is None:
            groups = self.level_groups
        key = (id(obj), groups)
        if key not in self._partitions:
            slices = obj.local_rtree().partitions(groups)
            parts: list[tuple[MBR, np.ndarray, float]] = []
            for mbr, payloads in slices:
                idx = np.array([i for i, _ in payloads], dtype=int)
                mass = float(sum(p for _, p in payloads))
                parts.append((mbr, idx, mass))
            self._partitions[key] = parts
        return self._partitions[key]

    def forget(self, obj: UncertainObject) -> None:
        """Drop cached artefacts of one object (memory control in sweeps)."""
        key = id(obj)
        for cache in (
            self._dist_matrices,
            self._dist_dists,
            self._per_q_dists,
            self._stats,
            self._hull_vectors,
            self._hull_extremes,
            self._row_extremes,
            self._sorted_rows,
        ):
            cache.pop(key, None)
        for part_key in [k for k in self._partitions if k[0] == key]:
            del self._partitions[part_key]
