"""Stochastic spatial dominance S-SD (Definition 2) — optimal w.r.t. N1.

``S-SD(U, V, Q)`` iff ``U_Q <=_st V_Q`` and ``U_Q != V_Q``.  The full check
is the single-scan CDF sweep of Section 5.1.1; three filters from the paper
can avoid it:

* **MBR validation** (Theorem 4) — strict F-SD on the MBRs settles the check
  positively in O(d).
* **Statistic-based pruning** (Theorem 11) — ``min``/``mean``/``max`` of the
  two distance distributions must be ordered; a violation settles negatively.
* **Level-by-level filtering** — bounding distributions built from local
  R-tree partitions: an optimistic (mindist) distribution ``L_X`` and a
  pessimistic (maxdist) distribution ``P_X`` with ``L_X <=_st X_Q <=_st P_X``.
  ``P_U <=_st L_V`` validates; ``not (L_U <=_st P_V)`` prunes.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels as K
from repro.core.context import QueryContext
from repro.geometry.mbr import mbr_dominates
from repro.objects.uncertain import UncertainObject
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_equal, stochastic_leq

_TOL = 1e-9


def _granularities(start: int, instance_cap: int) -> list[int]:
    """The partition sizes the iterative refinement walks through."""
    out: list[int] = []
    g = max(2, start)
    while g < instance_cap:
        out.append(g)
        g *= 4  # local R-tree fan-out: one level deeper per round
    return out or [max(2, start)]


def bounding_distributions(
    obj: UncertainObject, ctx: QueryContext, groups: int | None = None
) -> tuple[DiscreteDistribution, DiscreteDistribution]:
    """Optimistic / pessimistic bounds on ``U_Q`` from level partitions.

    For each partition MBR with mass ``w`` and each query instance ``q`` with
    probability ``p(q)``, the optimistic distribution places mass ``w * p(q)``
    at ``mindist(q, mbr)`` and the pessimistic one at ``maxdist(q, mbr)``.
    By construction ``L <=_st U_Q <=_st P``.
    """
    parts = ctx.partitions(obj, groups)
    if ctx.kernels and not callable(ctx.metric):
        los = np.stack([mbr.lo for mbr, _, _ in parts])
        his = np.stack([mbr.hi for mbr, _, _ in parts])
        masses = np.array([mass for _, _, mass in parts], dtype=float)
        lo_mat, hi_mat = K.partition_bounds(
            los, his, ctx.query.points, ctx.metric, counters=ctx.counters
        )
        probs_mat = masses[:, None] * np.asarray(ctx.query.probs, dtype=float)[None, :]
        lo = DiscreteDistribution(lo_mat.ravel(), probs_mat.ravel())
        hi = DiscreteDistribution(hi_mat.ravel(), probs_mat.ravel())
        return lo, hi
    lo_vals: list[float] = []
    hi_vals: list[float] = []
    probs: list[float] = []
    for mbr, _, mass in parts:
        for q, pq in zip(ctx.query.points, ctx.query.probs):
            lo_vals.append(mbr.mindist(q, ctx.norm))
            hi_vals.append(mbr.maxdist(q, ctx.norm))
            probs.append(mass * float(pq))
    lo = DiscreteDistribution(lo_vals, probs)
    hi = DiscreteDistribution(hi_vals, probs)
    return lo, hi


def s_dominates(
    u: UncertainObject,
    v: UncertainObject,
    ctx: QueryContext,
    *,
    use_statistics: bool = True,
    use_mbr_validation: bool = True,
    use_level: bool = False,
    mbr_checked: bool = False,
) -> bool:
    """S-SD dominance check with configurable filters.

    Args:
        u: candidate dominator.
        v: candidate dominated object.
        ctx: query context.
        use_statistics: apply the Theorem 11 min/mean/max pruning rule.
        use_mbr_validation: apply the Theorem 4 MBR validation rule.
        use_level: apply the level-by-level bounding-distribution filter
            before the exact scan (pays off for large instance counts).
        mbr_checked: the caller already ran the strict MBR validation (and it
            failed) — e.g. the search loop's batched screen — so skip it.
    """
    ctx.counters.dominance_checks += 1
    if ctx.resilient:
        ctx.spend_check(fire=True)
    if use_mbr_validation and ctx.is_euclidean and not mbr_checked:
        ctx.counters.mbr_tests += 1
        if mbr_dominates(u.mbr, v.mbr, ctx.query_mbr, strict=True):
            ctx.counters.validated_by_mbr += 1
            return True
    if use_statistics:
        ctx.counters.count_comparisons(3)
        u_min, u_mean, u_max = ctx.statistics(u)
        v_min, v_mean, v_max = ctx.statistics(v)
        if u_min > v_min + _TOL or u_mean > v_mean + _TOL or u_max > v_max + _TOL:
            ctx.counters.pruned_by_statistics += 1
            return False
    if use_level:
        # Iterative level-by-level refinement (Section 5.1.2): start from a
        # coarse partitioning and only descend while the bounds stay
        # indecisive, terminating early at high levels when possible.
        for groups in _granularities(ctx.level_groups, min(len(u), len(v))):
            lo_u, hi_u = bounding_distributions(u, ctx, groups)
            lo_v, hi_v = bounding_distributions(v, ctx, groups)
            if stochastic_leq(hi_u, lo_v, counter=ctx.counters, use_kernel=ctx.kernels):
                # Pessimistic U below optimistic V everywhere.  If the
                # bounds differ as distributions then U_Q != V_Q follows
                # (equality would squeeze both bounds onto U_Q), settling
                # the check positively; bound equality is degenerate and
                # falls through to the scan.
                if not stochastic_equal(hi_u, lo_v, use_kernel=ctx.kernels):
                    ctx.counters.validated_by_level += 1
                    return True
            elif not stochastic_leq(
                lo_u, hi_v, counter=ctx.counters, use_kernel=ctx.kernels
            ):
                ctx.counters.pruned_by_level += 1
                return False
    tracer = ctx.tracer
    if tracer.enabled:
        with tracer.span("cdf-scan", counters=ctx.counters, op="SSD"):
            return _exact_scan(u, v, ctx)
    return _exact_scan(u, v, ctx)


def _exact_scan(u: UncertainObject, v: UncertainObject, ctx: QueryContext) -> bool:
    """The unfiltered S-SD decision: the Section 5.1.1 single-scan sweep."""
    if ctx.faults is not None:
        ctx.faults.fire("cdf-scan")
    u_q = ctx.distance_distribution(u)
    v_q = ctx.distance_distribution(v)
    if not stochastic_leq(u_q, v_q, counter=ctx.counters, use_kernel=ctx.kernels):
        return False
    # Equality is two-sided <=_st; the forward sweep just returned True, so
    # only the reverse direction remains to decide U_Q != V_Q.
    return not (u_q == v_q or stochastic_leq(v_q, u_q))
