"""The paper's primary contribution: spatial dominance operators and NNC search.

* :mod:`repro.core.operators` — operator construction, the per-query context
  with shared caches, and the operator kind enumeration.
* :mod:`repro.core.fsd` / :mod:`ssd` / :mod:`sssd` / :mod:`psd` — dominance
  check algorithms with the paper's pruning/validation filters.
* :mod:`repro.core.nnc` — Algorithm 1, the progressive NN candidates search.
* :mod:`repro.core.bruteforce` — definition-level reference implementations
  used as testing oracles.
* :mod:`repro.core.counters` — instrumentation for the filter ablation study.
"""

from repro.core.counters import Counters
from repro.core.nnc import NNCResult, NNCSearch, nn_candidates
from repro.core.operators import (
    FPlusSDOperator,
    FSDOperator,
    OperatorKind,
    PSDOperator,
    QueryContext,
    SSDOperator,
    SSSDOperator,
    make_operator,
)

__all__ = [
    "Counters",
    "FPlusSDOperator",
    "FSDOperator",
    "NNCResult",
    "NNCSearch",
    "OperatorKind",
    "PSDOperator",
    "QueryContext",
    "SSDOperator",
    "SSSDOperator",
    "make_operator",
    "nn_candidates",
]
