"""Full spatial dominance: F-SD (instance level) and F+-SD (MBR level).

``F-SD(U, V, Q)`` holds when every instance of ``U`` is at least as close as
every instance of ``V`` to every query instance.  The paper evaluates two
variants:

* **F+-SD** — the prior-work baseline [16]: the optimal MBR-only test
  (:func:`repro.geometry.mbr.mbr_dominates`) applied to object MBRs.
* **F-SD** — an instance-level check the paper contributes for evaluation
  purposes (Section 6): for each convex-hull vertex ``q`` of the query,
  compare the *furthest* instance of ``U`` against the *nearest* instance of
  ``V`` (``delta_max(q, U) <= delta_min(q, V)``), with both extreme searches
  answered by the objects' local R-trees.

One deliberate deviation: like the three new operators, our F-SD additionally
requires ``U_Q != V_Q`` so that two identical objects do not annihilate each
other out of the candidate set; this keeps ``F-SD subset P-SD`` (Theorem 2)
intact and makes ``NNC`` well-defined under duplicates.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import QueryContext
from repro.geometry.mbr import mbr_dominates
from repro.objects.uncertain import UncertainObject
from repro.stats.stochastic import stochastic_equal

_TOL = 1e-9


def fplus_dominates(
    u: UncertainObject, v: UncertainObject, ctx: QueryContext
) -> bool:
    """F+-SD: the MBR-only dominance baseline of [16].

    Strict MBR dominance is required when the boxes touch so that identical
    objects do not dominate each other; when the test is strict the
    distributions necessarily differ, so no distribution comparison is ever
    needed here.
    """
    ctx.counters.mbr_tests += 1
    if ctx.resilient:
        # No dominance-check charge (F+-SD is not counted as one), but the
        # site still fires faults and hits the deadline checkpoint.
        ctx.spend_check(0, fire=True)
    return mbr_dominates(u.mbr, v.mbr, ctx.query_mbr, strict=True)


def fsd_dominates(
    u: UncertainObject,
    v: UncertainObject,
    ctx: QueryContext,
    *,
    use_local_trees: bool = True,
    mbr_checked: bool = False,
) -> bool:
    """Instance-level F-SD with the convex hull geometric filter.

    Args:
        u: candidate dominator.
        v: candidate dominated object.
        ctx: query context (supplies hull vertices, caches, counters).
        use_local_trees: answer the per-vertex extreme-distance queries with
            each object's local R-tree (the paper's setup); the vectorised
            direct computation is used otherwise.
        mbr_checked: the strict MBR validation already ran (and failed)
            upstream — skip repeating it.
    """
    ctx.counters.dominance_checks += 1
    if ctx.resilient:
        ctx.spend_check(fire=True)
    if not ctx.is_euclidean:
        use_local_trees = False  # local R-tree extremes are Euclidean-only
    elif not mbr_checked:
        # MBR validation first: strictly dominating boxes settle it in O(d).
        ctx.counters.mbr_tests += 1
        if mbr_dominates(u.mbr, v.mbr, ctx.query_mbr, strict=True):
            ctx.counters.validated_by_mbr += 1
            return True
    if ctx.faults is not None:
        ctx.faults.fire("hull-extremes")
    tracer = ctx.tracer
    if tracer.enabled:
        with tracer.span(
            "hull-extremes",
            counters=ctx.counters,
            op="FSD",
            vertices=len(ctx.hull_points),
        ):
            ok = _extremes_ok(u, v, ctx, use_local_trees)
    else:
        ok = _extremes_ok(u, v, ctx, use_local_trees)
    if not ok:
        return False
    # All pair distances are <=; exclude the degenerate identical case.
    return not stochastic_equal(
        ctx.distance_distribution(u),
        ctx.distance_distribution(v),
        use_kernel=ctx.kernels,
    )


def _extremes_ok(
    u: UncertainObject, v: UncertainObject, ctx: QueryContext, use_local_trees: bool
) -> bool:
    """Per hull vertex: does ``delta_max(q, U) <= delta_min(q, V)`` hold?"""
    if use_local_trees:
        u_tree = u.local_rtree()
        v_tree = v.local_rtree()
        u_tree.metrics = v_tree.metrics = ctx.counters.metrics
        u_tree.budget = v_tree.budget = ctx.budget
        for q in ctx.hull_points:
            ctx.counters.count_comparisons(1)
            if u_tree.farthest_distance(q, batch=ctx.kernels) > v_tree.nearest_distance(
                q, batch=ctx.kernels
            ) + _TOL:
                return False
        return True
    if ctx.kernels:
        # Per-object extreme vectors are cached: one reduction per
        # object instead of two per checked pair.
        u_max = ctx.hull_extremes(u)[0]  # (k,)
        v_min = ctx.hull_extremes(v)[1]
    else:
        du = ctx.hull_distance_vectors(u)  # (m_u, k)
        dv = ctx.hull_distance_vectors(v)  # (m_v, k)
        u_max = du.max(axis=0)
        v_min = dv.min(axis=0)
    ctx.counters.count_comparisons(u_max.size)
    return not np.any(u_max > v_min + _TOL)
