"""Instrumentation counters for the filter effectiveness study (Appendix C).

Figure 16 of the paper compares filtering configurations (brute force, level
by level, pruning rules, geometric filter) by the *average number of instance
comparisons* per dominance check.  ``Counters`` collects those numbers across
a search so benchmarks can reproduce the study.

The kernel fields track the vectorised hot path (:mod:`repro.core.kernels`):
``kernel_invocations`` batch calls, ``kernel_elements`` total elements they
processed, and ``scalar_fallbacks`` times a scalar loop ran instead (callable
metrics, or a ``QueryContext(kernels=False)`` reference run).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass
class Counters:
    """Mutable counter bag threaded through dominance checks and searches.

    ``merge`` and ``snapshot`` iterate :func:`dataclasses.fields`, so a new
    counter field participates in both automatically — no hand-maintained
    field list to drift.  Free-form ``extra`` keys that would shadow a
    built-in field are namespaced as ``extra.<key>`` in ``snapshot()``.
    """

    #: Optional :class:`repro.obs.metrics.MetricsRegistry` sink; when set
    #: (by a query context with metrics enabled) the batch kernels feed
    #: per-kernel batch-size histograms through it.  Deliberately a class
    #: attribute, not a dataclass field: it is instrumentation wiring, not
    #: a counter, and must stay out of ``merge``/``snapshot``.
    metrics: ClassVar = None

    #: Optional :class:`repro.resilience.budget.Budget`; when set (by a query
    #: context with a budget) the batch kernels hit a deadline checkpoint per
    #: invocation.  Same ClassVar-shadow pattern as ``metrics``: wiring, not
    #: a counter.
    budget: ClassVar = None

    instance_comparisons: int = 0
    dominance_checks: int = 0
    mbr_tests: int = 0
    maxflow_calls: int = 0
    pruned_by_statistics: int = 0
    pruned_by_cover: int = 0
    pruned_by_level: int = 0
    pruned_by_geometry: int = 0
    validated_by_mbr: int = 0
    validated_by_level: int = 0
    nodes_visited: int = 0
    objects_visited: int = 0
    kernel_invocations: int = 0
    kernel_elements: int = 0
    scalar_fallbacks: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def count_comparisons(self, n: int) -> None:
        """Record ``n`` instance (element) comparisons."""
        self.instance_comparisons += n

    def bump(self, key: str, n: int = 1) -> None:
        """Increment a free-form counter."""
        self.extra[key] = self.extra.get(key, 0) + n

    def merge(self, other: "Counters") -> None:
        """Accumulate another counter bag into this one (field-list free)."""
        for name in _COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for key, value in other.extra.items():
            self.bump(key, value)

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view (for reports and assertions).

        Built-in fields always win their own key; an ``extra`` key that
        collides with a field name is emitted as ``extra.<key>`` instead of
        silently shadowing the field.
        """
        out = {name: getattr(self, name) for name in _COUNTER_FIELDS}
        for key, value in self.extra.items():
            out[key if key not in out else f"extra.{key}"] = value
        return out


_COUNTER_FIELDS: tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(Counters) if f.name != "extra"
)
"""Integer counter fields, derived once from the dataclass definition."""
