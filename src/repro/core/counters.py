"""Instrumentation counters for the filter effectiveness study (Appendix C).

Figure 16 of the paper compares filtering configurations (brute force, level
by level, pruning rules, geometric filter) by the *average number of instance
comparisons* per dominance check.  ``Counters`` collects those numbers across
a search so benchmarks can reproduce the study.

The kernel fields track the vectorised hot path (:mod:`repro.core.kernels`):
``kernel_invocations`` batch calls, ``kernel_elements`` total elements they
processed, and ``scalar_fallbacks`` times a scalar loop ran instead (callable
metrics, or a ``QueryContext(kernels=False)`` reference run).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counters:
    """Mutable counter bag threaded through dominance checks and searches."""

    instance_comparisons: int = 0
    dominance_checks: int = 0
    mbr_tests: int = 0
    maxflow_calls: int = 0
    pruned_by_statistics: int = 0
    pruned_by_cover: int = 0
    pruned_by_level: int = 0
    pruned_by_geometry: int = 0
    validated_by_mbr: int = 0
    validated_by_level: int = 0
    nodes_visited: int = 0
    objects_visited: int = 0
    kernel_invocations: int = 0
    kernel_elements: int = 0
    scalar_fallbacks: int = 0
    extra: dict[str, int] = field(default_factory=dict)

    def count_comparisons(self, n: int) -> None:
        """Record ``n`` instance (element) comparisons."""
        self.instance_comparisons += n

    def bump(self, key: str, n: int = 1) -> None:
        """Increment a free-form counter."""
        self.extra[key] = self.extra.get(key, 0) + n

    def merge(self, other: "Counters") -> None:
        """Accumulate another counter bag into this one."""
        self.instance_comparisons += other.instance_comparisons
        self.dominance_checks += other.dominance_checks
        self.mbr_tests += other.mbr_tests
        self.maxflow_calls += other.maxflow_calls
        self.pruned_by_statistics += other.pruned_by_statistics
        self.pruned_by_cover += other.pruned_by_cover
        self.pruned_by_level += other.pruned_by_level
        self.pruned_by_geometry += other.pruned_by_geometry
        self.validated_by_mbr += other.validated_by_mbr
        self.validated_by_level += other.validated_by_level
        self.nodes_visited += other.nodes_visited
        self.objects_visited += other.objects_visited
        self.kernel_invocations += other.kernel_invocations
        self.kernel_elements += other.kernel_elements
        self.scalar_fallbacks += other.scalar_fallbacks
        for key, value in other.extra.items():
            self.bump(key, value)

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view (for reports and assertions)."""
        out = {
            "instance_comparisons": self.instance_comparisons,
            "dominance_checks": self.dominance_checks,
            "mbr_tests": self.mbr_tests,
            "maxflow_calls": self.maxflow_calls,
            "pruned_by_statistics": self.pruned_by_statistics,
            "pruned_by_cover": self.pruned_by_cover,
            "pruned_by_level": self.pruned_by_level,
            "pruned_by_geometry": self.pruned_by_geometry,
            "validated_by_mbr": self.validated_by_mbr,
            "validated_by_level": self.validated_by_level,
            "nodes_visited": self.nodes_visited,
            "objects_visited": self.objects_visited,
            "kernel_invocations": self.kernel_invocations,
            "kernel_elements": self.kernel_elements,
            "scalar_fallbacks": self.scalar_fallbacks,
        }
        out.update(self.extra)
        return out
