"""Peer spatial dominance P-SD (Definition 5) — optimal w.r.t. N1 ∪ N2 ∪ N3.

``P-SD(U, V, Q)`` iff some match ``M_{U,V}`` pairs every instance of ``U``
with instances of ``V`` it is ``<=_Q``-closer than (and ``U_Q != V_Q``).
Theorem 12 reduces the existence of such a match to a max-flow problem on
the bipartite network ``source -> U-instances -> V-instances -> sink`` whose
instance edges are exactly the pairs with ``u <=_Q v``; dominance holds iff
the max flow saturates the unit supply.

The paper's accelerations, all implemented here behind flags:

* **MBR validation** (Theorem 4) and **cover-based pruning** via SS-SD
  (``P-SD ⊂ SS-SD``, Theorem 2);
* **geometric filters** (Section 5.1.2): only convex-hull vertices of the
  query participate in ``<=_Q`` tests, and an instance of ``V`` strictly
  inside ``CH(Q)`` kills the check outright unless ``U`` has an instance at
  the same location;
* **degree-based shortcuts**: a ``V`` instance with no incoming edge or a
  ``U`` instance with no outgoing edge caps the flow below 1 with no
  max-flow run;
* **level-by-level networks** (Section 5.1.2): coarse networks over local
  R-tree partitions — ``G-`` (edges = MBR-level F-SD) validates when its
  flow reaches 1; ``G+`` (edges = not strictly reverse-dominated) prunes
  when its flow stays below 1.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels as K
from repro.core.context import QueryContext
from repro.core.sssd import ss_dominates
from repro.flow.maxflow import FlowBudgetError, FlowNetwork, max_flow
from repro.geometry.convexhull import point_in_hull
from repro.geometry.mbr import mbr_dominates
from repro.objects.uncertain import UncertainObject
from repro.stats.stochastic import stochastic_equal

_TOL = 1e-9
_FLOW_TOL = 1e-6


def point_in_query_hull(point: np.ndarray, ctx: QueryContext) -> bool:
    """Whether ``point`` lies inside the convex hull of the query instances.

    Exact in 1-d/2-d; conservative (may return False for borderline interior
    points) in higher dimensions, which only weakens the geometric filter,
    never correctness.
    """
    if not ctx.query_mbr.contains_point(point):
        return False
    return point_in_hull(point, ctx.hull_points)


def psd_adjacency(
    u: UncertainObject, v: UncertainObject, ctx: QueryContext
) -> np.ndarray:
    """The ``u <=_Q v`` instance adjacency matrix, shape ``(m, n)``."""
    du = ctx.hull_distance_vectors(u)  # (m, k)
    dv = ctx.hull_distance_vectors(v)  # (n, k)
    if ctx.kernels:
        adj = K.halfspace_adjacency(du, dv, tol=_TOL, counters=ctx.counters)
    else:
        adj = np.all(du[:, None, :] <= dv[None, :, :] + _TOL, axis=2)
    ctx.counters.count_comparisons(du.shape[0] * dv.shape[0])
    return adj


def build_psd_network(
    u: UncertainObject,
    v: UncertainObject,
    ctx: QueryContext,
    adj: np.ndarray | None = None,
) -> tuple[FlowNetwork, int, int, np.ndarray]:
    """The Theorem 12 network ``G_{U,V}`` plus its adjacency matrix.

    Vertices: ``0`` source, ``1..m`` U-instances, ``m+1..m+n`` V-instances,
    ``m+n+1`` sink.  Instance edges carry infinite capacity and exist iff
    ``u <=_Q v`` (checked against hull vertices only).  Pass a precomputed
    :func:`psd_adjacency` to skip recomputing it.
    """
    if adj is None:
        adj = psd_adjacency(u, v, ctx)
    m, n = len(u), len(v)
    net = FlowNetwork(m + n + 2)
    source, sink = 0, m + n + 1
    for i in range(m):
        net.add_edge(source, 1 + i, float(u.probs[i]))
    for j in range(n):
        net.add_edge(1 + m + j, sink, float(v.probs[j]))
    rows, cols = np.nonzero(adj)
    for i, j in zip(rows.tolist(), cols.tolist()):
        net.add_edge(1 + i, 1 + m + j, 2.0)
    return net, source, sink, adj


def _instance_max_flow(
    u: UncertainObject, v: UncertainObject, adj: np.ndarray, ctx: QueryContext
) -> float:
    """Max flow of the Theorem 12 instance network, greedy-seeded.

    A single O(E) greedy pass routes supply along the adjacency first; when
    it already saturates, no Dinic run is needed at all.  Otherwise Dinic
    runs on the residual network (reverse capacities = seeded flow), which
    keeps the result exact while usually needing far fewer phases.
    """
    m, n = len(u), len(v)
    u_rem = u.probs.astype(float).tolist()
    v_rem = v.probs.astype(float).tolist()
    rows, cols = np.nonzero(adj)
    rows = rows.tolist()
    cols = cols.tolist()
    pushed: dict[tuple[int, int], float] = {}
    seed = 0.0
    for i, j in zip(rows, cols):
        ri = u_rem[i]
        if ri <= 1e-12:
            continue
        rj = v_rem[j]
        if rj <= 1e-12:
            continue
        take = ri if ri < rj else rj
        u_rem[i] = ri - take
        v_rem[j] = rj - take
        pushed[(i, j)] = take
        seed += take
    if seed >= 1.0 - _FLOW_TOL:
        return seed
    net = FlowNetwork(m + n + 2)
    source, sink = 0, m + n + 1
    for i in range(m):
        if u_rem[i] > 0.0:
            net.add_edge(source, 1 + i, u_rem[i])
    for j in range(n):
        if v_rem[j] > 0.0:
            net.add_edge(1 + m + j, sink, v_rem[j])
    # Middle edges, inlined (add_edge per call costs more than the append
    # pair itself at ~1.2k edges per residual network).
    graph = net.graph
    for i, j in zip(rows, cols):
        gu = graph[1 + i]
        gv = graph[1 + m + j]
        gu.append([1 + m + j, 2.0, len(gv)])
        gv.append([1 + i, pushed.get((i, j), 0.0), len(gu) - 1])
    ctx.counters.maxflow_calls += 1
    if ctx.faults is not None:
        ctx.faults.fire("maxflow")
    budget = ctx.budget
    max_aug = budget.remaining_augmentations() if budget is not None else None
    tracer = ctx.tracer
    metrics = ctx.counters.metrics
    if tracer.enabled:
        with tracer.span(
            "maxflow", counters=ctx.counters, op="PSD", edges=net.edge_count
        ):
            return seed + max_flow(
                net, source, sink, metrics=metrics,
                max_augmentations=max_aug, budget=budget,
            )
    return seed + max_flow(
        net, source, sink, metrics=metrics, max_augmentations=max_aug, budget=budget
    )


def _level_flow(
    u_parts: list,
    v_parts: list,
    q_mbr,
    *,
    validation: bool,
    counters,
    tracer=None,
    budget=None,
) -> float:
    """Max flow of the coarse partition network ``G-`` or ``G+``."""
    m, n = len(u_parts), len(v_parts)
    net = FlowNetwork(m + n + 2)
    source, sink = 0, m + n + 1
    for i, (_, _, mass) in enumerate(u_parts):
        net.add_edge(source, 1 + i, mass)
    for j, (_, _, mass) in enumerate(v_parts):
        net.add_edge(1 + m + j, sink, mass)
    for i, (u_mbr, _, _) in enumerate(u_parts):
        for j, (v_mbr, _, _) in enumerate(v_parts):
            counters.mbr_tests += 1
            if validation:
                has_edge = mbr_dominates(u_mbr, v_mbr, q_mbr)
            else:
                has_edge = not mbr_dominates(v_mbr, u_mbr, q_mbr, strict=True)
            if has_edge:
                net.add_edge(1 + i, 1 + m + j, 2.0)
    counters.maxflow_calls += 1
    metrics = counters.metrics
    max_aug = budget.remaining_augmentations() if budget is not None else None
    if tracer is not None and tracer.enabled:
        with tracer.span(
            "level-flow", counters=counters, op="PSD", validation=validation
        ):
            return max_flow(
                net, source, sink, metrics=metrics,
                max_augmentations=max_aug, budget=budget,
            )
    return max_flow(
        net, source, sink, metrics=metrics, max_augmentations=max_aug, budget=budget
    )


def p_dominates(
    u: UncertainObject,
    v: UncertainObject,
    ctx: QueryContext,
    *,
    use_mbr_validation: bool = True,
    use_cover_pruning: bool = True,
    use_geometry: bool = True,
    use_level: bool = True,
    mbr_checked: bool = False,
) -> bool:
    """P-SD dominance check with configurable filters.

    Args:
        u: candidate dominator.
        v: candidate dominated object.
        ctx: query context.
        use_mbr_validation: Theorem 4 validation via the MBR F-SD test.
        use_cover_pruning: run the much cheaper SS-SD check first
            (``not SS-SD`` implies ``not P-SD``).
        use_geometry: apply the hull-interior shortcut.
        use_level: build the coarse ``G-``/``G+`` partition networks before
            the full instance-level max flow.
        mbr_checked: the strict MBR validation already ran (and failed)
            upstream — skip repeating it.

    Under a flow-augmentation budget, an interrupted max-flow run degrades
    *this check only*: the pair is recorded as unresolved and decided by
    conservative non-dominance (False — the object stays a candidate, which
    the containment chain certifies as superset-safe); the search continues.
    """
    ctx.counters.dominance_checks += 1
    if ctx.resilient:
        ctx.spend_check(fire=True)
    if not ctx.is_euclidean:
        # Bisector-based geometric machinery is Euclidean-only.
        use_mbr_validation = use_geometry = use_level = False
    if use_mbr_validation and not mbr_checked:
        ctx.counters.mbr_tests += 1
        if mbr_dominates(u.mbr, v.mbr, ctx.query_mbr, strict=True):
            ctx.counters.validated_by_mbr += 1
            return True
    if use_cover_pruning:
        if not ss_dominates(u, v, ctx, use_level=False, mbr_checked=mbr_checked):
            ctx.counters.pruned_by_cover += 1
            return False
    if use_geometry:
        if ctx.kernels:
            # Batch box prefilter: only instances inside the query MBR can be
            # hull-interior, so the exact hull test runs on that subset only.
            inside = K.points_in_box(
                ctx.query_mbr.lo, ctx.query_mbr.hi, v.points, counters=ctx.counters
            )
            candidates = np.nonzero(inside)[0].tolist()
        else:
            candidates = range(len(v))
        for j in candidates:
            vp = v.points[j]
            if point_in_query_hull(vp, ctx):
                # Only an identically-placed U instance can be <=_Q this one.
                if not np.any(np.all(np.abs(u.points - vp) <= 1e-12, axis=1)):
                    ctx.counters.pruned_by_geometry += 1
                    return False
    if use_level and (len(u) > 4 or len(v) > 4):
        # Iterative level-by-level refinement: coarse G-/G+ networks first,
        # descending one local R-tree level per round while indecisive.
        from repro.core.ssd import _granularities

        for groups in _granularities(ctx.level_groups, min(len(u), len(v))):
            u_parts = ctx.partitions(u, groups)
            v_parts = ctx.partitions(v, groups)
            if len(u_parts) <= 1 and len(v_parts) <= 1:
                continue
            if ctx.faults is not None:
                ctx.faults.fire("level-flow")
            try:
                flow_minus = _level_flow(
                    u_parts,
                    v_parts,
                    ctx.query_mbr,
                    validation=True,
                    counters=ctx.counters,
                    tracer=ctx.tracer,
                    budget=ctx.budget,
                )
                if flow_minus >= 1.0 - _FLOW_TOL:
                    # Coarse validation; still guard the U_Q != V_Q clause.
                    ctx.counters.validated_by_level += 1
                    return not stochastic_equal(
                        ctx.distance_distribution(u),
                        ctx.distance_distribution(v),
                        use_kernel=ctx.kernels,
                    )
                flow_plus = _level_flow(
                    u_parts,
                    v_parts,
                    ctx.query_mbr,
                    validation=False,
                    counters=ctx.counters,
                    tracer=ctx.tracer,
                    budget=ctx.budget,
                )
                if flow_plus < 1.0 - _FLOW_TOL:
                    ctx.counters.pruned_by_level += 1
                    return False
            except FlowBudgetError:
                # Interrupted coarse network: the filter is inconclusive, so
                # stop refining and let the exact path decide (where another
                # interruption degrades the pair conservatively).
                ctx.note_unresolved("level-flow", "flow_augmentations")
                break
    # Degree shortcuts: an unmatched V instance (no incoming edge) or a U
    # instance with no outgoing edge caps the flow strictly below 1 — decided
    # on the adjacency alone, before paying for network construction.
    adj = psd_adjacency(u, v, ctx)
    if not np.all(adj.any(axis=0)) or not np.all(adj.any(axis=1)):
        return False
    if not adj.all():
        # Complete bipartite adjacency routes every supply to any demand, so
        # the flow trivially saturates; only sparse networks need solving.
        try:
            saturated = _instance_max_flow(u, v, adj, ctx) >= 1.0 - _FLOW_TOL
        except FlowBudgetError:
            ctx.note_unresolved("maxflow", "flow_augmentations")
            return False
        if not saturated:
            return False
    return not stochastic_equal(
        ctx.distance_distribution(u),
        ctx.distance_distribution(v),
        use_kernel=ctx.kernels,
    )
