"""Vectorized batch kernels for the dominance-check hot path.

The paper's C++ system pays one arithmetic instruction per instance
comparison; a pure-Python reproduction pays a full interpreter round-trip
unless the inner loops are expressed as NumPy batch operations.  This module
collects those batch primitives in one place so every operator (S-SD, SS-SD,
P-SD, F-SD) and the NNC search share them:

* **distance matrices** — the whole ``(m, k)`` block of pair distances per
  object in one broadcast (:func:`distance_matrix`), replacing per-pair
  metric calls;
* **stochastic-order checks** — the single-scan CDF sweep of Section 5.1.1
  evaluated with ``searchsorted`` over the union support
  (:func:`cdf_dominates`), and its 3-d broadcast over all query instances at
  once (:func:`cdf_dominates_many`) for the SS-SD per-``q`` loop;
* **MBR bounds** — ``mindist``/``maxdist`` of partition MBRs against the
  whole query instance array (:func:`partition_bounds`), node children
  against the query box (:func:`children_mindist_box`), and the optimal
  Emrich et al. dominance test of many boxes at once
  (:func:`mbr_dominance_mask`);
* **halfspace tests** — the ``u <=_Q v`` adjacency of all instance pairs
  against all hull vertices in one broadcast
  (:func:`halfspace_adjacency`) for P-SD network construction;
* **statistic pruning** — the Theorem 11 (min, mean, max) screen of a new
  object against every accepted candidate at once
  (:func:`statistic_prune`).

Every kernel has a scalar twin — either here (``*_scalar``) or the original
loop implementation kept behind ``QueryContext(kernels=False)`` — and the
property tests in ``tests/test_kernels_property.py`` assert element-wise
agreement within ``1e-9`` across metrics and degenerate inputs.

Instrumentation: kernels accept an optional ``counters`` sink (a
:class:`repro.core.counters.Counters`) and record invocations, elements
processed, and scalar fallbacks via :func:`record`.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.distance import pairwise_distances, resolve_metric
from repro.geometry.halfspace import adjacency_from_vectors
from repro.obs.metrics import SIZE_BUCKETS
from repro.geometry.mbr import (
    boxes_maxdist_point,
    boxes_maxdist_points,
    boxes_mindist_box,
    boxes_mindist_point,
    boxes_mindist_points,
    mbr_corner_terms,
    mbr_dominates_batch,
    mbr_maxdist_points,
    mbr_mindist_points,
)

__all__ = [
    "boxes_maxdist_point",
    "boxes_maxdist_points",
    "boxes_mindist_box",
    "boxes_mindist_point",
    "boxes_mindist_points",
    "cdf_dominates",
    "cdf_dominates_many",
    "cdf_dominates_sorted",
    "children_mindist_box",
    "distance_matrix",
    "distance_matrix_scalar",
    "halfspace_adjacency",
    "mbr_corner_terms",
    "mbr_dominance_mask",
    "mbr_dominates_batch",
    "mbr_maxdist_points",
    "mbr_mindist_points",
    "partition_bounds",
    "points_in_box",
    "record",
    "statistic_prune",
]

_CDF_TIE = 1e-12
_MASS_TOL = 1e-6


def record(
    counters, elements: int, *, fallback: bool = False, kernel: str | None = None
) -> None:
    """Record one kernel invocation (or scalar fallback) on a counter sink.

    When the counter bag carries a metrics registry (see
    :class:`repro.obs.metrics.MetricsRegistry`; attached by query contexts
    with metrics enabled), the invocation also feeds the per-kernel batch
    size histogram ``repro_kernel_batch_elements{kernel=...}`` — the batch
    granularity distribution of the vectorised hot path.

    When the bag carries a :class:`repro.resilience.budget.Budget` (attached
    the same way by budgeted contexts), every invocation doubles as a
    deadline checkpoint — the natural cooperative-cancellation cadence of
    the vectorised hot path, on both the kernel and the fallback branch.
    """
    if counters is None:
        return
    budget = counters.budget
    if budget is not None:
        budget.checkpoint("kernel")
    if fallback:
        counters.scalar_fallbacks += 1
    else:
        counters.kernel_invocations += 1
        counters.kernel_elements += int(elements)
    metrics = counters.metrics
    if metrics is not None:
        labels = {"kernel": kernel or "unknown"}
        if fallback:
            metrics.inc("repro_kernel_scalar_fallbacks_total", 1, labels)
        else:
            metrics.observe(
                "repro_kernel_batch_elements", int(elements), labels,
                buckets=SIZE_BUCKETS,
            )


# --------------------------------------------------------------------- #
# Distance matrices
# --------------------------------------------------------------------- #


def distance_matrix(
    xs: np.ndarray, ys: np.ndarray, metric: str = "euclidean", *, counters=None
) -> np.ndarray:
    """All pair distances between two point sets as one broadcast.

    Named Minkowski metrics run as a single NumPy expression; callable
    metrics fall back to the per-pair loop (recorded as a scalar fallback).
    """
    out = pairwise_distances(xs, ys, metric)
    record(
        counters,
        out.size,
        fallback=callable(metric) and not _is_named(metric),
        kernel="distance_matrix",
    )
    return out


def _is_named(metric) -> bool:
    from repro.geometry.distance import chebyshev, euclidean, manhattan

    return metric in (euclidean, manhattan, chebyshev)


def distance_matrix_scalar(
    xs: np.ndarray, ys: np.ndarray, metric: str = "euclidean", *, counters=None
) -> np.ndarray:
    """Scalar reference: one metric call per pair (the pre-kernel path)."""
    fn = resolve_metric(metric)
    xs = np.atleast_2d(np.asarray(xs, dtype=float))
    ys = np.atleast_2d(np.asarray(ys, dtype=float))
    out = np.empty((xs.shape[0], ys.shape[0]), dtype=float)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = fn(x, y)
    record(counters, out.size, fallback=True, kernel="distance_matrix")
    return out


# --------------------------------------------------------------------- #
# Stochastic order (CDF comparison) kernels
# --------------------------------------------------------------------- #


def cdf_dominates(
    x_values: np.ndarray,
    x_probs: np.ndarray,
    y_values: np.ndarray,
    y_probs: np.ndarray,
    *,
    tol: float = 1e-9,
    counters=None,
) -> bool:
    """``X <=_st Y`` on raw sorted support arrays, fully vectorised.

    ``Pr(X <= t) >= Pr(Y <= t)`` only needs checking where the right side
    jumps — the support points of ``Y`` (between jumps ``cdf_y`` is constant
    while ``cdf_x`` is non-decreasing, so the gap is tightest at the jump).
    One ``searchsorted`` of ``Y``'s support into ``X``'s replaces the old
    two-pass sweep over the concatenated union grid; the ``+1e-12`` shift
    applies the same value-tie convention as the scalar scan in
    :func:`repro.stats.stochastic.stochastic_leq`.

    Args:
        x_values: sorted support of ``X``, shape ``(nx,)``.
        x_probs: matching probabilities.
        y_values: sorted support of ``Y``, shape ``(ny,)``.
        y_probs: matching probabilities.
    """
    xv = np.asarray(x_values, dtype=float)
    xp = np.asarray(x_probs, dtype=float)
    yv = np.asarray(y_values, dtype=float)
    yp = np.asarray(y_probs, dtype=float)
    record(counters, xv.size + yv.size, kernel="cdf_dominates")
    if abs(xp.sum() - yp.sum()) > _MASS_TOL:
        return False
    if xv.size and yv.size and xv[0] > yv[0] + _CDF_TIE and yp[0] > tol:
        # O(1) reject: Y has mass strictly below X's smallest atom.
        return False
    cum_x = np.concatenate([[0.0], np.cumsum(xp)])
    cdf_x = cum_x[np.searchsorted(xv, yv + _CDF_TIE, side="right")]
    return bool(np.all(cdf_x >= np.cumsum(yp) - tol))


def cdf_dominates_many(
    x_values: np.ndarray,
    x_probs: np.ndarray,
    y_values: np.ndarray,
    y_probs: np.ndarray,
    *,
    tol: float = 1e-9,
    counters=None,
) -> np.ndarray:
    """Row-wise ``X_i <=_st Y_i`` for stacks of distributions.

    The SS-SD per-query-instance loop as one 3-d broadcast: row ``i`` of
    ``x_values``/``y_values`` holds the support of ``U_{q_i}``/``V_{q_i}``.
    Rows need **not** be sorted — each CDF is evaluated by masked summation
    against the union grid, which is order-independent.

    Args:
        x_values: shape ``(k, nx)``.
        x_probs: shape ``(nx,)`` (shared across rows) or ``(k, nx)``.
        y_values: shape ``(k, ny)``.
        y_probs: shape ``(ny,)`` or ``(k, ny)``.

    Returns:
        Boolean array of shape ``(k,)``.
    """
    xv = np.atleast_2d(np.asarray(x_values, dtype=float))
    yv = np.atleast_2d(np.asarray(y_values, dtype=float))
    xp = np.asarray(x_probs, dtype=float)
    yp = np.asarray(y_probs, dtype=float)
    record(counters, xv.size + yv.size, kernel="cdf_dominates_many")
    grid = np.concatenate([xv, yv], axis=1) + _CDF_TIE  # (k, g)
    xpb = xp[:, None, :] if xp.ndim == 2 else xp
    ypb = yp[:, None, :] if yp.ndim == 2 else yp
    cdf_x = ((xv[:, None, :] <= grid[:, :, None]) * xpb).sum(axis=2)
    cdf_y = ((yv[:, None, :] <= grid[:, :, None]) * ypb).sum(axis=2)
    ok = np.all(cdf_x >= cdf_y - tol, axis=1)
    mass_ok = np.abs(xp.sum(axis=-1) - yp.sum(axis=-1)) <= _MASS_TOL
    return ok & mass_ok


def _union_counts(vals: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Per row: how many entries of ``vals`` are ``<=`` each grid point.

    Both inputs must be row-sorted.  A stable argsort of the concatenation
    is a vectorised row-wise merge: the rank of grid point ``p`` minus the
    ``p`` grid points before it counts the ``vals`` entries at or below it
    (``vals`` columns come first, so value ties resolve as ``<=``).
    """
    k, n = vals.shape
    g = grid.shape[1]
    order = np.argsort(np.concatenate([vals, grid], axis=1), axis=1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.broadcast_to(np.arange(n + g), (k, n + g)), axis=1)
    return ranks[:, n:] - np.arange(g)


def cdf_dominates_sorted(
    x_vals: np.ndarray,
    x_cum: np.ndarray,
    y_vals: np.ndarray,
    y_cum: np.ndarray,
    *,
    tol: float = 1e-9,
    counters=None,
) -> np.ndarray:
    """Row-wise ``X_i <=_st Y_i`` over pre-sorted rows with cached prefix sums.

    Same contract as :func:`cdf_dominates_many`, but consumes the
    :meth:`QueryContext.sorted_rows` representation — ``(k, n)`` row-sorted
    values plus ``(k, n + 1)`` cumulative masses — replacing the masked
    ``O(k g n)`` summation with ``O(k g log g)`` merge ranks.
    """
    record(counters, x_vals.size + y_vals.size, kernel="cdf_dominates_sorted")
    grid = np.sort(np.concatenate([x_vals, y_vals], axis=1), axis=1) + _CDF_TIE
    cdf_x = np.take_along_axis(x_cum, _union_counts(x_vals, grid), axis=1)
    cdf_y = np.take_along_axis(y_cum, _union_counts(y_vals, grid), axis=1)
    ok = np.all(cdf_x >= cdf_y - tol, axis=1)
    mass_ok = np.abs(x_cum[:, -1] - y_cum[:, -1]) <= _MASS_TOL
    return ok & mass_ok


# --------------------------------------------------------------------- #
# MBR bound kernels (instrumented wrappers over geometry.mbr)
# --------------------------------------------------------------------- #


def partition_bounds(
    los: np.ndarray,
    his: np.ndarray,
    points: np.ndarray,
    metric: str = "euclidean",
    *,
    counters=None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(mindist, maxdist)`` matrices of many partition MBRs × many points.

    Returns two ``(b, n)`` arrays — the inputs of the level-by-level
    bounding distributions (Section 5.1.2) built in one shot.
    """
    lo_mat = boxes_mindist_points(los, his, points, metric)
    hi_mat = boxes_maxdist_points(los, his, points, metric)
    record(counters, lo_mat.size * 2, kernel="partition_bounds")
    return lo_mat, hi_mat


def children_mindist_box(
    los: np.ndarray,
    his: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    metric: str = "euclidean",
    *,
    counters=None,
) -> np.ndarray:
    """``mindist`` of a node's child boxes to the query box; shape ``(b,)``."""
    out = boxes_mindist_box(los, his, lo, hi, metric)
    record(counters, out.size, kernel="children_mindist_box")
    return out


def mbr_dominance_mask(
    u_los: np.ndarray,
    u_his: np.ndarray,
    v_mbr,
    q_mbr,
    *,
    strict: bool = False,
    u_max_sq: np.ndarray | None = None,
    counters=None,
) -> np.ndarray:
    """Which of many ``U`` boxes dominate ``v_mbr`` w.r.t. ``q_mbr``.

    The batched Theorem 4 / F+-SD validation rule used to screen a popped
    heap entry against every accepted candidate's MBR at once.  Pass the
    cached :func:`mbr_corner_terms` of the ``U`` boxes as ``u_max_sq`` when
    testing many entries against the same candidate set.
    """
    out = mbr_dominates_batch(
        u_los,
        u_his,
        v_mbr.lo,
        v_mbr.hi,
        q_mbr.lo,
        q_mbr.hi,
        strict=strict,
        u_max_sq=u_max_sq,
    )
    record(counters, out.size, kernel="mbr_dominance_mask")
    return out


# --------------------------------------------------------------------- #
# Pruning / geometry kernels
# --------------------------------------------------------------------- #


def statistic_prune(
    u_stats: np.ndarray, v_stats: np.ndarray, *, tol: float = 1e-9, counters=None
) -> np.ndarray:
    """Theorem 11 screen of many candidate dominators against one object.

    Args:
        u_stats: ``(n, 3)`` array of accepted candidates'
            ``(min, mean, max)`` of their distance distributions.
        v_stats: ``(3,)`` statistics of the object under test.

    Returns:
        Boolean mask of the ``U`` rows that *may* dominate (every statistic
        no larger than the object's, within ``tol``); rows excluded by the
        mask are certain non-dominators.
    """
    u = np.atleast_2d(np.asarray(u_stats, dtype=float))
    v = np.asarray(v_stats, dtype=float)
    record(counters, u.size, kernel="statistic_prune")
    return np.all(u <= v[None, :] + tol, axis=1)


def points_in_box(lo: np.ndarray, hi: np.ndarray, points: np.ndarray, *, counters=None) -> np.ndarray:
    """Which points lie inside the closed box; boolean shape ``(n,)``."""
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    record(counters, pts.size, kernel="points_in_box")
    return np.all((pts >= lo[None, :]) & (pts <= hi[None, :]), axis=1)


def halfspace_adjacency(
    du: np.ndarray, dv: np.ndarray, *, tol: float = 1e-9, counters=None
) -> np.ndarray:
    """Batched ``u <=_Q v`` adjacency from hull distance vectors.

    One broadcast over all ``(u, v)`` instance pairs and all hull vertices —
    the edge set of the P-SD max-flow network (Theorem 12).
    """
    out = adjacency_from_vectors(du, dv, tol=tol)
    record(
        counters,
        du.shape[0] * dv.shape[0] * du.shape[1],
        kernel="halfspace_adjacency",
    )
    return out
