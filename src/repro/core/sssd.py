"""Strict stochastic spatial dominance SS-SD (Definition 3) — optimal w.r.t. N1 ∪ N2.

``SS-SD(U, V, Q)`` iff ``U_q <=_st V_q`` for **every** query instance ``q``
and ``U_Q != V_Q``.  The check keeps ``|Q|`` CDF indicators, one per query
instance (Section 5.1.1), and fails as soon as any goes negative.

Filters mirror S-SD with two additions from the paper:

* **cover-based pruning** — ``not S-SD(U, V, Q)`` implies
  ``not SS-SD(U, V, Q)`` (Theorem 2); the cheap statistic rule on ``U_Q`` is
  the practical incarnation, plus per-instance statistics.
* **level-by-level** bounds built per query instance.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels as K
from repro.core.context import QueryContext
from repro.geometry.mbr import mbr_dominates
from repro.objects.uncertain import UncertainObject
from repro.stats.distribution import DiscreteDistribution
from repro.stats.stochastic import stochastic_equal, stochastic_leq

_TOL = 1e-9


def bounding_distributions_per_q(
    obj: UncertainObject, ctx: QueryContext, groups: int | None = None
) -> list[tuple[DiscreteDistribution, DiscreteDistribution]]:
    """Per-query-instance optimistic/pessimistic bounds on ``U_q``."""
    parts = ctx.partitions(obj, groups)
    masses = [mass for _, _, mass in parts]
    if ctx.kernels and not callable(ctx.metric):
        los = np.stack([mbr.lo for mbr, _, _ in parts])
        his = np.stack([mbr.hi for mbr, _, _ in parts])
        lo_mat, hi_mat = K.partition_bounds(
            los, his, ctx.query.points, ctx.metric, counters=ctx.counters
        )
        return [
            (
                DiscreteDistribution(lo_mat[:, j], masses),
                DiscreteDistribution(hi_mat[:, j], masses),
            )
            for j in range(lo_mat.shape[1])
        ]
    out: list[tuple[DiscreteDistribution, DiscreteDistribution]] = []
    for q in ctx.query.points:
        lo_vals = [mbr.mindist(q, ctx.norm) for mbr, _, _ in parts]
        hi_vals = [mbr.maxdist(q, ctx.norm) for mbr, _, _ in parts]
        out.append(
            (
                DiscreteDistribution(lo_vals, masses),
                DiscreteDistribution(hi_vals, masses),
            )
        )
    return out


def ss_dominates(
    u: UncertainObject,
    v: UncertainObject,
    ctx: QueryContext,
    *,
    use_statistics: bool = True,
    use_mbr_validation: bool = True,
    use_cover_pruning: bool = True,
    use_level: bool = False,
    mbr_checked: bool = False,
) -> bool:
    """SS-SD dominance check with configurable filters.

    Args:
        u: candidate dominator.
        v: candidate dominated object.
        ctx: query context.
        use_statistics: per-query-instance min/mean/max pruning.
        use_mbr_validation: Theorem 4 MBR validation.
        use_cover_pruning: apply the S-SD statistic rule on the global
            distributions first (``not S-SD`` implies ``not SS-SD``).
        use_level: level-by-level bounding distributions per query instance.
        mbr_checked: the strict MBR validation already ran (and failed)
            upstream — skip repeating it.
    """
    ctx.counters.dominance_checks += 1
    if ctx.resilient:
        ctx.spend_check(fire=True)
    if use_mbr_validation and ctx.is_euclidean and not mbr_checked:
        ctx.counters.mbr_tests += 1
        if mbr_dominates(u.mbr, v.mbr, ctx.query_mbr, strict=True):
            ctx.counters.validated_by_mbr += 1
            return True
    if use_cover_pruning:
        ctx.counters.count_comparisons(3)
        u_min, u_mean, u_max = ctx.statistics(u)
        v_min, v_mean, v_max = ctx.statistics(v)
        if u_min > v_min + _TOL or u_mean > v_mean + _TOL or u_max > v_max + _TOL:
            ctx.counters.pruned_by_cover += 1
            return False
    if ctx.kernels:
        # One (|Q|, m) broadcast per object covers both the per-q statistic
        # screen and the final per-q CDF sweeps (3-d broadcast below).
        mat_u = ctx.distance_matrix(u)
        mat_v = ctx.distance_matrix(v)
        if use_statistics:
            ctx.counters.count_comparisons(2 * mat_u.shape[0])
            u_rmin, u_rmax = ctx.row_extremes(u)
            v_rmin, v_rmax = ctx.row_extremes(v)
            violated = np.any(
                (u_rmin > v_rmin + _TOL) | (u_rmax > v_rmax + _TOL)
            )
            if violated:
                ctx.counters.pruned_by_statistics += 1
                return False
    else:
        u_dists = ctx.per_instance_distributions(u)
        v_dists = ctx.per_instance_distributions(v)
        if use_statistics:
            for uq, vq in zip(u_dists, v_dists):
                ctx.counters.count_comparisons(2)
                if uq.min() > vq.min() + _TOL or uq.max() > vq.max() + _TOL:
                    ctx.counters.pruned_by_statistics += 1
                    return False
    if use_level:
        # Iterative level-by-level refinement, one granularity per round.
        from repro.core.ssd import _granularities

        for groups in _granularities(ctx.level_groups, min(len(u), len(v))):
            bounds_u = bounding_distributions_per_q(u, ctx, groups)
            bounds_v = bounding_distributions_per_q(v, ctx, groups)
            validated_all = True
            for (lo_u, hi_u), (lo_v, hi_v) in zip(bounds_u, bounds_v):
                if not stochastic_leq(
                    lo_u, hi_v, counter=ctx.counters, use_kernel=ctx.kernels
                ):
                    ctx.counters.pruned_by_level += 1
                    return False
                if validated_all and not (
                    stochastic_leq(
                        hi_u, lo_v, counter=ctx.counters, use_kernel=ctx.kernels
                    )
                    and not stochastic_equal(hi_u, lo_v, use_kernel=ctx.kernels)
                ):
                    validated_all = False
            if validated_all:
                ctx.counters.validated_by_level += 1
                return True
    if ctx.faults is not None:
        ctx.faults.fire("cdf-sweep")
    tracer = ctx.tracer
    if ctx.kernels:
        # All |Q| CDF indicators at once: raw (unsorted) matrix rows feed the
        # mask-based union-grid sweep, so no per-row DiscreteDistribution is
        # ever materialised on the hot path.
        ctx.counters.count_comparisons(mat_u.size + mat_v.size)
        u_vals, u_cum = ctx.sorted_rows(u)
        v_vals, v_cum = ctx.sorted_rows(v)
        if tracer.enabled:
            with tracer.span("cdf-sweep", counters=ctx.counters, op="SSSD"):
                ok = K.cdf_dominates_sorted(
                    u_vals, u_cum, v_vals, v_cum, counters=ctx.counters
                )
        else:
            ok = K.cdf_dominates_sorted(
                u_vals, u_cum, v_vals, v_cum, counters=ctx.counters
            )
        if not bool(ok.all()):
            return False
    elif tracer.enabled:
        with tracer.span("cdf-sweep", counters=ctx.counters, op="SSSD"):
            for uq, vq in zip(u_dists, v_dists):
                if not stochastic_leq(uq, vq, counter=ctx.counters):
                    return False
    else:
        for uq, vq in zip(u_dists, v_dists):
            if not stochastic_leq(uq, vq, counter=ctx.counters):
                return False
    u_q = ctx.distance_distribution(u)
    v_q = ctx.distance_distribution(v)
    return not stochastic_equal(u_q, v_q, use_kernel=ctx.kernels)
