"""Spatial dominance operators as configurable objects.

Each operator wraps one of the dominance check algorithms with a chosen
filter configuration and exposes the uniform interface used by the NNC
search (Algorithm 1):

``operator.dominates(U, V, ctx)`` — does ``U`` spatially dominate ``V``
w.r.t. the context's query?

``make_operator`` builds the five experiment configurations of Section 6:
``SSD``, ``SSSD``, ``PSD``, ``FSD`` and ``F+SD``; the keyword arguments map
onto the filter stacks of the Appendix C ablation (``BF``, ``L``, ``LP``,
``LG``, ``LGP``, ``All``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core.context import QueryContext
from repro.core.fsd import fplus_dominates, fsd_dominates
from repro.core.psd import p_dominates
from repro.core.ssd import s_dominates
from repro.core.sssd import ss_dominates
from repro.objects.uncertain import UncertainObject


class OperatorKind(Enum):
    """The five NN candidate search configurations evaluated in Section 6."""

    S_SD = "SSD"
    SS_SD = "SSSD"
    P_SD = "PSD"
    F_SD = "FSD"
    F_PLUS_SD = "F+SD"


@dataclass(frozen=True)
class _BaseOperator:
    """Shared filter switches; concrete operators interpret the relevant ones."""

    use_statistics: bool = True
    use_mbr_validation: bool = True
    use_cover_pruning: bool = True
    use_geometry: bool = True
    use_level: bool = False

    @property
    def kind(self) -> OperatorKind:
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Display name (the paper's algorithm label)."""
        return self.kind.value

    def dominates(
        self,
        u: UncertainObject,
        v: UncertainObject,
        ctx: QueryContext,
        *,
        mbr_checked: bool = False,
    ) -> bool:
        """Whether ``u`` dominates ``v`` w.r.t. ``ctx.query``.

        Args:
            mbr_checked: the caller already ran the strict Theorem 4 MBR
                validation for this pair and it failed (e.g. the search
                loop's batched screen); operators skip repeating it.
        """
        raise NotImplementedError


class SSDOperator(_BaseOperator):
    """Stochastic SD — optimal w.r.t. the all-pairs family N1."""

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.S_SD

    def dominates(
        self,
        u: UncertainObject,
        v: UncertainObject,
        ctx: QueryContext,
        *,
        mbr_checked: bool = False,
    ) -> bool:
        return s_dominates(
            u,
            v,
            ctx,
            use_statistics=self.use_statistics,
            use_mbr_validation=self.use_mbr_validation,
            use_level=self.use_level,
            mbr_checked=mbr_checked,
        )


class SSSDOperator(_BaseOperator):
    """Strict stochastic SD — optimal w.r.t. N1 ∪ N2."""

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.SS_SD

    def dominates(
        self,
        u: UncertainObject,
        v: UncertainObject,
        ctx: QueryContext,
        *,
        mbr_checked: bool = False,
    ) -> bool:
        return ss_dominates(
            u,
            v,
            ctx,
            use_statistics=self.use_statistics,
            use_mbr_validation=self.use_mbr_validation,
            use_cover_pruning=self.use_cover_pruning,
            use_level=self.use_level,
            mbr_checked=mbr_checked,
        )


class PSDOperator(_BaseOperator):
    """Peer SD — optimal w.r.t. N1 ∪ N2 ∪ N3."""

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.P_SD

    def dominates(
        self,
        u: UncertainObject,
        v: UncertainObject,
        ctx: QueryContext,
        *,
        mbr_checked: bool = False,
    ) -> bool:
        return p_dominates(
            u,
            v,
            ctx,
            use_mbr_validation=self.use_mbr_validation,
            use_cover_pruning=self.use_cover_pruning,
            use_geometry=self.use_geometry,
            use_level=self.use_level,
            mbr_checked=mbr_checked,
        )


class FSDOperator(_BaseOperator):
    """Instance-level full SD (correct but not complete w.r.t. N1,2,3)."""

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.F_SD

    def dominates(
        self,
        u: UncertainObject,
        v: UncertainObject,
        ctx: QueryContext,
        *,
        mbr_checked: bool = False,
    ) -> bool:
        return fsd_dominates(
            u, v, ctx, use_local_trees=self.use_level, mbr_checked=mbr_checked
        )


class FPlusSDOperator(_BaseOperator):
    """MBR-only full SD — the prior-work baseline [16]."""

    @property
    def kind(self) -> OperatorKind:
        return OperatorKind.F_PLUS_SD

    def dominates(
        self,
        u: UncertainObject,
        v: UncertainObject,
        ctx: QueryContext,
        *,
        mbr_checked: bool = False,
    ) -> bool:
        if mbr_checked:
            # F+-SD *is* the strict MBR test, which already failed upstream.
            return False
        return fplus_dominates(u, v, ctx)


_OPERATORS = {
    OperatorKind.S_SD: SSDOperator,
    OperatorKind.SS_SD: SSSDOperator,
    OperatorKind.P_SD: PSDOperator,
    OperatorKind.F_SD: FSDOperator,
    OperatorKind.F_PLUS_SD: FPlusSDOperator,
}


def make_operator(kind: OperatorKind | str, **flags: bool) -> _BaseOperator:
    """Build an operator by kind with the given filter flags.

    Args:
        kind: an :class:`OperatorKind` or its string value (``"SSD"``,
            ``"SSSD"``, ``"PSD"``, ``"FSD"``, ``"F+SD"``).
        **flags: any of ``use_statistics``, ``use_mbr_validation``,
            ``use_cover_pruning``, ``use_geometry``, ``use_level``.
    """
    if isinstance(kind, str):
        kind = OperatorKind(kind)
    return _OPERATORS[kind](**flags)
