"""Fault-injection smoke harness (``python -m repro.resilience.smoke``).

The CI teeth of the resilience layer: a deterministic sweep of seeded
:class:`FaultPlan` and :class:`Budget` combinations over the paper's worked
examples plus a synthetic scene, for every operator, with the batch kernels
both on and off.  For each run it asserts the two load-bearing guarantees:

* **superset invariant** — the (possibly degraded) candidate set contains
  the exact NN candidate set, and any inexact answer carries a
  :class:`DegradationReport`;
* **clean taxonomy** — nothing escapes the search: recoverable faults and
  budget exhaustion degrade, they never raise out of ``NNCSearch.run``.

Exit code 0 when every combination holds, 1 with a per-failure listing
otherwise.  The sweep is pure-deterministic (seeded RNGs everywhere), so a
CI failure replays locally with the same command.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.datasets import paper_examples
from repro.datasets.synthetic import (
    anticorrelated_centers,
    make_objects,
    make_query,
)
from repro.resilience import FAULT_SITES, Budget, FaultPlan, FaultSpec

OPERATORS = ("SSD", "SSSD", "PSD", "FSD", "F+SD")


def _scenes() -> list[tuple[str, list, object]]:
    """Named (objects, query) scenes: paper examples + one synthetic."""
    scenes = []
    for name in ("figure1", "figure3", "figure4", "figure8", "figure9"):
        scene = getattr(paper_examples, name)()
        scenes.append((name, scene.object_list(), scene.query))
    rng = np.random.default_rng(20150531)
    centers = anticorrelated_centers(20, 2, rng)
    objects = make_objects(centers, 4, 300.0, rng, on_invalid="strict")
    query = make_query(centers[0], 3, 150.0, rng)
    scenes.append(("synthetic-A20", objects, query))
    return scenes


def _budgets() -> list[tuple[str, Budget | None]]:
    return [
        ("none", None),
        ("deadline-0ms", Budget(deadline_ms=0.0)),
        ("checks-3", Budget(max_dominance_checks=3)),
        ("flow-0", Budget(max_flow_augmentations=0)),
        (
            "generous",
            Budget(
                deadline_ms=600_000.0,
                max_dominance_checks=10**12,
                max_flow_augmentations=10**12,
            ),
        ),
    ]


def _fault_plans(seed: int) -> list[tuple[str, tuple[FaultSpec, ...]]]:
    plans: list[tuple[str, tuple[FaultSpec, ...]]] = [("none", ())]
    for site in FAULT_SITES:
        plans.append((f"error@{site}", (FaultSpec(site, count=2),)))
    plans.append(
        (
            "nan@distance-matrix",
            (FaultSpec("distance-matrix", kind="nan", count=2),),
        )
    )
    plans.append(
        (
            "mixed",
            tuple(
                FaultSpec(site, count=1, probability=0.5)
                for site in FAULT_SITES
            ),
        )
    )
    return plans


def run_sweep(seed: int = 0, *, verbose: bool = False) -> list[str]:
    """Run the full sweep; returns a list of failure descriptions."""
    failures: list[str] = []
    runs = 0
    for scene_name, objects, query in _scenes():
        search = NNCSearch(objects)
        exact: dict[tuple[str, bool], frozenset] = {}
        for operator in OPERATORS:
            for kernels in (True, False):
                ctx = QueryContext(query, kernels=kernels)
                exact[(operator, kernels)] = frozenset(
                    search.run(query, operator, ctx=ctx).oids()
                )
        for operator in OPERATORS:
            for kernels in (True, False):
                want = exact[(operator, kernels)]
                for budget_name, budget in _budgets():
                    for plan_name, specs in _fault_plans(seed):
                        if budget is not None:
                            budget.reset()
                        plan = FaultPlan(specs, seed=seed) if specs else None
                        label = (
                            f"{scene_name}/{operator}/kernels={kernels}/"
                            f"budget={budget_name}/faults={plan_name}"
                        )
                        runs += 1
                        ctx = QueryContext(
                            query,
                            kernels=kernels,
                            budget=budget,
                            faults=plan,
                        )
                        try:
                            result = search.run(query, operator, ctx=ctx)
                        except Exception as exc:  # taxonomy violation
                            failures.append(
                                f"{label}: escaped "
                                f"{type(exc).__name__}: {exc}"
                            )
                            continue
                        got = frozenset(result.oids())
                        if not got >= want:
                            failures.append(
                                f"{label}: superset violated "
                                f"(missing {sorted(want - got)})"
                            )
                        elif got != want and result.degradation is None:
                            failures.append(
                                f"{label}: inexact answer with no "
                                "degradation report"
                            )
                        elif (
                            budget_name in ("none", "generous")
                            and plan_name == "none"
                            and got != want
                        ):
                            failures.append(
                                f"{label}: generous/no budget must be exact"
                            )
                        if verbose and result.degradation is not None:
                            print(f"  degraded: {label}: "
                                  f"{result.degradation.reason}")
    print(f"fault smoke: {runs} runs, {len(failures)} failure(s)")
    return failures


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the sweep, list failures, exit 1 on any."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0,
                        help="fault plan RNG seed (sweep replays exactly)")
    parser.add_argument("--verbose", action="store_true",
                        help="print every degraded combination")
    args = parser.parse_args(argv)
    failures = run_sweep(args.seed, verbose=args.verbose)
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
