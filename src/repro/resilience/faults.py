"""Deterministic, seed-driven fault injection at named pipeline sites.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers plus a seed.
Instrumented sites in the search pipeline call ``plan.fire(site)`` (raise an
:class:`InjectedFault` / sleep) or ``plan.corrupt(site, array)`` (NaN/Inf
poisoning of numeric intermediates).  The site vocabulary reuses the PR 2
tracer span names, so a fault lands exactly where the trace says time goes:

``search``, ``rtree-descent``, ``entry-prune``, ``dominance-check``,
``distance-matrix``, ``cdf-scan``, ``cdf-sweep``, ``hull-extremes``,
``level-flow``, ``maxflow``.

Everything is deterministic given ``seed``: probabilistic triggers draw from
a private ``random.Random`` and per-site visit counters drive ``after`` /
``count`` windows, so a failing test seed replays exactly.

The harness exists to *prove degradation*: the search driver and operators
catch :class:`InjectedFault` / :class:`NumericalFault` at per-decision
granularity and fall back to conservative non-dominance (a certified
superset, per the containment chain) instead of crashing or silently
dropping candidates.  ``plan.fire`` is only ever called behind
``if faults is not None`` guards, so unfaulted queries pay one attribute
check per site.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

import numpy as np

from repro.resilience.budget import ResilienceError

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "NumericalFault",
]

FAULT_SITES: tuple[str, ...] = (
    "search",
    "rtree-descent",
    "entry-prune",
    "dominance-check",
    "distance-matrix",
    "cdf-scan",
    "cdf-sweep",
    "hull-extremes",
    "level-flow",
    "maxflow",
)
"""Named injection sites (the PR 2 tracer span vocabulary + distance-matrix)."""


class InjectedFault(ResilienceError):
    """Exception raised by a ``kind="error"`` fault trigger.

    Attributes:
        site: injection site name.
        kind: always ``"error"`` for raised faults.
    """

    def __init__(self, site: str, kind: str = "error") -> None:
        super().__init__(f"injected fault ({kind}) at {site}")
        self.site = site
        self.kind = kind


class NumericalFault(ResilienceError):
    """Non-finite data detected in a numeric intermediate under fault testing.

    Raised by finiteness guards (e.g. on the query distance matrix) when a
    ``kind="nan"`` fault corrupted the data.  Recoverable: the affected
    dominance decision defaults to conservative non-dominance.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"non-finite values detected at {site}")
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """One fault trigger.

    Args:
        site: where to fire (one of :data:`FAULT_SITES`).
        kind: ``"error"`` raises :class:`InjectedFault`; ``"latency"`` sleeps
            ``latency_ms``; ``"nan"`` poisons arrays passed to
            :meth:`FaultPlan.corrupt` at this site.
        count: how many times this spec fires (``None`` = unlimited).
        after: skip the first ``after`` eligible visits to the site.
        probability: chance of firing per eligible visit (seeded RNG).
        latency_ms: sleep duration for ``kind="latency"``.
        fraction: fraction of array entries poisoned for ``kind="nan"``.
        value: poison value (default NaN; use ``float("inf")`` for Inf).
    """

    site: str
    kind: str = "error"
    count: int | None = 1
    after: int = 0
    probability: float = 1.0
    latency_ms: float = 0.0
    fraction: float = 0.25
    value: float = float("nan")

    def __post_init__(self) -> None:
        if self.kind not in ("error", "nan", "latency"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")


@dataclass
class FaultPlan:
    """A seeded set of fault triggers, attached via ``QueryContext(faults=)``.

    Per-site visit counters and a private ``random.Random(seed)`` make every
    firing decision deterministic, so ``FaultPlan(specs, seed=s)`` replays
    identically run after run.  One plan is single-use state; build a fresh
    plan (same specs, same seed) to replay.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)
    _visits: dict[str, int] = field(init=False, repr=False)
    _fired: dict[int, int] = field(init=False, repr=False)
    fired_events: list[tuple[str, str]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)
        self._rng = random.Random(self.seed)
        self._visits = {}
        self._fired = {}
        self.fired_events = []

    # ------------------------------------------------------------------ #

    def _eligible(self, site: str, kinds: tuple[str, ...]) -> list[FaultSpec]:
        visit = self._visits.get(site, 0)
        self._visits[site] = visit + 1
        out = []
        for i, spec in enumerate(self.specs):
            if spec.site != site or spec.kind not in kinds:
                continue
            if visit < spec.after:
                continue
            if spec.count is not None and self._fired.get(i, 0) >= spec.count:
                continue
            if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                continue
            self._fired[i] = self._fired.get(i, 0) + 1
            out.append(spec)
        return out

    def fire(self, site: str) -> None:
        """Fire any matching ``error``/``latency`` spec at ``site``.

        Raises:
            InjectedFault: when an ``error`` spec triggers.
        """
        for spec in self._eligible(site, ("error", "latency")):
            self.fired_events.append((site, spec.kind))
            if spec.kind == "latency":
                time.sleep(spec.latency_ms / 1000.0)
            else:
                raise InjectedFault(site)

    def corrupt(self, site: str, arr: np.ndarray) -> np.ndarray:
        """Poison a copy of ``arr`` if a ``nan`` spec triggers at ``site``.

        Returns the original array untouched when nothing fires, so callers
        can pass intermediates through unconditionally.
        """
        for spec in self._eligible(site, ("nan",)):
            self.fired_events.append((site, spec.kind))
            out = np.array(arr, dtype=float, copy=True)
            flat = out.reshape(-1)
            n = max(1, int(round(spec.fraction * flat.size)))
            idx = self._rng.sample(range(flat.size), min(n, flat.size))
            flat[idx] = spec.value
            return out
        return arr

    def fired_count(self) -> int:
        """Total triggers fired so far."""
        return len(self.fired_events)
