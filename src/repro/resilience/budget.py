"""Per-query resource budgets and certified graceful degradation.

A :class:`Budget` bounds what one NNC search may spend: a wall-clock
deadline, a cap on dominance checks, and a cap on max-flow augmentation
iterations.  It is threaded through :class:`repro.core.context.QueryContext`
and consulted at cooperative checkpoints in the search driver, all five
dominance operators, the batch kernels, R-tree descent, and the Dinic loop.

Exhaustion is *not* an error for the search: the containment chain of the
paper (``NNC(S-SD) ⊆ NNC(SS-SD) ⊆ NNC(P-SD) ⊆ NNC(F-SD)``, Theorem 3) rests
on the fact that skipping a dominance decision can only *keep* a candidate.
Treating every unresolved check as "not dominated" therefore yields a
certified **superset** of the exact NN candidate set — the driver finishes by
conservative non-dominance and flags the answer with a
:class:`DegradationReport` instead of failing.

The ladder has two rungs:

* **deadline / dominance-check cap** — raises :class:`BudgetExhausted`; the
  driver drains the remaining search frontier without further checks.
* **flow-augmentation cap** — never raises out of P-SD; each interrupted
  max-flow run is individually recorded as an unresolved check and decided
  by conservative non-dominance, and the search continues.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Budget", "BudgetExhausted", "DegradationReport", "ResilienceError"]


class ResilienceError(Exception):
    """Base class of the resilience layer's control-flow exceptions."""


class BudgetExhausted(ResilienceError):
    """A per-query budget ran out at a cooperative checkpoint.

    Attributes:
        reason: which limit tripped (``"deadline"`` or
            ``"dominance_checks"``).
        site: checkpoint site name (reuses the tracer span vocabulary:
            ``"search"``, ``"rtree-descent"``, ``"dominance-check"``,
            ``"maxflow"``, ``"kernel"``, ...).
    """

    def __init__(self, reason: str, site: str, message: str | None = None) -> None:
        super().__init__(message or f"budget exhausted ({reason}) at {site}")
        self.reason = reason
        self.site = site


class Budget:
    """Resource budget for one query, spent at cooperative checkpoints.

    Args:
        deadline_ms: wall-clock limit for the search, in milliseconds.  The
            clock is armed lazily at the first checkpoint (the search driver
            arms it explicitly at search start).
        max_dominance_checks: cap on dominance checks (mirrors the
            ``dominance_checks`` counter exactly, including the nested
            SS-SD call inside P-SD and the batch screens' scalar-equivalent
            accounting).
        max_flow_augmentations: cap on Dinic augmenting paths across all
            max-flow runs of the query.  Exhaustion degrades only the flow
            based decisions (P-SD falls back to conservative non-dominance
            per check); it never aborts the search.

    A budget is single-query state; call :meth:`reset` to reuse one across
    queries.  All checks are ``None``-safe no-ops when unset, and every
    checkpoint site guards on ``ctx.budget is not None``, so an unbudgeted
    query pays one attribute check per site.
    """

    __slots__ = (
        "deadline_ms",
        "max_dominance_checks",
        "max_flow_augmentations",
        "dominance_checks_spent",
        "flow_augmentations_spent",
        "exhausted",
        "_t0",
        "_deadline_at",
    )

    def __init__(
        self,
        *,
        deadline_ms: float | None = None,
        max_dominance_checks: int | None = None,
        max_flow_augmentations: int | None = None,
    ) -> None:
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError("deadline_ms must be non-negative")
        if max_dominance_checks is not None and max_dominance_checks < 0:
            raise ValueError("max_dominance_checks must be non-negative")
        if max_flow_augmentations is not None and max_flow_augmentations < 0:
            raise ValueError("max_flow_augmentations must be non-negative")
        self.deadline_ms = deadline_ms
        self.max_dominance_checks = max_dominance_checks
        self.max_flow_augmentations = max_flow_augmentations
        self.reset()

    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Zero the spent tallies and disarm the clock (reuse across queries)."""
        self.dominance_checks_spent = 0
        self.flow_augmentations_spent = 0
        self.exhausted: BudgetExhausted | None = None
        self._t0: float | None = None
        self._deadline_at: float | None = None

    def arm(self) -> None:
        """Start the wall clock (idempotent; auto-called at first checkpoint)."""
        if self._t0 is None:
            self._t0 = time.perf_counter()
            if self.deadline_ms is not None:
                self._deadline_at = self._t0 + self.deadline_ms / 1000.0

    def elapsed_ms(self) -> float:
        """Milliseconds since the budget was armed (0 before arming)."""
        return 0.0 if self._t0 is None else (time.perf_counter() - self._t0) * 1e3

    # ------------------------------------------------------------------ #

    def checkpoint(self, site: str) -> None:
        """Deadline-only checkpoint for cheap loops (node visits, kernels).

        Raises:
            BudgetExhausted: when the wall-clock deadline has passed.
        """
        if self._t0 is None:
            self.arm()
        if self._deadline_at is not None and time.perf_counter() > self._deadline_at:
            self._trip("deadline", site)

    def spend_dominance_checks(self, n: int = 1, site: str = "dominance-check") -> None:
        """Charge ``n`` dominance checks; checks the cap and the deadline.

        ``n`` mirrors the counter bumps of the batch-equivalent accounting in
        the search driver (a kernel screen that settles a pair charges the
        same as the scalar operator call it replaced), so ``kernels=True``
        and ``kernels=False`` runs spend identically.

        Raises:
            BudgetExhausted: cap reached or deadline passed.
        """
        self.dominance_checks_spent += n
        if (
            self.max_dominance_checks is not None
            and self.dominance_checks_spent > self.max_dominance_checks
        ):
            self._trip("dominance_checks", site)
        self.checkpoint(site)

    def spend_augmentations(self, n: int = 1) -> None:
        """Charge ``n`` max-flow augmentation iterations (never raises)."""
        self.flow_augmentations_spent += n

    def remaining_augmentations(self) -> int | None:
        """Augmentations left under the cap (``None`` = unlimited)."""
        if self.max_flow_augmentations is None:
            return None
        return max(0, self.max_flow_augmentations - self.flow_augmentations_spent)

    def _trip(self, reason: str, site: str) -> None:
        exc = BudgetExhausted(reason, site)
        if self.exhausted is None:
            self.exhausted = exc
        raise exc

    # ------------------------------------------------------------------ #

    def limits(self) -> dict[str, float | int | None]:
        """The configured caps (for reports)."""
        return {
            "deadline_ms": self.deadline_ms,
            "max_dominance_checks": self.max_dominance_checks,
            "max_flow_augmentations": self.max_flow_augmentations,
        }

    def spent(self) -> dict[str, float | int]:
        """What the query has consumed so far (for reports)."""
        return {
            "elapsed_ms": self.elapsed_ms(),
            "dominance_checks": self.dominance_checks_spent,
            "flow_augmentations": self.flow_augmentations_spent,
        }


@dataclass
class DegradationReport:
    """Why and how a search answer is a flagged superset instead of exact.

    Attached to :class:`repro.core.nnc.NNCResult` (``None`` for exact
    answers).  The superset guarantee holds regardless of the content here:
    every unresolved dominance decision defaulted to "not dominated", which
    can only keep candidates.

    Attributes:
        reason: first cause (``"deadline"``, ``"dominance_checks"``,
            ``"flow_augmentations"``, ``"fault"``).
        site: checkpoint / fault site of the first cause.
        phase: how far the search got — ``"traversal"`` when the frontier
            was drained conservatively mid-search, ``"completed"`` when the
            traversal finished but individual checks were unresolved.
        unresolved_checks: dominance decisions defaulted conservatively.
        conservative_accepts: objects admitted without a completed check
            (each also counts as one unresolved check).
        elapsed_ms: wall-clock of the search when the report was built.
        budget: configured caps (``None`` when no budget was set).
        spent: budget consumption (empty when no budget was set).
        events: first few ``(site, reason)`` unresolved events, in order.
    """

    reason: str
    site: str
    phase: str
    unresolved_checks: int
    conservative_accepts: int
    elapsed_ms: float
    budget: dict[str, Any] | None = None
    spent: dict[str, Any] = field(default_factory=dict)
    events: list[tuple[str, str]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view (CLI ``--breakdown`` / JSON logging)."""
        return {
            "reason": self.reason,
            "site": self.site,
            "phase": self.phase,
            "unresolved_checks": self.unresolved_checks,
            "conservative_accepts": self.conservative_accepts,
            "elapsed_ms": self.elapsed_ms,
            "budget": self.budget,
            "spent": dict(self.spent),
            "events": [list(e) for e in self.events],
        }

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"DEGRADED ({self.reason} at {self.site}, phase={self.phase}): "
            f"{self.unresolved_checks} unresolved check(s), "
            f"{self.conservative_accepts} conservative accept(s) — "
            "result is a certified superset of the exact NNC"
        )
