"""Resilience layer: budgets, graceful degradation, and fault injection.

See DESIGN.md §12.  The core guarantee: any search interrupted by a budget
or a recoverable fault still returns a *certified superset* of the exact NN
candidate set, because every unresolved dominance decision defaults to
"not dominated" (the paper's containment chain makes that conservative).
"""

from repro.resilience.budget import (
    Budget,
    BudgetExhausted,
    DegradationReport,
    ResilienceError,
)
from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NumericalFault,
)

#: Exceptions a single dominance decision may absorb by falling back to
#: conservative non-dominance.  ``BudgetExhausted`` is deliberately NOT here:
#: it aborts the traversal (the driver drains the frontier instead).
RECOVERABLE_FAULTS = (InjectedFault, NumericalFault)

__all__ = [
    "Budget",
    "BudgetExhausted",
    "DegradationReport",
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "NumericalFault",
    "RECOVERABLE_FAULTS",
    "ResilienceError",
]
