"""Uncertain / multi-valued objects and their distance distributions.

``UncertainObject`` stores instance coordinates with probabilities, exposes
the paper's distance distributions (``U_Q`` over all pair-wise distances and
``U_q`` per query instance; Section 2.1), lazily caches its MBR and a local
R-tree, and supports weight normalisation for multi-valued objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.geometry.distance import pairwise_distances
from repro.geometry.mbr import MBR
from repro.stats.distribution import DiscreteDistribution

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.index.rtree import RTree

_PROB_TOL = 1e-9


class UncertainObject:
    """An object with multiple weighted instances (a discrete random variable).

    Attributes:
        points: instance coordinates, shape ``(m, d)``.
        probs: instance probabilities, shape ``(m,)``; sums to 1 after
            normalisation.
        oid: optional identifier used by indexes and result sets.
    """

    __slots__ = ("points", "probs", "oid", "_mbr", "_local_tree")

    def __init__(
        self,
        points: np.ndarray | Sequence[Sequence[float]],
        probs: np.ndarray | Sequence[float] | None = None,
        *,
        oid: int | str | None = None,
        normalize: bool = False,
    ) -> None:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.size == 0:
            raise ValueError("an object needs at least one instance")
        if probs is None:
            ps = np.full(pts.shape[0], 1.0 / pts.shape[0])
        else:
            ps = np.asarray(probs, dtype=float)
        if ps.shape != (pts.shape[0],):
            raise ValueError("probs must be a vector matching the instance count")
        if np.any(ps < -_PROB_TOL):
            raise ValueError("instance probabilities must be non-negative")
        total = float(ps.sum())
        if normalize:
            if total <= 0:
                raise ValueError("cannot normalize zero total weight")
            ps = ps / total
        elif abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"instance probabilities sum to {total}; pass normalize=True "
                "for multi-valued objects with raw weights"
            )
        # One contiguous float64 copy up front: every batch kernel consumes
        # these arrays directly, so no per-call conversion happens later.
        self.points = np.ascontiguousarray(pts, dtype=np.float64)
        self.probs = np.ascontiguousarray(ps, dtype=np.float64)
        self.oid = oid
        self._mbr: MBR | None = None
        self._local_tree: "RTree | None" = None

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return int(self.points.shape[0])

    def __repr__(self) -> str:
        return (
            f"UncertainObject(oid={self.oid!r}, m={len(self)}, "
            f"d={self.dim}, mbr={self.mbr.lo.tolist()}..{self.mbr.hi.tolist()})"
        )

    @property
    def dim(self) -> int:
        """Dimensionality of the instance space."""
        return int(self.points.shape[1])

    @property
    def mbr(self) -> MBR:
        """Minimal bounding rectangle of the instances (cached)."""
        if self._mbr is None:
            self._mbr = MBR.of_points(self.points)
        return self._mbr

    def local_rtree(self, fanout: int = 4) -> "RTree":
        """Local R-tree over the instances (fan-out 4 as in the paper)."""
        if self._local_tree is None:
            from repro.index.rtree import RTree

            entries = [
                (MBR(p, p), (i, float(self.probs[i])))
                for i, p in enumerate(self.points)
            ]
            self._local_tree = RTree.bulk_load(entries, max_entries=fanout)
        return self._local_tree

    # ------------------------------------------------------------------ #
    # Distance distributions (Section 2.1, Example 1)
    # ------------------------------------------------------------------ #

    def distance_distribution(
        self, query: "UncertainObject", metric: str = "euclidean"
    ) -> DiscreteDistribution:
        """``U_Q``: all pair-wise distances with product probabilities."""
        dists = pairwise_distances(query.points, self.points, metric)  # (|Q|, m)
        probs = np.outer(query.probs, self.probs)
        return DiscreteDistribution(dists.ravel(), probs.ravel())

    def distance_distribution_to_point(
        self, q: np.ndarray, q_prob: float = 1.0, metric: str = "euclidean"
    ) -> DiscreteDistribution:
        """``U_q``: distances to one query instance, instance probabilities.

        ``q_prob`` only scales the mass (the paper keeps ``U_q`` mass 1; the
        scaled form is convenient when mixing ``U_q`` into ``U_Q``).
        """
        dists = pairwise_distances(np.atleast_2d(q), self.points, metric).ravel()
        return DiscreteDistribution(dists, self.probs * q_prob)

    def min_distance(
        self, query: "UncertainObject", metric: str = "euclidean"
    ) -> float:
        """Smallest pair-wise distance ``min(U_Q)`` (exact, no index)."""
        return float(pairwise_distances(query.points, self.points, metric).min())

    def max_distance(
        self, query: "UncertainObject", metric: str = "euclidean"
    ) -> float:
        """Largest pair-wise distance ``max(U_Q)``."""
        return float(pairwise_distances(query.points, self.points, metric).max())


def normalize_objects(
    objects: Iterable[UncertainObject],
) -> list[UncertainObject]:
    """Return objects with probabilities rescaled to total mass 1.

    The paper's normalisation step for multi-valued objects: NN ranks are
    preserved whenever all objects carry the same total weight mass, which is
    the common case the paper assumes (Section 1).
    """
    out = []
    for obj in objects:
        out.append(
            UncertainObject(obj.points, obj.probs, oid=obj.oid, normalize=True)
        )
    return out
