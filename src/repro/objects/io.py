"""Serialisation of multi-instance datasets.

Objects round-trip through a single ``.npz`` archive: instance coordinates
are concatenated into one matrix with an offsets vector, probabilities
likewise, and object ids are stored as strings.  This keeps million-instance
datasets loadable in milliseconds and makes experiment datasets cacheable
across runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro.objects.uncertain import UncertainObject

_FORMAT_VERSION = 1


def save_objects(path: str | Path, objects: Sequence[UncertainObject]) -> None:
    """Write a dataset of multi-instance objects to ``path`` (.npz).

    Raises:
        ValueError: on an empty dataset or mixed dimensionalities.
    """
    objects = list(objects)
    if not objects:
        raise ValueError("refusing to save an empty dataset")
    dim = objects[0].dim
    if any(obj.dim != dim for obj in objects):
        raise ValueError("all objects must share one dimensionality")
    counts = np.array([len(obj) for obj in objects], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    points = np.vstack([obj.points for obj in objects])
    probs = np.concatenate([obj.probs for obj in objects])
    oids = np.array(
        ["" if obj.oid is None else str(obj.oid) for obj in objects]
    )
    np.savez_compressed(
        Path(path),
        version=np.int64(_FORMAT_VERSION),
        offsets=offsets,
        points=points,
        probs=probs,
        oids=oids,
    )


def load_objects(path: str | Path) -> list[UncertainObject]:
    """Read a dataset written by :func:`save_objects`.

    Object ids are restored as ``int`` when they round-trip through ``int``
    cleanly, as strings otherwise, and as positional indices when they were
    ``None`` at save time.
    """
    with np.load(Path(path), allow_pickle=False) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported dataset format version {version}")
        offsets = data["offsets"]
        points = data["points"]
        probs = data["probs"]
        oids = data["oids"]
    objects: list[UncertainObject] = []
    for i in range(len(offsets) - 1):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        raw = str(oids[i])
        if raw == "":
            oid: int | str = i
        else:
            try:
                oid = int(raw)
            except ValueError:
                oid = raw
        objects.append(
            UncertainObject(points[lo:hi], probs[lo:hi], oid=oid, normalize=True)
        )
    return objects
