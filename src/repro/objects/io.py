"""Serialisation of multi-instance datasets.

Objects round-trip through a single ``.npz`` archive: instance coordinates
are concatenated into one matrix with an offsets vector, probabilities
likewise, and object ids are stored as strings.  This keeps million-instance
datasets loadable in milliseconds and makes experiment datasets cacheable
across runs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.objects.uncertain import UncertainObject
from repro.objects.validate import DatasetFormatError, validate_rows

_FORMAT_VERSION = 1
_REQUIRED_FIELDS = ("version", "offsets", "points", "probs", "oids")


def save_objects(path: str | Path, objects: Sequence[UncertainObject]) -> None:
    """Write a dataset of multi-instance objects to ``path`` (.npz).

    Raises:
        ValueError: on an empty dataset or mixed dimensionalities.
    """
    objects = list(objects)
    if not objects:
        raise ValueError("refusing to save an empty dataset")
    dim = objects[0].dim
    if any(obj.dim != dim for obj in objects):
        raise ValueError("all objects must share one dimensionality")
    counts = np.array([len(obj) for obj in objects], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)])
    points = np.vstack([obj.points for obj in objects])
    probs = np.concatenate([obj.probs for obj in objects])
    oids = np.array(
        ["" if obj.oid is None else str(obj.oid) for obj in objects]
    )
    final = Path(path)
    if final.suffix != ".npz":
        final = final.with_name(final.name + ".npz")
    # Atomic publish: savez into a temp name (kept .npz so numpy doesn't
    # append a suffix), then rename — a crash never leaves a torn archive.
    tmp = final.with_name(final.name + ".tmp.npz")
    np.savez_compressed(
        tmp,
        version=np.int64(_FORMAT_VERSION),
        offsets=offsets,
        points=points,
        probs=probs,
        oids=oids,
    )
    os.replace(tmp, final)


def load_objects(
    path: str | Path,
    *,
    on_invalid: str | None = None,
    metrics=None,
):
    """Read a dataset written by :func:`save_objects`.

    Object ids are restored as ``int`` when they round-trip through ``int``
    cleanly, as strings otherwise, and as positional indices when they were
    ``None`` at save time.

    Args:
        path: ``.npz`` archive written by :func:`save_objects`.
        on_invalid: optional quarantine policy (``"strict"``, ``"repair"``,
            ``"skip"``; see :mod:`repro.objects.validate`).  When set, the
            decoded rows additionally pass semantic validation and the return
            value becomes ``(objects, ValidationReport)``.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry` for
            quarantine tallies (only used with ``on_invalid``).

    Returns:
        ``list[UncertainObject]``, or ``(objects, report)`` when
        ``on_invalid`` is set.

    Raises:
        DatasetFormatError: the archive is structurally corrupt — always
            raised regardless of ``on_invalid`` (a file that cannot be
            decoded has no rows to quarantine).  Carries ``path``, ``row``,
            and ``field`` attributes locating the corruption.
        repro.objects.validate.InvalidInputError: semantic issues under
            ``on_invalid="strict"``.
    """
    path = Path(path)
    try:
        archive = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except Exception as exc:
        raise DatasetFormatError(
            f"not a readable dataset archive ({exc})", path=path
        ) from exc
    with archive as data:
        for name in _REQUIRED_FIELDS:
            if name not in data.files:
                raise DatasetFormatError(
                    "missing archive field", path=path, field=name
                )
        try:
            version = int(data["version"])
        except (TypeError, ValueError) as exc:
            raise DatasetFormatError(
                "version is not an integer", path=path, field="version"
            ) from exc
        if version != _FORMAT_VERSION:
            raise DatasetFormatError(
                f"unsupported dataset format version {version}",
                path=path,
                field="version",
            )
        offsets = data["offsets"]
        points = data["points"]
        probs = data["probs"]
        oids = data["oids"]
    if offsets.ndim != 1 or offsets.size < 2 or int(offsets[0]) != 0:
        raise DatasetFormatError(
            "offsets must be a 1-d vector starting at 0",
            path=path,
            field="offsets",
        )
    if points.ndim != 2:
        raise DatasetFormatError(
            f"points must be a 2-d matrix, got shape {points.shape}",
            path=path,
            field="points",
        )
    if probs.shape != (points.shape[0],):
        raise DatasetFormatError(
            f"probs shape {probs.shape} does not match {points.shape[0]} "
            "instance rows",
            path=path,
            field="probs",
        )
    n_objects = len(offsets) - 1
    if oids.shape != (n_objects,):
        raise DatasetFormatError(
            f"oids shape {oids.shape} does not match {n_objects} objects",
            path=path,
            field="oids",
        )
    if int(offsets[-1]) != points.shape[0]:
        raise DatasetFormatError(
            f"offsets end at {int(offsets[-1])} but there are "
            f"{points.shape[0]} instance rows",
            path=path,
            field="offsets",
        )
    rows: list[tuple[np.ndarray, np.ndarray, int | str]] = []
    for i in range(n_objects):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        if hi < lo:
            raise DatasetFormatError(
                f"offsets decrease ({lo} -> {hi})", path=path, row=i,
                field="offsets",
            )
        raw = str(oids[i])
        if raw == "":
            oid: int | str = i
        else:
            try:
                oid = int(raw)
            except ValueError:
                oid = raw
        rows.append((points[lo:hi], probs[lo:hi], oid))
    if on_invalid is not None:
        return validate_rows(rows, on_invalid=on_invalid, metrics=metrics)
    objects: list[UncertainObject] = []
    for i, (pts, ps, oid) in enumerate(rows):
        try:
            objects.append(UncertainObject(pts, ps, oid=oid, normalize=True))
        except ValueError as exc:
            raise DatasetFormatError(str(exc), path=path, row=i) from exc
    return objects
