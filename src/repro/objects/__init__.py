"""Multi-instance object models.

An object is a set of weighted instances (points).  The paper treats both
*discrete uncertain objects* (instance weights are occurrence probabilities,
exclusive under possible-world semantics) and *multi-valued objects*
(co-existing weighted instances); both are normalised to a discrete random
variable with total mass 1 for dominance checking (Section 1 / 2.1).
"""

from repro.objects.io import load_objects, save_objects
from repro.objects.match import Match, MatchTuple, is_valid_match
from repro.objects.uncertain import UncertainObject, normalize_objects
from repro.objects.validate import (
    POLICIES,
    DatasetFormatError,
    InvalidInputError,
    ValidationIssue,
    ValidationReport,
    validate_objects,
    validate_rows,
)

__all__ = [
    "DatasetFormatError",
    "InvalidInputError",
    "Match",
    "MatchTuple",
    "POLICIES",
    "UncertainObject",
    "ValidationIssue",
    "ValidationReport",
    "is_valid_match",
    "load_objects",
    "normalize_objects",
    "save_objects",
    "validate_objects",
    "validate_rows",
]
