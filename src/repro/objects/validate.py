"""Input validation and quarantine for multi-instance datasets.

Dirty rows — NaN/Inf coordinates, negative or non-finite weights, empty
instance sets, dimensionality mismatches — are caught *before* they reach the
search pipeline, where they would otherwise surface as silent wrong answers
(NaN never compares, so a poisoned distance "loses" every dominance check).

Three quarantine policies, selected by ``on_invalid``:

* ``"strict"`` — any issue rejects the whole dataset with
  :class:`InvalidInputError` (carries the full :class:`ValidationReport`).
* ``"repair"`` — fix what is safely fixable (drop non-finite instances, zero
  out negative/non-finite weights, renormalise); objects that cannot be
  repaired (no finite instance left, zero total mass, wrong dimensionality)
  are quarantined (dropped) and recorded.
* ``"skip"`` — quarantine any object with an issue, keep the rest.

Structural corruption of a serialised dataset (bad archive, inconsistent
offsets, shape mismatches) is a different failure class and raises
:class:`DatasetFormatError` from :func:`repro.objects.io.load_objects`
regardless of policy — a file that cannot be decoded has no rows to
quarantine.

Every recorded issue can be exported through the PR 2 metrics layer as
``repro_validation_issues_total{code, action}`` by passing a
:class:`repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.objects.uncertain import UncertainObject

__all__ = [
    "POLICIES",
    "DatasetFormatError",
    "InvalidInputError",
    "ValidationIssue",
    "ValidationReport",
    "validate_objects",
    "validate_rows",
]

POLICIES: tuple[str, ...] = ("strict", "repair", "skip")
"""Accepted ``on_invalid`` policies."""


class DatasetFormatError(ValueError):
    """A serialised dataset is structurally corrupt (undecodable).

    Attributes:
        path: dataset file the error came from.
        row: object index of the offending record (``None`` for file-level
            problems such as a bad archive or version).
        field: archive field involved (``"version"``, ``"offsets"``,
            ``"points"``, ``"probs"``, ``"oids"``; ``None`` for archive-level
            problems).
    """

    def __init__(
        self,
        message: str,
        *,
        path: Any = None,
        row: int | None = None,
        field: str | None = None,
    ) -> None:
        where = str(path) if path is not None else "<dataset>"
        if row is not None:
            where += f", object #{row}"
        if field is not None:
            where += f", field {field!r}"
        super().__init__(f"{where}: {message}")
        self.path = path
        self.row = row
        self.field = field


class InvalidInputError(ValueError):
    """Dataset rejected under the ``strict`` quarantine policy.

    Attributes:
        report: the full :class:`ValidationReport` (every issue found, not
            just the first).
    """

    def __init__(self, report: "ValidationReport") -> None:
        super().__init__(
            f"invalid input rejected (strict): {len(report.issues)} issue(s), "
            f"first: {report.issues[0].message if report.issues else '?'}"
        )
        self.report = report


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in one object's raw data.

    Attributes:
        row: object index in the input sequence.
        oid: object id when one was present (``None`` otherwise).
        field: which part was bad (``"points"``, ``"probs"``,
            ``"instances"``, ``"dim"``).
        code: machine-readable issue code (``"non-finite-coord"``,
            ``"non-finite-weight"``, ``"negative-weight"``, ``"zero-mass"``,
            ``"empty-instances"``, ``"dim-mismatch"``, ``"count-mismatch"``).
        message: human-readable description.
        action: what the policy did — ``"repaired"``, ``"dropped"``, or
            ``"rejected"`` (strict).
    """

    row: int
    oid: Any
    field: str
    code: str
    message: str
    action: str


@dataclass
class ValidationReport:
    """Outcome of validating one dataset under one policy.

    Attributes:
        policy: the ``on_invalid`` policy applied.
        n_input: objects examined.
        n_kept: objects that survived (clean or repaired).
        n_repaired: objects kept only after repair.
        n_dropped: objects quarantined.
        issues: every issue found, in input order.
    """

    policy: str
    n_input: int = 0
    n_kept: int = 0
    n_repaired: int = 0
    n_dropped: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no issues were found at all."""
        return not self.issues

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        if self.clean:
            return f"validated {self.n_input} object(s): clean"
        return (
            f"validated {self.n_input} object(s) [{self.policy}]: "
            f"{self.n_kept} kept ({self.n_repaired} repaired), "
            f"{self.n_dropped} quarantined, {len(self.issues)} issue(s)"
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view (CLI ``--breakdown`` / JSON logging)."""
        return {
            "policy": self.policy,
            "n_input": self.n_input,
            "n_kept": self.n_kept,
            "n_repaired": self.n_repaired,
            "n_dropped": self.n_dropped,
            "issues": [
                {
                    "row": i.row,
                    "oid": i.oid,
                    "field": i.field,
                    "code": i.code,
                    "message": i.message,
                    "action": i.action,
                }
                for i in self.issues
            ],
        }

    def export(self, metrics: Any) -> None:
        """Feed the issue tallies into a :class:`MetricsRegistry`."""
        for issue in self.issues:
            metrics.inc(
                "repro_validation_issues_total",
                1,
                {"code": issue.code, "action": issue.action},
            )
        if self.n_dropped:
            metrics.inc(
                "repro_quarantined_objects_total",
                self.n_dropped,
                {"policy": self.policy},
            )


# --------------------------------------------------------------------- #


def _infer_dim(point_rows: Iterable[Any]) -> int | None:
    """Dataset dimensionality: that of the first non-empty point matrix.

    Shape evidence only — a row later quarantined for NaNs or bad weights
    still anchors the dimensionality, so the reference does not depend on
    which rows happen to survive.
    """
    for points in point_rows:
        try:
            pts = np.atleast_2d(np.asarray(points, dtype=float))
        except (TypeError, ValueError):
            continue
        if pts.size:
            return int(pts.shape[1])
    return None


def _check_one(
    points: Any,
    probs: Any,
    dim_ref: int | None,
    repair: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, list[tuple[str, str, str, bool]]]:
    """Validate (and under ``repair`` fix) one object's raw arrays.

    Returns ``(points, probs, findings)`` where each finding is
    ``(field, code, message, fixed)``; ``points is None`` means the object is
    unrepairable and must be quarantined.
    """
    findings: list[tuple[str, str, str, bool]] = []
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.size == 0:
        findings.append(
            ("instances", "empty-instances", "object has no instances", False)
        )
        return None, None, findings

    if dim_ref is not None and pts.shape[1] != dim_ref:
        findings.append(
            (
                "dim",
                "dim-mismatch",
                f"dimensionality {pts.shape[1]} != dataset dimensionality {dim_ref}",
                False,
            )
        )
        return None, None, findings

    if probs is None:
        ps = np.full(pts.shape[0], 1.0 / pts.shape[0])
    else:
        ps = np.asarray(probs, dtype=float).reshape(-1)
        if ps.shape[0] != pts.shape[0]:
            findings.append(
                (
                    "probs",
                    "count-mismatch",
                    f"{ps.shape[0]} weight(s) for {pts.shape[0]} instance(s)",
                    repair,
                )
            )
            if not repair:
                return None, None, findings
            ps = np.full(pts.shape[0], 1.0 / pts.shape[0])

    finite_pts = np.isfinite(pts).all(axis=1)
    if not finite_pts.all():
        bad = int((~finite_pts).sum())
        findings.append(
            (
                "points",
                "non-finite-coord",
                f"{bad} instance(s) with NaN/Inf coordinates",
                repair and bool(finite_pts.any()),
            )
        )
        if not repair:
            return None, None, findings
        pts = pts[finite_pts]
        ps = ps[finite_pts]
        if pts.shape[0] == 0:
            findings.append(
                ("instances", "empty-instances", "no finite instance left", False)
            )
            return None, None, findings

    if not np.isfinite(ps).all():
        findings.append(
            (
                "probs",
                "non-finite-weight",
                f"{int((~np.isfinite(ps)).sum())} non-finite weight(s)",
                repair,
            )
        )
        if not repair:
            return None, None, findings
        ps = np.where(np.isfinite(ps), ps, 0.0)

    if np.any(ps < 0):
        findings.append(
            (
                "probs",
                "negative-weight",
                f"{int((ps < 0).sum())} negative weight(s)",
                repair,
            )
        )
        if not repair:
            return None, None, findings
        ps = np.maximum(ps, 0.0)

    total = float(ps.sum())
    if total <= 0:
        findings.append(
            ("probs", "zero-mass", "total instance weight is zero", False)
        )
        return None, None, findings

    return pts, ps / total, findings


def validate_rows(
    rows: Iterable[tuple[Any, Any, Any]],
    *,
    on_invalid: str = "strict",
    dim: int | None = None,
    metrics: Any = None,
) -> tuple[list[UncertainObject], ValidationReport]:
    """Validate raw ``(points, probs, oid)`` rows into objects.

    Args:
        rows: per-object raw data; ``probs`` may be ``None`` (uniform).
        on_invalid: one of :data:`POLICIES`.
        dim: expected dimensionality; defaults to that of the first object
            with a well-formed point matrix.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; issue
            tallies are exported when given.

    Returns:
        ``(objects, report)`` — the kept objects (weights normalised to mass
        1) and the full report.

    Raises:
        ValueError: unknown policy.
        InvalidInputError: any issue under ``on_invalid="strict"``.
    """
    if on_invalid not in POLICIES:
        raise ValueError(
            f"unknown on_invalid policy {on_invalid!r}; expected one of {POLICIES}"
        )
    repair = on_invalid == "repair"
    report = ValidationReport(policy=on_invalid)
    kept: list[UncertainObject] = []
    rows = list(rows)
    dim_ref = dim if dim is not None else _infer_dim(r[0] for r in rows)
    for row, (points, probs, oid) in enumerate(rows):
        report.n_input += 1
        pts, ps, findings = _check_one(points, probs, dim_ref, repair)
        dropped = pts is None
        for fld, code, message, fixed in findings:
            action = (
                "rejected"
                if on_invalid == "strict"
                else ("repaired" if fixed and not dropped else "dropped")
            )
            report.issues.append(
                ValidationIssue(row, oid, fld, code, message, action)
            )
        if dropped:
            report.n_dropped += 1
            continue
        report.n_kept += 1
        if findings:
            report.n_repaired += 1
        kept.append(UncertainObject(pts, ps, oid=oid, normalize=True))
    if metrics is not None:
        report.export(metrics)
    if on_invalid == "strict" and report.issues:
        raise InvalidInputError(report)
    return kept, report


def validate_objects(
    objects: Sequence[UncertainObject],
    *,
    on_invalid: str = "strict",
    dim: int | None = None,
    metrics: Any = None,
) -> tuple[list[UncertainObject], ValidationReport]:
    """Validate already-constructed objects (finiteness, weights, dim).

    Clean objects are passed through by identity (preserving cached MBRs and
    local trees); repaired objects are rebuilt.  Same policies and return
    shape as :func:`validate_rows`.
    """
    if on_invalid not in POLICIES:
        raise ValueError(
            f"unknown on_invalid policy {on_invalid!r}; expected one of {POLICIES}"
        )
    repair = on_invalid == "repair"
    report = ValidationReport(policy=on_invalid)
    kept: list[UncertainObject] = []
    dim_ref = dim if dim is not None else (objects[0].dim if objects else None)
    for row, obj in enumerate(objects):
        report.n_input += 1
        pts, ps, findings = _check_one(obj.points, obj.probs, dim_ref, repair)
        dropped = pts is None
        for fld, code, message, fixed in findings:
            action = (
                "rejected"
                if on_invalid == "strict"
                else ("repaired" if fixed and not dropped else "dropped")
            )
            report.issues.append(
                ValidationIssue(row, obj.oid, fld, code, message, action)
            )
        if dropped:
            report.n_dropped += 1
            continue
        report.n_kept += 1
        if findings:
            report.n_repaired += 1
            kept.append(UncertainObject(pts, ps, oid=obj.oid, normalize=True))
        else:
            kept.append(obj)
    if metrics is not None:
        report.export(metrics)
    if on_invalid == "strict" and report.issues:
        raise InvalidInputError(report)
    return kept, report
