"""Matches between discrete random variables (Definition 4).

A *match* ``M_{U,V}`` is a fractional one-to-one mapping between the atoms of
two random variables: a set of tuples ``(u, v, p)`` whose per-atom marginals
reproduce the original probabilities.  Matches are the semantic backbone of
the match order (Definition 9), the P-SD operator (Definition 5) and the
counterpart construction of N3 functions (Section 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

_TOL = 1e-6


@dataclass(frozen=True)
class MatchTuple:
    """One tuple ``t<u, v, p>`` of a match: indices into the two objects."""

    u: int
    v: int
    p: float


class Match:
    """A match between two multi-instance objects, stored by instance index.

    Attributes:
        tuples: the match tuples.
    """

    __slots__ = ("tuples",)

    def __init__(self, tuples: Sequence[MatchTuple]) -> None:
        self.tuples = list(tuples)

    def __iter__(self):
        return iter(self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        inner = ", ".join(f"<{t.u},{t.v},{t.p:g}>" for t in self.tuples)
        return f"Match([{inner}])"

    def marginal_u(self, m: int) -> np.ndarray:
        """Per-``u``-instance mass, shape ``(m,)``."""
        out = np.zeros(m)
        for t in self.tuples:
            out[t.u] += t.p
        return out

    def marginal_v(self, n: int) -> np.ndarray:
        """Per-``v``-instance mass, shape ``(n,)``."""
        out = np.zeros(n)
        for t in self.tuples:
            out[t.v] += t.p
        return out


def is_valid_match(
    match: Match,
    u_probs: np.ndarray | Sequence[float],
    v_probs: np.ndarray | Sequence[float],
    *,
    tol: float = _TOL,
) -> bool:
    """Check Definition 4: marginals of the match equal the instance masses.

    Args:
        match: candidate match.
        u_probs: instance probabilities of the first object.
        v_probs: instance probabilities of the second object.
        tol: per-instance tolerance.
    """
    up = np.asarray(u_probs, dtype=float)
    vp = np.asarray(v_probs, dtype=float)
    if any(t.p < -tol for t in match):
        return False
    if any(not (0 <= t.u < len(up) and 0 <= t.v < len(vp)) for t in match):
        return False
    return bool(
        np.allclose(match.marginal_u(len(up)), up, atol=tol)
        and np.allclose(match.marginal_v(len(vp)), vp, atol=tol)
    )
