"""An R-tree built from scratch.

Supports the access patterns the paper's algorithms need:

* **STR bulk loading** (Sort-Tile-Recursive) for building the global tree
  over object MBRs and the local per-object instance trees;
* **Guttman insertion** with quadratic split, so trees are also dynamic;
* **range queries** by MBR intersection (used by the distance-vector range
  trick of Section 5.1.2);
* **best-first traversal** by ``mindist`` to a point or box — the engine of
  Algorithm 1's min-heap and of the instance-level F-SD nearest /
  furthest-neighbor searches;
* **level partitions** — the disjoint groups of instances with their MBRs
  and probability masses that the level-by-level pruning/validation of
  Section 5.1 consumes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.mbr import MBR, boxes_maxdist_point, boxes_mindist_point


class RTreeNode:
    """A node of the R-tree.

    Leaf nodes store ``(MBR, payload)`` entries; internal nodes store child
    nodes.  ``mbr`` always bounds everything beneath the node.
    """

    __slots__ = ("mbr", "children", "entries", "is_leaf", "_packed")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.children: list[RTreeNode] = []
        self.entries: list[tuple[MBR, Any]] = []
        self.mbr: MBR | None = None
        self._packed: tuple[np.ndarray, np.ndarray] | None = None

    def recompute_mbr(self) -> None:
        """Recompute this node's MBR from its members."""
        self._packed = None  # member set changed; corner arrays are stale
        boxes = (
            [e[0] for e in self.entries] if self.is_leaf else [c.mbr for c in self.children]
        )
        if not boxes:
            self.mbr = None
            return
        mbr = boxes[0]
        for b in boxes[1:]:
            mbr = mbr.union(b)  # type: ignore[union-attr]
        self.mbr = mbr

    def packed(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(los, his)`` corner arrays of the node's member boxes.

        Cached until the member set changes (every structural mutation goes
        through :meth:`recompute_mbr`, which invalidates the cache); feeds the
        batched mindist/maxdist kernels used by best-first traversals.
        """
        if self._packed is None:
            boxes = (
                [e[0] for e in self.entries]
                if self.is_leaf
                else [c.mbr for c in self.children]
            )
            self._packed = (
                np.stack([b.lo for b in boxes]),
                np.stack([b.hi for b in boxes]),
            )
        return self._packed

    def member_count(self) -> int:
        """Number of entries or children in this node."""
        return len(self.entries) if self.is_leaf else len(self.children)


class RTree:
    """R-tree over ``(MBR, payload)`` entries.

    Args:
        max_entries: node fan-out (paper: 4 for local trees; larger for the
            global tree).
        min_entries: minimal fill; defaults to ``ceil(max_entries * 0.4)``.
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None) -> None:
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.max_entries = max_entries
        self.min_entries = min_entries or max(1, int(np.ceil(max_entries * 0.4)))
        if self.min_entries > max_entries // 2:
            self.min_entries = max(1, max_entries // 2)
        self.root = RTreeNode(is_leaf=True)
        self._size = 0
        #: Optional :class:`repro.obs.metrics.MetricsRegistry` sink; when
        #: set, best-first traversals count node visits under
        #: ``repro_rtree_node_visits_total{tree=metrics_label, mode=...}``.
        self.metrics = None
        self.metrics_label = "local"
        #: Optional :class:`repro.resilience.budget.Budget`; when set,
        #: best-first traversals hit a deadline checkpoint per node visit
        #: (set alongside ``metrics`` by the F-SD extreme-distance queries).
        self.budget = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @classmethod
    def bulk_load(
        cls,
        entries: Sequence[tuple[MBR, Any]],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive loading."""
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if not entries:
            return tree
        tree._size = len(entries)
        leaves: list[RTreeNode] = []
        for chunk in _str_pack([(e[0].center, e) for e in entries], max_entries):
            node = RTreeNode(is_leaf=True)
            node.entries = [e for _, e in chunk]
            node.recompute_mbr()
            leaves.append(node)
        level = leaves
        while len(level) > 1:
            parents: list[RTreeNode] = []
            for chunk in _str_pack(
                [(n.mbr.center, n) for n in level], max_entries  # type: ignore[union-attr]
            ):
                node = RTreeNode(is_leaf=False)
                node.children = [n for _, n in chunk]
                node.recompute_mbr()
                parents.append(node)
            level = parents
        tree.root = level[0]
        return tree

    def insert(self, mbr: MBR, payload: Any) -> None:
        """Guttman insertion with quadratic split."""
        self._size += 1
        leaf, path = self._choose_leaf(mbr)
        leaf.entries.append((mbr, payload))
        self._adjust_upwards(leaf, path)

    def _choose_leaf(self, mbr: MBR) -> tuple[RTreeNode, list[RTreeNode]]:
        node = self.root
        path: list[RTreeNode] = []
        while not node.is_leaf:
            path.append(node)
            best = min(
                node.children,
                key=lambda c: (
                    c.mbr.enlargement(mbr),  # type: ignore[union-attr]
                    c.mbr.volume(),  # type: ignore[union-attr]
                ),
            )
            node = best
        return node, path

    def _adjust_upwards(self, node: RTreeNode, path: list[RTreeNode]) -> None:
        node.recompute_mbr()
        split = self._split_if_needed(node)
        for parent in reversed(path):
            if split is not None:
                parent.children.append(split)
            parent.recompute_mbr()
            split = self._split_if_needed(parent)
        if split is not None:
            new_root = RTreeNode(is_leaf=False)
            new_root.children = [self.root, split]
            new_root.recompute_mbr()
            self.root = new_root

    def delete(self, mbr: MBR, payload: Any) -> bool:
        """Remove one entry (matched by payload identity) from the tree.

        Guttman deletion: locate the leaf through MBR containment, remove
        the entry, then *condense* — underfull nodes along the path are
        dissolved and their surviving entries reinserted — and finally cut a
        single-child root.

        Returns:
            True when an entry was found and removed.
        """
        path = self._find_leaf(self.root, mbr, payload, [])
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries = [e for e in leaf.entries if e[1] is not payload]
        leaf.recompute_mbr()  # also invalidates the packed corner cache
        self._size -= 1
        orphans: list[tuple[MBR, Any]] = []
        # Condense from the leaf upwards.
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            underfull = node.member_count() < self.min_entries
            if underfull:
                parent.children.remove(node)
                orphans.extend(_collect_entries(node))
            parent.recompute_mbr()
        self.root.recompute_mbr()
        if not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        if not self.root.is_leaf and not self.root.children:
            self.root = RTreeNode(is_leaf=True)
        for entry_mbr, entry_payload in orphans:
            self._size -= 1  # insert() re-increments
            self.insert(entry_mbr, entry_payload)
        return True

    def _find_leaf(
        self,
        node: RTreeNode,
        mbr: MBR,
        payload: Any,
        path: list[RTreeNode],
    ) -> list[RTreeNode] | None:
        path = path + [node]
        if node.is_leaf:
            if any(e[1] is payload for e in node.entries):
                return path
            return None
        for child in node.children:
            if child.mbr is not None and child.mbr.contains(mbr):
                found = self._find_leaf(child, mbr, payload, path)
                if found is not None:
                    return found
        # Fall back to intersecting children (MBRs may have been built from
        # unions that no longer tightly contain the entry).
        for child in node.children:
            if child.mbr is not None and child.mbr.intersects(mbr):
                found = self._find_leaf(child, mbr, payload, path)
                if found is not None:
                    return found
        return None

    def _split_if_needed(self, node: RTreeNode) -> RTreeNode | None:
        if node.member_count() <= self.max_entries:
            return None
        if node.is_leaf:
            groups = _quadratic_split(
                node.entries, key=lambda e: e[0], min_fill=self.min_entries
            )
            node.entries = groups[0]
            sibling = RTreeNode(is_leaf=True)
            sibling.entries = groups[1]
        else:
            groups = _quadratic_split(
                node.children, key=lambda c: c.mbr, min_fill=self.min_entries
            )
            node.children = groups[0]
            sibling = RTreeNode(is_leaf=False)
            sibling.children = groups[1]
        node.recompute_mbr()
        sibling.recompute_mbr()
        return sibling

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def range_search(self, box: MBR) -> list[tuple[MBR, Any]]:
        """All entries whose MBR intersects ``box``."""
        out: list[tuple[MBR, Any]] = []
        if self.root.mbr is None:
            return out
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                out.extend(e for e in node.entries if e[0].intersects(box))
            else:
                stack.extend(node.children)
        return out

    def all_entries(self) -> list[tuple[MBR, Any]]:
        """Every entry in the tree (leaf order)."""
        out: list[tuple[MBR, Any]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.extend(node.entries)
            else:
                stack.extend(node.children)
        return out

    def nearest(self, point: np.ndarray, k: int = 1) -> list[tuple[float, Any]]:
        """``k`` nearest entries to ``point`` by MBR mindist (exact for
        point entries)."""
        return self._best_first(lambda m: m.mindist(point), k)

    def nearest_distance(self, point: np.ndarray, *, batch: bool = True) -> float:
        """``delta_min(point, entries)`` — distance of the nearest entry.

        With ``batch`` (default) each visited node keys all its members in
        one broadcast over the packed corner arrays; ``batch=False`` is the
        scalar per-member reference path.
        """
        if not batch:
            result = self.nearest(point, k=1)
            if not result:
                raise ValueError("tree is empty")
            return result[0][0]
        return self._extreme_distance_batch(point, farthest=False)

    def farthest_distance(self, point: np.ndarray, *, batch: bool = True) -> float:
        """``delta_max(point, entries)`` — distance of the farthest entry.

        Best-first search on **negated maxdist**: a node's maxdist upper
        bounds the maxdist of everything below it.  ``batch`` keys each
        visited node's members in one broadcast.
        """
        if batch:
            return self._extreme_distance_batch(point, farthest=True)
        if self.root.mbr is None:
            raise ValueError("tree is empty")
        counter = itertools.count()
        heap: list[tuple[float, int, bool, Any]] = [
            (-self.root.mbr.maxdist(point), next(counter), False, self.root)
        ]
        while heap:
            neg, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                return -neg
            node: RTreeNode = item
            if node.is_leaf:
                for mbr, payload in node.entries:
                    heapq.heappush(
                        heap, (-mbr.maxdist(point), next(counter), True, payload)
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (-child.mbr.maxdist(point), next(counter), False, child),  # type: ignore[union-attr]
                    )
        raise ValueError("tree is empty")

    def _extreme_distance_batch(self, point: np.ndarray, *, farthest: bool) -> float:
        """Best-first nearest/farthest entry distance with batched bounds.

        Heap keys are ``mindist`` (or negated ``maxdist``), computed for all
        members of a popped node in one call on its packed corner arrays.
        """
        if self.root.mbr is None:
            raise ValueError("tree is empty")
        p = np.asarray(point, dtype=float)
        bound = self.root.mbr.maxdist(p) if farthest else self.root.mbr.mindist(p)
        sign = -1.0 if farthest else 1.0
        counter = itertools.count()
        heap: list[tuple[float, int, bool, Any]] = [
            (sign * bound, next(counter), False, self.root)
        ]
        visits = 0
        while heap:
            key, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                if self.metrics is not None and visits:
                    self.metrics.inc(
                        "repro_rtree_node_visits_total",
                        visits,
                        {
                            "tree": self.metrics_label,
                            "mode": "farthest" if farthest else "nearest",
                        },
                    )
                return sign * key
            node: RTreeNode = item
            visits += 1
            if self.budget is not None:
                self.budget.checkpoint("rtree-descent")
            if node.member_count() == 0:
                continue
            los, his = node.packed()
            if farthest:
                dists = boxes_maxdist_point(los, his, p)
            else:
                dists = boxes_mindist_point(los, his, p)
            if node.is_leaf:
                for d, (_, payload) in zip(dists.tolist(), node.entries):
                    heapq.heappush(heap, (sign * d, next(counter), True, payload))
            else:
                for d, child in zip(dists.tolist(), node.children):
                    heapq.heappush(heap, (sign * d, next(counter), False, child))
        raise ValueError("tree is empty")

    def _best_first(
        self, score: Callable[[MBR], float], k: int
    ) -> list[tuple[float, Any]]:
        out: list[tuple[float, Any]] = []
        if self.root.mbr is None:
            return out
        counter = itertools.count()
        heap: list[tuple[float, int, bool, Any]] = [
            (score(self.root.mbr), next(counter), False, self.root)
        ]
        visits = 0
        while heap and len(out) < k:
            dist, _, is_entry, item = heapq.heappop(heap)
            if is_entry:
                out.append((dist, item))
                continue
            node: RTreeNode = item
            visits += 1
            if self.budget is not None:
                self.budget.checkpoint("rtree-descent")
            if node.is_leaf:
                for mbr, payload in node.entries:
                    heapq.heappush(heap, (score(mbr), next(counter), True, payload))
            else:
                for child in node.children:
                    heapq.heappush(
                        heap, (score(child.mbr), next(counter), False, child)  # type: ignore[union-attr]
                    )
        if self.metrics is not None and visits:
            self.metrics.inc(
                "repro_rtree_node_visits_total",
                visits,
                {"tree": self.metrics_label, "mode": "best-first"},
            )
        return out

    def incremental_by_mindist(
        self, box: MBR
    ) -> Iterator[tuple[float, bool, MBR, Any]]:
        """Yield nodes and entries in non-decreasing mindist to ``box``.

        Yields ``(mindist, is_entry, mbr, item)`` where ``item`` is a payload
        for entries and the :class:`RTreeNode` for internal nodes — the
        traversal primitive behind Algorithm 1.  The consumer may ``send``
        ``False`` to prune a just-yielded node's subtree.
        """
        if self.root.mbr is None:
            return
        counter = itertools.count()
        heap: list[tuple[float, int, bool, MBR, Any]] = [
            (self.root.mbr.mindist_mbr(box), next(counter), False, self.root.mbr, self.root)
        ]
        while heap:
            dist, _, is_entry, mbr, item = heapq.heappop(heap)
            expand = yield (dist, is_entry, mbr, item)
            if is_entry or expand is False:
                continue
            node: RTreeNode = item
            if node.is_leaf:
                for embr, payload in node.entries:
                    heapq.heappush(
                        heap,
                        (embr.mindist_mbr(box), next(counter), True, embr, payload),
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (
                            child.mbr.mindist_mbr(box),  # type: ignore[union-attr]
                            next(counter),
                            False,
                            child.mbr,
                            child,
                        ),
                    )

    # ------------------------------------------------------------------ #
    # Level partitions (Section 5.1 level-by-level filters)
    # ------------------------------------------------------------------ #

    def partitions(self, min_groups: int) -> list[tuple[MBR, list[Any]]]:
        """Disjoint groups covering all entries, at least ``min_groups`` of
        them when possible.

        Descends breadth-first from the root until the frontier holds
        ``min_groups`` nodes (or leaves are reached), then reports each
        frontier node as ``(mbr, payloads)``.
        """
        if self.root.mbr is None:
            return []
        frontier: list[RTreeNode] = [self.root]
        while len(frontier) < min_groups:
            expandable = [n for n in frontier if not n.is_leaf]
            if not expandable:
                break
            node = max(expandable, key=lambda n: n.mbr.volume())  # type: ignore[union-attr]
            frontier.remove(node)
            frontier.extend(node.children)
        out: list[tuple[MBR, list[Any]]] = []
        for node in frontier:
            payloads = [payload for _, payload in _collect_entries(node)]
            out.append((node.mbr, payloads))  # type: ignore[arg-type]
        return out

    def height(self) -> int:
        """Tree height (1 for a single leaf root)."""
        h = 1
        node = self.root
        while not node.is_leaf:
            h += 1
            node = node.children[0]
        return h


def _quadratic_split(
    items: list, key: Callable[[Any], MBR], min_fill: int
) -> tuple[list, list]:
    """Guttman's quadratic split of an overflowing node's members.

    Seeds are the pair wasting the most dead space; remaining members go to
    the group whose MBR they enlarge least, with the minimum-fill constraint
    enforced at the tail.
    """
    boxes = [key(item) for item in items]
    n = len(items)
    # Seed selection: maximize union volume minus individual volumes.
    worst = -np.inf
    seed_a, seed_b = 0, 1
    for i in range(n):
        for j in range(i + 1, n):
            waste = (
                boxes[i].union(boxes[j]).volume()
                - boxes[i].volume()
                - boxes[j].volume()
            )
            if waste > worst:
                worst = waste
                seed_a, seed_b = i, j
    group_a = [items[seed_a]]
    group_b = [items[seed_b]]
    mbr_a, mbr_b = boxes[seed_a], boxes[seed_b]
    remaining = [k for k in range(n) if k not in (seed_a, seed_b)]
    while remaining:
        # Enforce minimum fill when one group is starving.
        if len(group_a) + len(remaining) <= min_fill:
            for k in remaining:
                group_a.append(items[k])
                mbr_a = mbr_a.union(boxes[k])
            break
        if len(group_b) + len(remaining) <= min_fill:
            for k in remaining:
                group_b.append(items[k])
                mbr_b = mbr_b.union(boxes[k])
            break
        # Pick the member with the strongest group preference.
        best_k = None
        best_diff = -np.inf
        best_costs = (0.0, 0.0)
        for k in remaining:
            cost_a = mbr_a.union(boxes[k]).volume() - mbr_a.volume()
            cost_b = mbr_b.union(boxes[k]).volume() - mbr_b.volume()
            diff = abs(cost_a - cost_b)
            if diff > best_diff:
                best_diff = diff
                best_k = k
                best_costs = (cost_a, cost_b)
        remaining.remove(best_k)
        cost_a, cost_b = best_costs
        prefer_a = cost_a < cost_b or (
            cost_a == cost_b and len(group_a) <= len(group_b)
        )
        if prefer_a:
            group_a.append(items[best_k])
            mbr_a = mbr_a.union(boxes[best_k])
        else:
            group_b.append(items[best_k])
            mbr_b = mbr_b.union(boxes[best_k])
    return group_a, group_b


def _collect_entries(node: RTreeNode) -> Iterable[tuple[MBR, Any]]:
    stack = [node]
    while stack:
        n = stack.pop()
        if n.is_leaf:
            yield from n.entries
        else:
            stack.extend(n.children)


def _str_pack(
    items: list[tuple[np.ndarray, Any]], capacity: int
) -> list[list[tuple[np.ndarray, Any]]]:
    """Sort-Tile-Recursive packing of (center, item) pairs into groups."""
    if not items:
        return []
    dim = len(items[0][0])
    count = len(items)
    n_groups = int(np.ceil(count / capacity))
    if n_groups <= 1:
        return [items]
    items = sorted(items, key=lambda it: float(it[0][0]))
    if dim == 1:
        return [items[i : i + capacity] for i in range(0, count, capacity)]
    # Number of vertical slabs: ceil(sqrt-style tiling over remaining dims).
    slab_count = int(np.ceil(n_groups ** (1.0 / dim)))
    slab_size = int(np.ceil(count / slab_count))
    groups: list[list[tuple[np.ndarray, Any]]] = []
    for start in range(0, count, slab_size):
        slab = items[start : start + slab_size]
        slab = [(c[1:], it) for c, it in slab]
        packed = _str_pack(slab, capacity)
        for grp in packed:
            groups.append([(None, it) for _, it in grp])  # centers no longer needed
    return groups
