"""Spatial indexing.

The paper organises data with ``n + 1`` R-trees: one *global* R-tree over
object MBRs plus a *local* R-tree (fan-out 4) per object over its instances.
:mod:`repro.index.rtree` provides one implementation serving both roles,
with STR bulk loading, Guttman insertion, range / best-first queries and the
level-wise partitioning used by the level-by-level filters of Section 5.1.
"""

from repro.index.rtree import RTree, RTreeNode

__all__ = ["RTree", "RTreeNode"]
