"""Request-scoped observability context for the serving layer.

A :class:`RequestContext` ties everything one served request produces —
spans, log lines, the audit record, shard work on other threads or forked
workers — back to a single ``request_id`` / ``trace_id`` pair.  It lives in
a :data:`contextvars.ContextVar`, so any code on the request's thread (or a
thread/process the serving layer explicitly re-binds) can reach it without
parameter plumbing: the structured logger stamps ``request_id`` on every
event automatically, and the sharded search attaches per-shard span buffers
for reassembly into one merged Chrome trace.

Propagation model (DESIGN.md §14):

* **serial** backend — the cascade runs on the request thread; shard spans
  land directly in the request's root tracer.
* **thread** backend — each shard worker gets a :meth:`RequestContext.child`
  (fresh span id, parent = the request's span id), binds it for the duration
  of the shard search, and hands its span buffer back via
  :meth:`add_shard_spans`.
* **process** (fork) backend — the child context crosses the process
  boundary as the plain-dict :meth:`to_wire` form; the worker rebuilds it
  with :meth:`from_wire`, records spans against the *parent's* trace clock
  (``trace_epoch`` is ``time.perf_counter`` based, and ``CLOCK_MONOTONIC``
  is system-wide on the fork platforms we support), and returns span dicts
  for reassembly.
* **pool** (shared-memory) backend — same wire contract as fork: the child
  context rides in the task tuple, the persistent worker binds it around
  the shard search, and span dicts come back in the result tuple.
  :meth:`add_shard_spans` accepts the dict form directly, so both
  process-crossing backends reassemble through one path.

Sampling is decided once per request at admission (:class:`Sampler`), so a
request is either traced end to end — handler, scatter, every shard — or
not at all; there are no half-traces.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "RequestContext",
    "Sampler",
    "bind",
    "context_for_thread",
    "current",
    "new_request_id",
    "new_span_id",
    "new_trace_id",
]


def new_request_id() -> str:
    """Fresh 16-hex-digit request id."""
    return os.urandom(8).hex()


def new_trace_id() -> str:
    """Fresh 32-hex-digit trace id (W3C-trace-context sized)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """Fresh 16-hex-digit span id."""
    return os.urandom(8).hex()


@dataclass
class RequestContext:
    """Identity and tracing state of one served request.

    Attributes:
        request_id: caller-supplied (``X-Request-Id``) or generated id.
        trace_id: id shared by every span of the request, across shards
            and process boundaries.
        span_id: the id of *this* context's span (the request span at the
            root; a shard-search span in a child).
        parent_span_id: the parent span id (None at the root).
        sampled: whether this request records spans (decided once, at
            admission).
        deadline_ms: informational request deadline, carried for logs and
            the wire form.
        shard: the shard a child context is scoped to (None at the root).
        trace_epoch: ``time.perf_counter()`` base every tracer of this
            request measures against, so shard spans line up on one
            timeline even across fork.
        started: wall-clock request start (``time.time()``).
        tracer: the root span recorder (local only — never crosses the
            wire; children build their own against ``trace_epoch``).
        shard_spans: ``(shard, [SpanRecord, ...])`` buffers handed back by
            parallel-backend shard workers (root context only).
    """

    request_id: str = field(default_factory=new_request_id)
    trace_id: str = field(default_factory=new_trace_id)
    span_id: str = field(default_factory=new_span_id)
    parent_span_id: str | None = None
    sampled: bool = False
    deadline_ms: float | None = None
    shard: int | None = None
    trace_epoch: float = field(default_factory=time.perf_counter)
    started: float = field(default_factory=time.time)
    tracer: Any = None
    shard_spans: list[tuple[int, list]] = field(default_factory=list)

    @classmethod
    def new(
        cls,
        *,
        request_id: str | None = None,
        sampled: bool = False,
        deadline_ms: float | None = None,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
    ) -> "RequestContext":
        """Root context for a fresh request (ids generated when omitted).

        A server joining a trace started elsewhere (the router tier
        forwarding over HTTP) passes the inbound ``trace_id`` and
        ``parent_span_id`` so the fleet's spans merge into one tree.
        """
        kwargs = {}
        if trace_id:
            kwargs["trace_id"] = trace_id
        return cls(
            request_id=request_id if request_id else new_request_id(),
            sampled=sampled,
            deadline_ms=deadline_ms,
            parent_span_id=parent_span_id,
            **kwargs,
        )

    def child(self, shard: int) -> "RequestContext":
        """Shard-scoped child: same request/trace ids, fresh span id.

        The child's ``parent_span_id`` is this context's ``span_id`` — the
        parent/child edge that survives thread hops and fork boundaries.
        """
        return RequestContext(
            request_id=self.request_id,
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_span_id=self.span_id,
            sampled=self.sampled,
            deadline_ms=self.deadline_ms,
            shard=shard,
            trace_epoch=self.trace_epoch,
            started=self.started,
        )

    # ------------------------------ wire form --------------------------- #

    def to_wire(self) -> dict:
        """Plain-dict form for crossing a process boundary (fork tasks)."""
        return {
            "request_id": self.request_id,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
            "sampled": self.sampled,
            "deadline_ms": self.deadline_ms,
            "shard": self.shard,
            "trace_epoch": self.trace_epoch,
            "started": self.started,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "RequestContext":
        """Rebuild a context shipped with :meth:`to_wire`."""
        return cls(
            request_id=wire["request_id"],
            trace_id=wire["trace_id"],
            span_id=wire["span_id"],
            parent_span_id=wire.get("parent_span_id"),
            sampled=bool(wire.get("sampled", False)),
            deadline_ms=wire.get("deadline_ms"),
            shard=wire.get("shard"),
            trace_epoch=wire.get("trace_epoch", time.perf_counter()),
            started=wire.get("started", time.time()),
        )

    # ------------------------------ helpers ----------------------------- #

    def add_shard_spans(self, shard: int, spans: list) -> None:
        """Attach one shard's completed span buffer (root context only).

        Accepts :class:`~repro.obs.tracer.SpanRecord` objects (thread
        workers) or their ``to_dict`` form (fork/pool workers, whose spans
        cross a process boundary); dicts are normalised here so every
        backend reassembles identically.
        """
        if spans and isinstance(spans[0], dict):
            from repro.obs.tracer import SpanRecord

            spans = [SpanRecord.from_dict(s) for s in spans]
        self.shard_spans.append((shard, list(spans)))

    def remaining_ms(self) -> float | None:
        """Milliseconds left before ``deadline_ms``, or None (no deadline)."""
        if self.deadline_ms is None:
            return None
        return self.deadline_ms - (time.time() - self.started) * 1000.0

    def elapsed_ms(self) -> float:
        """Wall-clock milliseconds since the request started."""
        return (time.time() - self.started) * 1000.0


#: The request currently being served on this thread/task, or None.
_CURRENT: ContextVar[RequestContext | None] = ContextVar(
    "repro_request_context", default=None
)

#: Thread-id -> currently bound context.  A ContextVar is unreadable from
#: other threads, but the sampling profiler walks ``sys._current_frames()``
#: from its own daemon thread and needs to attribute each sampled stack to
#: the request running on that thread — this mirror, maintained by
#: :func:`bind`, is that cross-thread view.  Plain dict ops are atomic
#: under the GIL; a momentarily stale entry only mislabels one sample.
_THREAD_BINDINGS: dict[int, RequestContext] = {}


def current() -> RequestContext | None:
    """The bound :class:`RequestContext`, or None outside a request."""
    return _CURRENT.get()


def context_for_thread(thread_id: int) -> RequestContext | None:
    """The context bound on another thread (profiler attribution only).

    Best-effort by design: the answer can be a bind or an unbind behind
    the thread's true state, which for statistical profiling shifts at
    most one sample per transition.
    """
    return _THREAD_BINDINGS.get(thread_id)


@contextlib.contextmanager
def bind(ctx: RequestContext | None) -> Iterator[RequestContext | None]:
    """Bind ``ctx`` as the current request for the with-block.

    Token-based, so nested binds (a shard child inside the request) restore
    the outer context on exit.  The thread-id mirror used by the sampling
    profiler is maintained alongside (restored to the outer binding on
    exit, removed when there is none).
    """
    token = _CURRENT.set(ctx)
    tid = threading.get_ident()
    prev = _THREAD_BINDINGS.get(tid)
    if ctx is not None:
        _THREAD_BINDINGS[tid] = ctx
    else:
        _THREAD_BINDINGS.pop(tid, None)
    try:
        yield ctx
    finally:
        _CURRENT.reset(token)
        if prev is not None:
            _THREAD_BINDINGS[tid] = prev
        else:
            _THREAD_BINDINGS.pop(tid, None)


class Sampler:
    """Deterministic rate sampler (one decision per request).

    A leaky accumulator instead of a PRNG: at rate ``r`` exactly
    ``floor(n * r)`` of the first ``n`` requests are sampled, so tests and
    smoke runs are reproducible and a 1% rate really means every 100th
    request — no unlucky streaks.  Thread-safe.
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("sample rate must be within [0, 1]")
        self.rate = float(rate)
        self._acc = 0.0
        self._lock = threading.Lock()
        self.decisions = 0
        self.sampled = 0

    def decide(self) -> bool:
        """Whether the next request is sampled."""
        with self._lock:
            self.decisions += 1
            if self.rate <= 0.0:
                return False
            self._acc += self.rate
            if self._acc >= 1.0 - 1e-12:
                self._acc -= 1.0
                self.sampled += 1
                return True
            return False
