"""Span tracing for the NNC search pipeline.

A :class:`Tracer` records nested *spans* — named wall-clock intervals with
labels and (optionally) the delta of the query's
:class:`repro.core.counters.Counters` across the interval.  Completed spans
land in a bounded ring buffer, oldest dropped first, so tracing a long run
has a fixed memory footprint.

The instrumentation sites in :mod:`repro.core.nnc`, the operators, and the
max-flow solver all guard on ``tracer.enabled`` and default to the shared
:data:`NULL_TRACER`, so a query without tracing pays one attribute check per
site and allocates nothing.

Span tree for one traced query::

    search                      (operator, k)
    ├── rtree-descent           (per popped node: members, leaf)
    ├── entry-prune             (per screened node: pruned)
    └── dominance-check         (per surviving object: oid, dominators)
        ├── cdf-scan            (S-SD exact sweep)
        ├── cdf-sweep           (SS-SD per-q sweep)
        ├── hull-extremes       (F-SD per-vertex comparison)
        ├── level-flow          (P-SD coarse G-/G+ networks)
        └── maxflow             (P-SD instance network)
"""

from __future__ import annotations

import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Iterator

__all__ = ["NULL_TRACER", "NullTracer", "SpanRecord", "Tracer"]


class SpanRecord:
    """One completed span.

    Attributes:
        name: span name (e.g. ``"dominance-check"``).
        start: seconds since the tracer's epoch at span entry.
        duration: wall-clock seconds spent inside the span.
        depth: nesting depth (0 for root spans).
        parent: name of the enclosing span, or None.
        labels: free-form labels passed at span creation.
        counter_deltas: per-field increments of the attached counter bag
            across the span (only non-zero entries; empty when no counters
            were attached).
    """

    __slots__ = ("name", "start", "duration", "depth", "parent", "labels",
                 "counter_deltas")

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        parent: str | None,
        labels: dict[str, Any],
        counter_deltas: dict[str, int],
    ) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.depth = depth
        self.parent = parent
        self.labels = labels
        self.counter_deltas = counter_deltas

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict view (the JSONL event shape)."""
        out: dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
        }
        if self.parent is not None:
            out["parent"] = self.parent
        if self.labels:
            out["labels"] = self.labels
        if self.counter_deltas:
            out["counters"] = self.counter_deltas
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanRecord":
        """Rebuild a record from :meth:`to_dict` output.

        Used by the fork-process serve backend: shard workers return their
        span buffers as plain dicts, and the parent reassembles them into
        the request's merged trace.
        """
        return cls(
            data["name"],
            float(data["start"]),
            float(data["duration"]),
            int(data.get("depth", 0)),
            data.get("parent"),
            dict(data.get("labels") or {}),
            dict(data.get("counters") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, start={self.start:.6f}, "
            f"duration={self.duration:.6f}, depth={self.depth})"
        )


class _ActiveSpan:
    """Context manager for one in-flight span of a real :class:`Tracer`."""

    __slots__ = ("_tracer", "name", "labels", "_counters", "_t0", "_snap0",
                 "_parent", "_depth", "_token")

    def __init__(self, tracer: "Tracer", name: str, counters, labels) -> None:
        self._tracer = tracer
        self.name = name
        self.labels = labels
        self._counters = counters
        self._t0 = 0.0
        self._snap0: dict[str, int] | None = None
        self._token = None

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack_var.get()
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        self._token = tracer._stack_var.set(stack + (self.name,))
        if self._counters is not None:
            self._snap0 = self._counters.snapshot()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = time.perf_counter()
        tracer = self._tracer
        deltas: dict[str, int] = {}
        if self._snap0 is not None:
            snap1 = self._counters.snapshot()
            base = self._snap0
            deltas = {
                key: value - base.get(key, 0)
                for key, value in snap1.items()
                if value != base.get(key, 0)
            }
        record = SpanRecord(
            self.name,
            self._t0 - tracer.epoch,
            t1 - self._t0,
            self._depth,
            self._parent,
            self.labels,
            deltas,
        )
        # Token reset (not a pop) restores exactly the stack this span saw
        # at entry — abandoned generators and unbalanced exits included.
        tracer._stack_var.reset(self._token)
        tracer._finish(record)


class _NullSpan:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Span recorder with a bounded ring buffer.

    The open-span stack lives in a :class:`contextvars.ContextVar`, so one
    tracer shared by concurrent requests (threads or asyncio tasks) keeps
    every request's parent/depth bookkeeping isolated — spans from request
    A can never adopt a parent from request B.  The completed-span buffer
    is still shared: interleaved *completion* order is fine, interleaved
    *ancestry* is not.

    Args:
        capacity: maximum retained completed spans; older spans are dropped
            (and counted in :attr:`dropped`) once the buffer is full.
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; when
            set, every closed span feeds a ``repro_span_seconds`` latency
            histogram labelled by span name (and operator, when the span
            carries an ``op`` label), and ring-buffer drops feed
            ``repro_trace_spans_dropped_total``.
        epoch: perf-counter base for span ``start`` values; defaults to
            "now".  The serving layer passes one request-wide epoch to
            every shard tracer so merged traces share a single timeline.
    """

    enabled = True

    def __init__(
        self, capacity: int = 65536, metrics=None, *, epoch: float | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.metrics = metrics
        self.epoch = time.perf_counter() if epoch is None else epoch
        self.completed = 0
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._stack_var: ContextVar[tuple[str, ...]] = ContextVar(
            "repro_tracer_stack", default=()
        )

    def span(self, name: str, *, counters=None, **labels) -> _ActiveSpan:
        """Open a span; use as a context manager.

        Args:
            name: span name.
            counters: optional :class:`repro.core.counters.Counters` whose
                delta across the span is recorded.
            **labels: free-form labels stored on the span record.
        """
        return _ActiveSpan(self, name, counters, labels)

    def _finish(self, record: SpanRecord) -> None:
        self.completed += 1
        metrics = self.metrics
        dropping = len(self._buffer) >= self.capacity
        self._buffer.append(record)
        if metrics is not None:
            if dropping:
                metrics.inc("repro_trace_spans_dropped_total")
            labels = {"span": record.name}
            op = record.labels.get("op")
            if op is not None:
                labels["operator"] = str(op)
            metrics.observe("repro_span_seconds", record.duration, labels=labels)

    # ------------------------------------------------------------------ #

    @property
    def dropped(self) -> int:
        """Completed spans evicted from the ring buffer."""
        return self.completed - len(self._buffer)

    def spans(self) -> list[SpanRecord]:
        """Retained spans in completion order."""
        return list(self._buffer)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        """Drop all retained spans (the drop/completed tallies reset too).

        The open-span stack is context-local and owned by in-flight spans'
        tokens, so it needs no clearing here.
        """
        self._buffer.clear()
        self.completed = 0


class NullTracer:
    """No-op tracer: every span is the shared, state-free null span.

    ``enabled`` is False so hot-path call sites can skip span bookkeeping
    entirely; calling :meth:`span` anyway is still safe and free.
    """

    enabled = False

    def span(self, name: str, *, counters=None, **labels) -> _NullSpan:
        """Return the shared no-op span (arguments ignored)."""
        return _NULL_SPAN

    def spans(self) -> list[SpanRecord]:
        """Always empty — a null tracer retains nothing."""
        return []

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(())

    def __len__(self) -> int:
        return 0

    @property
    def dropped(self) -> int:
        return 0


NULL_TRACER = NullTracer()
"""Shared no-op tracer — the default on every query context."""
