"""Zero-dependency continuous sampling profiler with request attribution.

A :class:`SamplingProfiler` is a daemon thread that walks
``sys._current_frames()`` at a configurable rate and aggregates what it
sees as collapsed ("folded") stacks — the `Brendan Gregg flamegraph
format <https://www.brendangregg.com/flamegraphs.html>`_: one line per
unique stack, frames root-first joined by ``;``, followed by the sample
count.  Nothing is installed in the interpreter (no ``settrace``, no
signal handlers), so the profiled process pays only the sampler thread's
own work: at 100 Hz that is one pass over the live threads' frame stacks
per 10 ms, gated below 3% end-to-end overhead in
``benchmarks/bench_serve.py``.

Three things distinguish this from a generic ``_current_frames`` dumper:

* **Request attribution.**  The serving layer binds a
  :class:`repro.obs.request.RequestContext` around every request
  (:func:`repro.obs.request.bind` keeps a thread-id mirror exactly for
  this), so each sample knows which request — and therefore which
  trace/span — the thread was working for.  Stacks get a synthetic root
  frame, ``request`` or ``runtime``, and a bounded per-request tally maps
  request ids to sample counts; "where did this slow query's wall time
  go" becomes a grep.
* **On-CPU approximation.**  Threads whose innermost frame is a known
  scheduler/IO wait (``select.poll``, ``threading.Condition.wait``,
  ``time.sleep``, …) are tallied as *idle* and excluded from the stack
  aggregate, the same approximation py-spy's default mode makes.  A
  serving process always carries an event loop and a few parked executor
  threads; without this filter they would drown the query path.
* **Mergeable output.**  Folded stacks are just ``str -> count`` maps,
  so per-worker profiles from the shared-memory pool backend
  (:func:`repro.serve.shm.pool_profile_snapshot`) merge into the parent's
  view with :func:`merge_folded`, and the router can merge node profiles
  the same way.

:func:`flamegraph_svg` renders a folded-stack map as a self-contained SVG
(hover titles, deterministic warm palette) — the ``flamegraph`` dashboard
figure and the CI artifact both come from it.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Iterable

from repro.obs.request import context_for_thread

__all__ = [
    "SamplingProfiler",
    "flamegraph_svg",
    "merge_folded",
    "parse_folded",
]

#: ``(module, function)`` leaf frames treated as off-CPU waits.  A thread
#: parked here is waiting for work, not doing it; counting those stacks
#: would attribute an idle event loop's select() to "load".
_IDLE_LEAVES: frozenset[tuple[str, str]] = frozenset(
    {
        ("select", "select"),
        ("select", "poll"),
        ("selectors", "select"),
        ("time", "sleep"),
        ("socket", "accept"),
        ("socket", "recv"),
        ("socket", "recv_into"),
        ("ssl", "read"),
        ("queue", "get"),
    }
)

#: Leaf *function* names that mark a wait wherever they occur (lock and
#: condition waits surface from ``threading`` with C-level acquire on the
#: stack top's caller, so match by name alone).
_IDLE_LEAF_NAMES: frozenset[str] = frozenset(
    {
        "wait",
        "acquire",
        "_wait_for_tstate_lock",
        "wait_for",
        "poll",
        "select",
        "sleep",
        "epoll",
        "kqueue",
    }
)


def _frame_name(frame: Any) -> str:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    func = getattr(code, "co_qualname", None) or code.co_name
    return f"{module}:{func}"


def _is_idle_leaf(frame: Any) -> bool:
    code = frame.f_code
    module = frame.f_globals.get("__name__", "?")
    name = code.co_name
    if (module, name) in _IDLE_LEAVES:
        return True
    if name in _IDLE_LEAF_NAMES and module in (
        "threading", "selectors", "select", "queue", "time", "socket",
        "asyncio.base_events", "concurrent.futures.thread",
        "concurrent.futures.process", "multiprocessing.connection",
    ):
        return True
    return False


class SamplingProfiler:
    """Continuous sampling profiler over ``sys._current_frames()``.

    Args:
        hz: sampling rate; ``<= 0`` builds a permanently disabled profiler
            (every accessor still works, so callers never branch).
        registry: optional :class:`repro.obs.metrics.MetricsRegistry`;
            fed ``repro_profile_ticks_total`` / ``repro_profile_samples_total``.
        max_depth: stack frames kept per sample (innermost dropped past it).
        max_stacks: distinct folded stacks retained (rare stacks beyond the
            cap fold into a ``request:…;[truncated]`` / ``runtime;[truncated]``
            bucket instead of growing without bound).
        max_requests: per-request tally entries retained.
    """

    def __init__(
        self,
        hz: float = 100.0,
        *,
        registry: Any = None,
        max_depth: int = 64,
        max_stacks: int = 4096,
        max_requests: int = 512,
    ) -> None:
        self.hz = float(hz)
        self.registry = registry
        self.max_depth = int(max_depth)
        self.max_stacks = int(max_stacks)
        self.max_requests = int(max_requests)
        self._stacks: dict[str, int] = {}
        self._requests: dict[str, dict[str, Any]] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.ticks = 0
        self.samples = 0
        self.attributed = 0
        self.idle = 0
        self.dropped_requests = 0
        self.started_at: float | None = None

    @property
    def enabled(self) -> bool:
        return self.hz > 0.0

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------ lifecycle --------------------------- #

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (no-op when disabled or running)."""
        if not self.enabled or self.running:
            return self
        self._stop.clear()
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread (idempotent); aggregates are kept."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None

    def _run(self) -> None:
        period = 1.0 / self.hz
        next_tick = time.monotonic()
        own_id = threading.get_ident()
        while not self._stop.is_set():
            self.sample_once(skip_thread=own_id)
            next_tick += period
            delay = next_tick - time.monotonic()
            if delay <= 0:
                # Fell behind (GIL contention); re-anchor rather than burn
                # CPU catching up — sampling cadence is best-effort.
                next_tick = time.monotonic()
                continue
            if self._stop.wait(delay):
                break

    # ------------------------------ sampling ---------------------------- #

    def sample_once(self, *, skip_thread: int | None = None) -> int:
        """Take one sample of every live thread; returns threads sampled.

        Public for tests and for deterministic single-shot profiling — the
        daemon loop calls exactly this.
        """
        frames = sys._current_frames()
        sampled = 0
        with self._lock:
            self.ticks += 1
            for tid, frame in frames.items():
                if tid == skip_thread:
                    continue
                sampled += 1
                self.samples += 1
                if _is_idle_leaf(frame):
                    self.idle += 1
                    continue
                stack: list[str] = []
                depth = 0
                f = frame
                while f is not None and depth < self.max_depth:
                    stack.append(_frame_name(f))
                    f = f.f_back
                    depth += 1
                stack.reverse()
                ctx = context_for_thread(tid)
                if ctx is not None:
                    self.attributed += 1
                    stack.insert(0, "request")
                    self._tally_request(ctx)
                else:
                    stack.insert(0, "runtime")
                key = ";".join(stack)
                if key not in self._stacks and len(self._stacks) >= self.max_stacks:
                    key = stack[0] + ";[truncated]"
                self._stacks[key] = self._stacks.get(key, 0) + 1
        if self.registry is not None:
            self.registry.inc("repro_profile_ticks_total")
            self.registry.inc("repro_profile_samples_total", sampled)
        return sampled

    def _tally_request(self, ctx: Any) -> None:
        entry = self._requests.get(ctx.request_id)
        if entry is None:
            if len(self._requests) >= self.max_requests:
                self.dropped_requests += 1
                return
            entry = {
                "samples": 0,
                "trace_id": ctx.trace_id,
                "span_id": ctx.span_id,
            }
            self._requests[ctx.request_id] = entry
        entry["samples"] += 1
        entry["span_id"] = ctx.span_id

    # ------------------------------ reading ----------------------------- #

    def stacks(self) -> dict[str, int]:
        """Folded-stack aggregate (``"root;…;leaf" -> samples``), a copy."""
        with self._lock:
            return dict(self._stacks)

    def folded(self) -> str:
        """Collapsed-stack text, one ``stack count`` line per unique stack,
        highest count first — feed it to any flamegraph tool as-is."""
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(f"{stack} {count}" for stack, count in items)

    def snapshot(self, *, top: int | None = 50) -> dict:
        """JSON-able profile state (the ``/profile`` body's core).

        ``stacks`` holds the ``top`` heaviest folded stacks (all when
        None); ``folded`` is the full collapsed-stack text.
        """
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
            requests = {
                rid: dict(entry) for rid, entry in self._requests.items()
            }
            body = {
                "enabled": self.enabled,
                "running": self.running,
                "hz": self.hz,
                "ticks": self.ticks,
                "samples": self.samples,
                "attributed": self.attributed,
                "idle": self.idle,
                "distinct_stacks": len(items),
                "dropped_requests": self.dropped_requests,
                "duration_s": (
                    time.time() - self.started_at
                    if self.started_at is not None
                    else 0.0
                ),
            }
        body["stacks"] = [
            {"stack": stack, "count": count}
            for stack, count in (items if top is None else items[:top])
        ]
        body["folded"] = "\n".join(
            f"{stack} {count}" for stack, count in items
        )
        body["requests"] = requests
        return body

    def reset(self) -> None:
        """Drop all aggregates (counters, stacks, request tallies)."""
        with self._lock:
            self._stacks.clear()
            self._requests.clear()
            self.ticks = self.samples = self.attributed = self.idle = 0
            self.dropped_requests = 0


# --------------------------------------------------------------------- #
# Folded-stack plumbing
# --------------------------------------------------------------------- #


def merge_folded(into: dict[str, int], other: dict[str, int]) -> dict[str, int]:
    """Merge one folded-stack map into another (additive); returns ``into``.

    The pool backend merges per-worker profiles with this, and the
    ``/profile`` endpoint merges worker maps into the serving process's
    own — folded stacks make cross-process merge a dict sum.
    """
    for stack, count in other.items():
        into[stack] = into.get(stack, 0) + int(count)
    return into


def parse_folded(text: str) -> dict[str, int]:
    """Parse collapsed-stack text back into a ``stack -> count`` map."""
    out: dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, count = line.rpartition(" ")
        if not stack:
            continue
        try:
            out[stack] = out.get(stack, 0) + int(count)
        except ValueError:
            continue
    return out


# --------------------------------------------------------------------- #
# Flamegraph rendering
# --------------------------------------------------------------------- #

_FRAME_HEIGHT = 17
_MIN_FRACTION = 0.002  # rects narrower than this fraction are elided


class _Node:
    __slots__ = ("count", "children")

    def __init__(self) -> None:
        self.count = 0
        self.children: dict[str, _Node] = {}


def _build_trie(stacks: dict[str, int]) -> tuple[_Node, int]:
    root = _Node()
    for stack, count in stacks.items():
        node = root
        node.count += count
        for frame in stack.split(";"):
            child = node.children.get(frame)
            if child is None:
                child = node.children[frame] = _Node()
            child.count += count
            node = child
    return root, root.count


def _color(name: str) -> str:
    # Deterministic warm palette keyed by the frame name, flamegraph-style.
    h = 0
    for ch in name:
        h = (h * 131 + ord(ch)) & 0xFFFFFF
    r = 205 + (h % 50)
    g = 70 + ((h >> 8) % 110)
    b = (h >> 16) % 60
    return f"rgb({r},{g},{b})"


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def flamegraph_svg(
    stacks: dict[str, int],
    *,
    title: str = "CPU flamegraph",
    width: int = 1180,
) -> str:
    """Render folded stacks as a self-contained SVG flamegraph.

    Pure string assembly — no dependencies, safe to embed in the dashboard
    HTML or write as a standalone ``.svg`` CI artifact.  Frames narrower
    than 0.2% of the total are elided (they would be sub-pixel anyway);
    every rect carries a ``<title>`` tooltip with the frame name, sample
    count and percentage.
    """
    root, total = _build_trie(stacks)
    rects: list[str] = []

    def emit(node: _Node, name: str, x: float, depth: int) -> None:
        frac = node.count / total if total else 0.0
        w = frac * (width - 20)
        if w < _MIN_FRACTION * (width - 20):
            return
        y = 40 + depth * _FRAME_HEIGHT
        pct = 100.0 * frac
        label = _escape(name)
        rects.append(
            f'<g><rect x="{x:.1f}" y="{y}" width="{w:.1f}" '
            f'height="{_FRAME_HEIGHT - 1}" fill="{_color(name)}" rx="1">'
            f"<title>{label} — {node.count} samples ({pct:.1f}%)</title>"
            f"</rect>"
            + (
                f'<text x="{x + 3:.1f}" y="{y + 12}" font-size="10" '
                f'font-family="monospace" fill="#1a1a1a" '
                f'pointer-events="none">'
                f"{label[: max(1, int(w / 6.5))]}</text>"
                if w > 30
                else ""
            )
            + "</g>"
        )
        cx = x
        for child_name in sorted(
            node.children, key=lambda n: (-node.children[n].count, n)
        ):
            child = node.children[child_name]
            emit(child, child_name, cx, depth + 1)
            cx += (child.count / total) * (width - 20) if total else 0.0

    depth_of = [0]

    def measure(node: _Node, depth: int) -> None:
        depth_of[0] = max(depth_of[0], depth)
        for child in node.children.values():
            measure(child, depth + 1)

    measure(root, 0)
    cx = 10.0
    for name in sorted(root.children, key=lambda n: (-root.children[n].count, n)):
        child = root.children[name]
        emit(child, name, cx, 0)
        cx += (child.count / total) * (width - 20) if total else 0.0

    height = 40 + (depth_of[0] + 1) * _FRAME_HEIGHT + 10
    head = (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="sans-serif">'
        f'<rect width="{width}" height="{height}" fill="#fcfcf7"/>'
        f'<text x="10" y="20" font-size="14" font-weight="bold">'
        f"{_escape(title)}</text>"
        f'<text x="10" y="34" font-size="11" fill="#555">'
        f"{total} samples, {len(stacks)} distinct stacks"
        f"</text>"
    )
    if total == 0:
        head += (
            f'<text x="10" y="60" font-size="12" fill="#888">'
            f"no samples recorded</text>"
        )
    return head + "".join(rects) + "</svg>"
