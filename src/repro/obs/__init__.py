"""Observability: tracing, metrics, and profiling for the NNC pipeline.

The paper's whole experimental study (Section 6, Appendix C / Figure 16) is
about *where time and comparisons go* — per-operator response time, filter
effectiveness, node accesses.  This package makes those quantities visible
inside a single query instead of only as end-of-run aggregates:

* :mod:`repro.obs.tracer` — nested spans (``search -> rtree-descent ->
  entry-prune -> dominance-check -> maxflow``) carrying wall time, counter
  deltas, and operator/object labels, recorded into a bounded ring buffer;
* :mod:`repro.obs.metrics` — a registry of named counters / gauges /
  histograms (per-operator latency, kernel batch sizes, prune-rule hits);
* :mod:`repro.obs.export` — Chrome-trace JSON (``chrome://tracing`` /
  ``ui.perfetto.dev`` compatible), flat JSONL event logs, Prometheus text
  and JSON metric dumps.

Everything is zero-dependency and opt-in: :class:`~repro.obs.tracer.NullTracer`
(the default on every :class:`repro.core.context.QueryContext`) turns every
instrumentation site into a single attribute check, so the hot path pays
nothing when observability is off.
"""

from repro.obs.export import (
    chrome_trace,
    spans_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import (
    MetricsRegistry,
    query_metrics_from_counters,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "chrome_trace",
    "query_metrics_from_counters",
    "spans_to_jsonl",
    "write_metrics",
    "write_trace",
]
