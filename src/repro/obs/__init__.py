"""Observability: tracing, metrics, and profiling for the NNC pipeline.

The paper's whole experimental study (Section 6, Appendix C / Figure 16) is
about *where time and comparisons go* — per-operator response time, filter
effectiveness, node accesses.  This package makes those quantities visible
inside a single query instead of only as end-of-run aggregates:

* :mod:`repro.obs.tracer` — nested spans (``search -> rtree-descent ->
  entry-prune -> dominance-check -> maxflow``) carrying wall time, counter
  deltas, and operator/object labels, recorded into a bounded ring buffer;
* :mod:`repro.obs.metrics` — a registry of named counters / gauges /
  histograms (per-operator latency, kernel batch sizes, prune-rule hits);
* :mod:`repro.obs.export` — Chrome-trace JSON (``chrome://tracing`` /
  ``ui.perfetto.dev`` compatible), flat JSONL event logs, Prometheus text
  and JSON metric dumps, and the per-request merged trace that reassembles
  shard span buffers onto one timeline;
* :mod:`repro.obs.request` — the contextvar-based
  :class:`~repro.obs.request.RequestContext` (request id, trace id,
  parent/child span ids, sampling decision) the serving layer propagates
  from the HTTP handler through scatter-gather into every shard, across
  thread and fork boundaries;
* :mod:`repro.obs.log` — structured JSON logging with automatic
  request-id correlation on every event;
* :mod:`repro.obs.profile` — a zero-dependency continuous sampling
  profiler (daemon thread over ``sys._current_frames()``) with
  request-attributed collapsed stacks and a self-contained flamegraph
  renderer;
* :mod:`repro.obs.alerts` — multi-window SLO burn-rate alerting
  (fast/slow windows over latency, error, and degraded ratios);
* :mod:`repro.obs.fleet` — router-side metrics federation: every node's
  registry scraped and absorbed under a ``node`` label, with merged
  cross-node histogram quantiles.

Everything is zero-dependency and opt-in: :class:`~repro.obs.tracer.NullTracer`
(the default on every :class:`repro.core.context.QueryContext`) turns every
instrumentation site into a single attribute check, so the hot path pays
nothing when observability is off.
"""

from repro.obs.export import (
    chrome_trace,
    merged_chrome_trace,
    spans_to_jsonl,
    write_metrics,
    write_trace,
)
from repro.obs.log import (
    NULL_LOGGER,
    JsonLogger,
    NullLogger,
    get_logger,
    log_event,
    set_logger,
)
from repro.obs.alerts import BurnRateMonitor
from repro.obs.fleet import FleetScraper, absorb_node_metrics
from repro.obs.metrics import (
    MetricsRegistry,
    query_metrics_from_counters,
    update_slo_gauges,
)
from repro.obs.profile import SamplingProfiler, flamegraph_svg
from repro.obs.request import (
    RequestContext,
    Sampler,
    bind,
    context_for_thread,
    current,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, SpanRecord, Tracer

__all__ = [
    "BurnRateMonitor",
    "FleetScraper",
    "JsonLogger",
    "MetricsRegistry",
    "NULL_LOGGER",
    "NULL_TRACER",
    "NullLogger",
    "NullTracer",
    "RequestContext",
    "Sampler",
    "SamplingProfiler",
    "SpanRecord",
    "Tracer",
    "absorb_node_metrics",
    "bind",
    "chrome_trace",
    "context_for_thread",
    "current",
    "flamegraph_svg",
    "get_logger",
    "log_event",
    "merged_chrome_trace",
    "query_metrics_from_counters",
    "set_logger",
    "spans_to_jsonl",
    "update_slo_gauges",
    "write_metrics",
    "write_trace",
]
