"""Named counters, gauges, and histograms with Prometheus/JSON export.

A :class:`MetricsRegistry` is a flat map from ``(name, labels)`` to a metric
instance.  Instruments are created on first use, so call sites never need
set-up code; the registry stays zero-dependency (Prometheus *text* format is
just strings).

Metric families emitted by the instrumented pipeline:

================================== =========== ==================================
name                               type        labels
================================== =========== ==================================
``repro_queries_total``            counter     ``operator``
``repro_query_seconds``            histogram   ``operator``
``repro_candidates``               histogram   ``operator``
``repro_span_seconds``             histogram   ``span`` (+ ``operator``)
``repro_counter_total``            counter     ``counter``, ``operator``
``repro_prune_hits_total``         counter     ``rule``, ``operator``
``repro_validate_hits_total``      counter     ``rule``, ``operator``
``repro_kernel_batch_elements``    histogram   ``kernel``
``repro_kernel_scalar_fallbacks_total`` counter ``kernel``
``repro_rtree_node_visits_total``  counter     ``tree``, ``mode``
``repro_maxflow_phases_total``     counter     (none)
``repro_maxflow_augmentations_total`` counter  (none)
``repro_degraded_queries_total``   counter     ``operator``, ``reason``
``repro_validation_issues_total``  counter     ``code``, ``action``
``repro_quarantined_objects_total`` counter    ``policy``
``repro_serve_requests_total``     counter     ``route``, ``status``
``repro_serve_request_seconds``    histogram   ``route``
``repro_serve_inflight``           gauge       (none)
``repro_serve_shard_fanout``       histogram   ``operator``
``repro_serve_cache_hits_total``   counter     (none)
``repro_serve_cache_misses_total`` counter     (none)
``repro_serve_cache_evictions_total`` counter  (none)
``repro_serve_cache_size``         gauge       (none)
``repro_serve_updates_total``      counter     ``op``
``repro_serve_epoch``              gauge       (none)
``repro_serve_objects``            gauge       (none)
``repro_serve_shard_seconds``      histogram   ``shard``, ``operator``
``repro_serve_degraded_total``     counter     ``operator``
``repro_serve_sampled_total``      counter     (none)
``repro_trace_spans_dropped_total`` counter    (none)
``repro_audit_records_total``      counter     ``kind``
``repro_wal_appends_total``        counter     (none)
``repro_wal_fsync_seconds``        histogram   (none)
``repro_recovery_seconds``         histogram   (none)
``repro_snapshot_bytes``           gauge       (none)
``repro_snapshots_total``          counter     (none)
``repro_slo_latency_seconds``      gauge       ``operator``, ``quantile``
``repro_slo_shard_latency_seconds`` gauge      ``shard``, ``operator``, ``quantile``
``repro_slo_degraded_ratio``       gauge       (none)
``repro_slo_error_ratio``          gauge       (none)
``repro_slo_burn_total``           counter     ``slo``
``repro_slo_latency_overflow_total`` counter   ``operator``
``repro_alerts_active``            gauge       ``alert``
``repro_profile_ticks_total``      counter     (none)
``repro_profile_samples_total``    counter     (none)
``repro_fleet_scrapes_total``      counter     ``node``
``repro_fleet_scrape_errors_total`` counter    ``node``
``repro_fleet_node_epoch``         gauge       ``node``
``repro_router_hedges_total``      counter     ``shard``
``repro_router_hedge_wins_total``  counter     (none)
``repro_router_failovers_total``   counter     (none)
``repro_router_stale_reads_total`` counter     (none)
``repro_router_partial_writes_total`` counter  ``op``
``repro_router_reconciled_writes_total`` counter ``op``
``repro_router_node_up``           gauge       ``node``
================================== =========== ==================================

The ``repro_serve_*`` families are fed by :mod:`repro.serve` (server
admission, result cache, sharded fan-out, dataset epoch/size); the
``repro_router_*`` families by the multi-node tier
(:mod:`repro.serve.router`: hedged requests and their wins, replica
failovers, stale reads detected via acked-epoch watermarks, partial and
reconciled write fan-outs, and per-node health as seen by the sweep); the
``repro_wal_*`` / ``repro_recovery_*`` / ``repro_snapshot*`` families by
the durable tier (:mod:`repro.serve.wal`, :mod:`repro.serve.durable`).  The
``repro_slo_*`` gauges are *derived* — :func:`update_slo_gauges` recomputes
them from the latency histograms and the request/degraded tallies at every
``/metrics`` and ``/status`` read, so scrapes always see current
percentiles without per-request quantile maintenance; the burn counter is
bumped per request whenever an SLO (latency target, error, degraded
answer) is breached.

``repro_counter_total`` mirrors :meth:`repro.core.counters.Counters.snapshot`
field for field (per query, per operator), so the Prometheus export always
reconciles with the in-process counter bag.

The ``repro_profile_*`` families are fed by the sampling profiler
(:mod:`repro.obs.profile`); the ``repro_fleet_*`` families and the
``node``-labelled copies of the serve families by the router's federation
scraper (:mod:`repro.obs.fleet`), which absorbs every node's JSON metrics
dump into the router registry; ``repro_alerts_active`` by the burn-rate
monitor (:mod:`repro.obs.alerts`).  ``repro_slo_latency_overflow_total``
is derived per scrape from each latency histogram's ``+Inf`` bucket, so a
clamped (dishonest) p99 is always accompanied by a visible overflow count.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "query_metrics_from_counters",
    "slo_snapshot",
    "update_slo_gauges",
]

LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)
"""Default histogram buckets for durations, in seconds."""

SIZE_BUCKETS: tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144,
)
"""Default histogram buckets for counts/sizes (kernel batch elements)."""

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any] | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += n


class Gauge:
    """Point-in-time value."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` to the gauge."""
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        """Subtract ``n`` from the gauge."""
        self.value -= n


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Args:
        buckets: increasing upper bounds; a ``+Inf`` bucket is implicit.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation of ``value``."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def overflow(self) -> int:
        """Observations above the largest finite bound (the ``+Inf`` bucket).

        These observations cannot be located by :meth:`quantile` — any
        quantile whose rank falls here clamps to the top finite bound.
        Exported as ``repro_slo_latency_overflow_total`` so clamped tails
        are visible instead of silently optimistic.
        """
        return self.counts[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (identical bounds required).

        The federation layer uses this to combine per-node histograms into
        fleet-wide quantiles: bucket counts are additive, so the merged
        estimate is exactly what a single histogram observing all nodes'
        samples would report.
        """
        if tuple(other.buckets) != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{other.buckets} != {self.buckets}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count

    @classmethod
    def from_cumulative(
        cls,
        bounds: Iterable[float],
        cumulative: Iterable[int],
        *,
        sum: float = 0.0,
        count: int | None = None,
    ) -> "Histogram":
        """Rebuild a histogram from exported *cumulative* bucket counts.

        Inverts the :meth:`MetricsRegistry.to_json` wire form (cumulative
        counts over the finite bounds) by successive differences; the
        ``+Inf`` bucket is recovered from ``count`` minus the last finite
        cumulative value.
        """
        hist = cls(bounds)
        cum = [int(c) for c in cumulative]
        if len(cum) != len(hist.buckets):
            raise ValueError(
                f"expected {len(hist.buckets)} cumulative counts, got {len(cum)}"
            )
        prev = 0
        for i, c in enumerate(cum):
            if c < prev:
                raise ValueError("cumulative counts must be non-decreasing")
            hist.counts[i] = c - prev
            prev = c
        total = prev if count is None else int(count)
        if total < prev:
            raise ValueError("count is below the last cumulative bucket")
        hist.counts[-1] = total - prev
        hist.sum = float(sum)
        hist.count = total
        return hist

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket, ``+Inf`` last (== total count)."""
        out: list[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by linear bucket interpolation.

        Standard Prometheus ``histogram_quantile`` semantics: the target
        rank is located in its bucket and interpolated between the bucket's
        bounds (the first bucket interpolates from 0).  Observations in the
        ``+Inf`` bucket clamp to the largest finite bound — use
        :meth:`quantile_clamped` when the caller needs to know a clamp
        happened (the SLO snapshot flags these so fleet p99s are honest).
        """
        return self.quantile_clamped(q)[0]

    def quantile_clamped(self, q: float) -> tuple[float, bool]:
        """``(quantile estimate, clamped)`` — clamped when the target rank
        falls in the ``+Inf`` bucket and the estimate silently reports the
        largest finite bound instead of the (unknowable) true value."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0, False
        target = q * self.count
        cum = 0
        lo = 0.0
        for bound, c in zip(self.buckets, self.counts):
            if c and cum + c >= target:
                frac = (target - cum) / c
                return lo + (bound - lo) * min(1.0, max(0.0, frac)), False
            cum += c
            lo = bound
        return self.buckets[-1], True


class MetricsRegistry:
    """Get-or-create registry of labelled metrics.

    Registry *structure* (instrument creation, family iteration, export) is
    guarded by an RLock so the serving layer can share one registry across
    concurrent request threads.  Individual instrument updates stay
    lock-free: a lost increment under extreme contention is acceptable for
    telemetry, a corrupted registry dict is not.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelKey], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.RLock()

    # -------------------------- instruments --------------------------- #

    def counter(self, name: str, labels: dict | None = None,
                help: str | None = None) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(name, labels, Counter, (), help)

    def gauge(self, name: str, labels: dict | None = None,
              help: str | None = None) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(name, labels, Gauge, (), help)

    def histogram(self, name: str, labels: dict | None = None,
                  buckets: Iterable[float] | None = None,
                  help: str | None = None) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._get(name, labels, Histogram,
                         (buckets if buckets is not None else LATENCY_BUCKETS,),
                         help)

    def _get(self, name, labels, cls, args, help):
        key = (name, _label_key(labels))
        with self._lock:
            known = self._kinds.setdefault(name, cls.kind)
            if known != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {known}, not {cls.kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(*args)
                self._metrics[key] = metric
                if help:
                    self._help.setdefault(name, help)
            return metric

    # -------------------------- conveniences -------------------------- #

    def inc(self, name: str, n: float = 1.0, labels: dict | None = None) -> None:
        """Increment the counter ``name{labels}`` by ``n``."""
        self.counter(name, labels).inc(n)

    def set_gauge(self, name: str, value: float, labels: dict | None = None) -> None:
        """Set the gauge ``name{labels}``."""
        self.gauge(name, labels).set(value)

    def observe(self, name: str, value: float, labels: dict | None = None,
                buckets: Iterable[float] | None = None) -> None:
        """Observe ``value`` on the histogram ``name{labels}``."""
        self.histogram(name, labels, buckets=buckets).observe(value)

    # ---------------------------- reading ----------------------------- #

    def get(self, name: str, labels: dict | None = None):
        """The metric instance, or None when never touched."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, labels: dict | None = None) -> float:
        """Counter/gauge value (0.0 when never touched)."""
        metric = self.get(name, labels)
        return metric.value if metric is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        return sum(
            m.value for (n, _), m in self._metrics.items()
            if n == name and not isinstance(m, Histogram)
        )

    def families(self) -> dict[str, list[tuple[_LabelKey, Any]]]:
        """Metrics grouped by family name (stable label order)."""
        out: dict[str, list[tuple[_LabelKey, Any]]] = {}
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda item: item[0])
        for (name, labels), metric in items:
            out.setdefault(name, []).append((labels, metric))
        return out

    # ---------------------------- export ------------------------------ #

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, entries in self.families().items():
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for labels, metric in entries:
                if isinstance(metric, Histogram):
                    cum = metric.cumulative()
                    for bound, count in zip(metric.buckets, cum):
                        lines.append(
                            f"{name}_bucket{_fmt_labels(labels, ('le', _fmt_float(bound)))} {count}"
                        )
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, ('le', '+Inf'))} {cum[-1]}"
                    )
                    lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_float(metric.sum)}")
                    lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
                else:
                    lines.append(
                        f"{name}{_fmt_labels(labels)} {_fmt_float(metric.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """JSON-able dump: one entry per (family, label set)."""
        out: dict[str, list[dict]] = {}
        for name, entries in self.families().items():
            rows = []
            for labels, metric in entries:
                row: dict[str, Any] = {"labels": dict(labels)}
                if isinstance(metric, Histogram):
                    row["sum"] = metric.sum
                    row["count"] = metric.count
                    row["buckets"] = {
                        _fmt_float(b): c
                        for b, c in zip(metric.buckets, metric.cumulative())
                    }
                else:
                    row["value"] = metric.value
                rows.append(row)
            out[name] = rows
        return {
            "metrics": {
                name: {"type": self._kinds[name], "series": rows}
                for name, rows in out.items()
            }
        }


def _fmt_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: _LabelKey, extra: tuple[str, str] | None = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


# --------------------------------------------------------------------- #
# SLO accounting
# --------------------------------------------------------------------- #

SLO_QUANTILES: tuple[tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99),
)
"""Latency quantiles exported as ``repro_slo_*`` gauges."""


def update_slo_gauges(registry: MetricsRegistry) -> None:
    """Recompute the derived ``repro_slo_*`` gauges from raw families.

    * ``repro_slo_latency_seconds{operator,quantile}`` — per-operator
      p50/p95/p99 from the ``repro_query_seconds`` histograms;
    * ``repro_slo_shard_latency_seconds{shard,operator,quantile}`` — the
      same from the per-shard ``repro_serve_shard_seconds`` histograms;
    * ``repro_slo_degraded_ratio`` — degraded served queries over all
      served queries (``repro_serve_degraded_total`` /
      ``repro_serve_requests_total{route=/query,status=200}``);
    * ``repro_slo_error_ratio`` — 5xx serve responses over all serve
      responses;
    * ``repro_slo_latency_overflow_total{operator}`` — observations in a
      latency histogram's ``+Inf`` bucket (these clamp quantile estimates
      to the top finite bound, so they must be visible).

    Series carrying a ``node`` label (absorbed from fleet members by
    :mod:`repro.obs.fleet`) get per-node quantile gauges but are excluded
    from this process's aggregate ratios — a router's error ratio is about
    *its* responses; per-node ratios live in the ``/fleet`` view.

    Idempotent and cheap (a pass over the touched label sets), meant to run
    on every ``/metrics`` scrape and ``/status`` read.
    """
    families = registry.families()
    for labels, metric in families.get("repro_query_seconds", []):
        base = dict(labels)
        for qname, q in SLO_QUANTILES:
            registry.set_gauge(
                "repro_slo_latency_seconds",
                metric.quantile(q),
                {**base, "quantile": qname},
            )
        # Derived, not incremented: the histogram's +Inf bucket is already
        # monotonic, so the counter tracks it exactly across scrapes.
        registry.counter(
            "repro_slo_latency_overflow_total", base
        ).value = float(metric.overflow)
    for labels, metric in families.get("repro_serve_shard_seconds", []):
        base = dict(labels)
        for qname, q in SLO_QUANTILES:
            registry.set_gauge(
                "repro_slo_shard_latency_seconds",
                metric.quantile(q),
                {**base, "quantile": qname},
            )
    served = err = 0.0
    ok_queries = 0.0
    for labels, metric in families.get("repro_serve_requests_total", []):
        label_map = dict(labels)
        if "node" in label_map:
            continue
        served += metric.value
        if label_map.get("status", "").startswith("5"):
            err += metric.value
        if label_map.get("route") == "/query" and label_map.get("status") == "200":
            ok_queries += metric.value
    degraded = sum(
        metric.value
        for labels, metric in families.get("repro_serve_degraded_total", [])
        if "node" not in dict(labels)
    )
    registry.set_gauge(
        "repro_slo_degraded_ratio", (degraded / ok_queries) if ok_queries else 0.0
    )
    registry.set_gauge(
        "repro_slo_error_ratio", (err / served) if served else 0.0
    )


def slo_snapshot(
    registry: MetricsRegistry, slo_latency_ms: float | None = None
) -> dict:
    """Point-in-time SLO snapshot, shaped like the ``/status`` body's ``slo``.

    Refreshes the derived gauges (:func:`update_slo_gauges`) and returns::

        {"latency_ms_target": …, "latency_seconds": {op: {p50: …, …}},
         "degraded_ratio": …, "error_ratio": …, "burn": {slo: count},
         "overflow": {op: count}, "clamped": {op: [quantile, …]}}

    ``overflow`` counts latency observations above the top histogram bound
    per operator, and ``clamped`` names the quantiles whose rank fell into
    that ``+Inf`` bucket — those estimates are floors, not measurements,
    and fleet dashboards must say so instead of reporting a rosy p99.
    ``node``-labelled series (scraped from fleet members) are excluded;
    the per-node view is ``/fleet``'s job.

    The serving layer embeds this verbatim in ``/status``; the figure
    registry's ``slo-quantiles`` builder and ``repro client status
    --format slo-json`` consume the same shape, so dashboards and the
    server can never drift apart.
    """
    update_slo_gauges(registry)
    latency: dict[str, dict[str, float]] = {}
    overflow: dict[str, int] = {}
    clamped: dict[str, list[str]] = {}
    for labels, metric in registry.families().get("repro_query_seconds", ()):
        row = dict(labels)
        if "node" in row:
            continue
        op = row.get("operator", "")
        per_op = latency.setdefault(op, {})
        for qname, q in SLO_QUANTILES:
            value, was_clamped = metric.quantile_clamped(q)
            per_op[qname] = value
            if was_clamped:
                clamped.setdefault(op, []).append(qname)
        if metric.overflow:
            overflow[op] = metric.overflow
    burn = {
        dict(labels)["slo"]: counter.value
        for labels, counter in registry.families().get(
            "repro_slo_burn_total", ()
        )
    }
    return {
        "latency_ms_target": slo_latency_ms,
        "latency_seconds": latency,
        "degraded_ratio": registry.value("repro_slo_degraded_ratio"),
        "error_ratio": registry.value("repro_slo_error_ratio"),
        "burn": burn,
        "overflow": overflow,
        "clamped": clamped,
    }


# --------------------------------------------------------------------- #
# Counter-bag bridging
# --------------------------------------------------------------------- #

_PRUNE_PREFIX = "pruned_by_"
_VALIDATE_PREFIX = "validated_by_"


def query_metrics_from_counters(
    registry: MetricsRegistry,
    deltas: dict[str, int],
    *,
    operator: str,
    elapsed: float | None = None,
    candidates: int | None = None,
) -> None:
    """Feed one query's counter deltas into the registry.

    Every delta lands in ``repro_counter_total{counter=...,operator=...}``
    (so sums reconcile exactly with ``Counters.snapshot()``); ``pruned_by_*``
    and ``validated_by_*`` fields are additionally exposed as
    ``repro_prune_hits_total`` / ``repro_validate_hits_total`` keyed by rule.
    """
    op_labels = {"operator": operator}
    registry.inc("repro_queries_total", 1, op_labels)
    if elapsed is not None:
        registry.observe("repro_query_seconds", elapsed, op_labels)
    if candidates is not None:
        registry.observe("repro_candidates", candidates, op_labels,
                         buckets=SIZE_BUCKETS)
    for key, value in deltas.items():
        if not value:
            continue
        registry.inc(
            "repro_counter_total", value, {"counter": key, "operator": operator}
        )
        if key.startswith(_PRUNE_PREFIX):
            registry.inc(
                "repro_prune_hits_total", value,
                {"rule": key[len(_PRUNE_PREFIX):], "operator": operator},
            )
        elif key.startswith(_VALIDATE_PREFIX):
            registry.inc(
                "repro_validate_hits_total", value,
                {"rule": key[len(_VALIDATE_PREFIX):], "operator": operator},
            )
