"""Named counters, gauges, and histograms with Prometheus/JSON export.

A :class:`MetricsRegistry` is a flat map from ``(name, labels)`` to a metric
instance.  Instruments are created on first use, so call sites never need
set-up code; the registry stays zero-dependency (Prometheus *text* format is
just strings).

Metric families emitted by the instrumented pipeline:

================================== =========== ==================================
name                               type        labels
================================== =========== ==================================
``repro_queries_total``            counter     ``operator``
``repro_query_seconds``            histogram   ``operator``
``repro_candidates``               histogram   ``operator``
``repro_span_seconds``             histogram   ``span`` (+ ``operator``)
``repro_counter_total``            counter     ``counter``, ``operator``
``repro_prune_hits_total``         counter     ``rule``, ``operator``
``repro_validate_hits_total``      counter     ``rule``, ``operator``
``repro_kernel_batch_elements``    histogram   ``kernel``
``repro_kernel_scalar_fallbacks_total`` counter ``kernel``
``repro_rtree_node_visits_total``  counter     ``tree``, ``mode``
``repro_maxflow_phases_total``     counter     (none)
``repro_maxflow_augmentations_total`` counter  (none)
``repro_degraded_queries_total``   counter     ``operator``, ``reason``
``repro_validation_issues_total``  counter     ``code``, ``action``
``repro_quarantined_objects_total`` counter    ``policy``
``repro_serve_requests_total``     counter     ``route``, ``status``
``repro_serve_request_seconds``    histogram   ``route``
``repro_serve_inflight``           gauge       (none)
``repro_serve_shard_fanout``       histogram   ``operator``
``repro_serve_cache_hits_total``   counter     (none)
``repro_serve_cache_misses_total`` counter     (none)
``repro_serve_cache_evictions_total`` counter  (none)
``repro_serve_cache_size``         gauge       (none)
``repro_serve_updates_total``      counter     ``op``
``repro_serve_epoch``              gauge       (none)
``repro_serve_objects``            gauge       (none)
================================== =========== ==================================

The ``repro_serve_*`` families are fed by :mod:`repro.serve` (server
admission, result cache, sharded fan-out, dataset epoch/size).

``repro_counter_total`` mirrors :meth:`repro.core.counters.Counters.snapshot`
field for field (per query, per operator), so the Prometheus export always
reconciles with the in-process counter bag.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "query_metrics_from_counters",
]

LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)
"""Default histogram buckets for durations, in seconds."""

SIZE_BUCKETS: tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144,
)
"""Default histogram buckets for counts/sizes (kernel batch elements)."""

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any] | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += n


class Gauge:
    """Point-in-time value."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` to the gauge."""
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        """Subtract ``n`` from the gauge."""
        self.value -= n


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics).

    Args:
        buckets: increasing upper bounds; a ``+Inf`` bucket is implicit.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("buckets must be a non-empty increasing sequence")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation of ``value``."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket, ``+Inf`` last (== total count)."""
        out: list[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """Get-or-create registry of labelled metrics.

    Registry *structure* (instrument creation, family iteration, export) is
    guarded by an RLock so the serving layer can share one registry across
    concurrent request threads.  Individual instrument updates stay
    lock-free: a lost increment under extreme contention is acceptable for
    telemetry, a corrupted registry dict is not.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, _LabelKey], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._lock = threading.RLock()

    # -------------------------- instruments --------------------------- #

    def counter(self, name: str, labels: dict | None = None,
                help: str | None = None) -> Counter:
        """Get or create the counter ``name{labels}``."""
        return self._get(name, labels, Counter, (), help)

    def gauge(self, name: str, labels: dict | None = None,
              help: str | None = None) -> Gauge:
        """Get or create the gauge ``name{labels}``."""
        return self._get(name, labels, Gauge, (), help)

    def histogram(self, name: str, labels: dict | None = None,
                  buckets: Iterable[float] | None = None,
                  help: str | None = None) -> Histogram:
        """Get or create the histogram ``name{labels}``."""
        return self._get(name, labels, Histogram,
                         (buckets if buckets is not None else LATENCY_BUCKETS,),
                         help)

    def _get(self, name, labels, cls, args, help):
        key = (name, _label_key(labels))
        with self._lock:
            known = self._kinds.setdefault(name, cls.kind)
            if known != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {known}, not {cls.kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(*args)
                self._metrics[key] = metric
                if help:
                    self._help.setdefault(name, help)
            return metric

    # -------------------------- conveniences -------------------------- #

    def inc(self, name: str, n: float = 1.0, labels: dict | None = None) -> None:
        """Increment the counter ``name{labels}`` by ``n``."""
        self.counter(name, labels).inc(n)

    def set_gauge(self, name: str, value: float, labels: dict | None = None) -> None:
        """Set the gauge ``name{labels}``."""
        self.gauge(name, labels).set(value)

    def observe(self, name: str, value: float, labels: dict | None = None,
                buckets: Iterable[float] | None = None) -> None:
        """Observe ``value`` on the histogram ``name{labels}``."""
        self.histogram(name, labels, buckets=buckets).observe(value)

    # ---------------------------- reading ----------------------------- #

    def get(self, name: str, labels: dict | None = None):
        """The metric instance, or None when never touched."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, labels: dict | None = None) -> float:
        """Counter/gauge value (0.0 when never touched)."""
        metric = self.get(name, labels)
        return metric.value if metric is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of a counter family's values across all label sets."""
        return sum(
            m.value for (n, _), m in self._metrics.items()
            if n == name and not isinstance(m, Histogram)
        )

    def families(self) -> dict[str, list[tuple[_LabelKey, Any]]]:
        """Metrics grouped by family name (stable label order)."""
        out: dict[str, list[tuple[_LabelKey, Any]]] = {}
        with self._lock:
            items = sorted(self._metrics.items(), key=lambda item: item[0])
        for (name, labels), metric in items:
            out.setdefault(name, []).append((labels, metric))
        return out

    # ---------------------------- export ------------------------------ #

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, entries in self.families().items():
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {self._kinds[name]}")
            for labels, metric in entries:
                if isinstance(metric, Histogram):
                    cum = metric.cumulative()
                    for bound, count in zip(metric.buckets, cum):
                        lines.append(
                            f"{name}_bucket{_fmt_labels(labels, ('le', _fmt_float(bound)))} {count}"
                        )
                    lines.append(
                        f"{name}_bucket{_fmt_labels(labels, ('le', '+Inf'))} {cum[-1]}"
                    )
                    lines.append(f"{name}_sum{_fmt_labels(labels)} {_fmt_float(metric.sum)}")
                    lines.append(f"{name}_count{_fmt_labels(labels)} {metric.count}")
                else:
                    lines.append(
                        f"{name}{_fmt_labels(labels)} {_fmt_float(metric.value)}"
                    )
        return "\n".join(lines) + "\n"

    def to_json(self) -> dict:
        """JSON-able dump: one entry per (family, label set)."""
        out: dict[str, list[dict]] = {}
        for name, entries in self.families().items():
            rows = []
            for labels, metric in entries:
                row: dict[str, Any] = {"labels": dict(labels)}
                if isinstance(metric, Histogram):
                    row["sum"] = metric.sum
                    row["count"] = metric.count
                    row["buckets"] = {
                        _fmt_float(b): c
                        for b, c in zip(metric.buckets, metric.cumulative())
                    }
                else:
                    row["value"] = metric.value
                rows.append(row)
            out[name] = rows
        return {
            "metrics": {
                name: {"type": self._kinds[name], "series": rows}
                for name, rows in out.items()
            }
        }


def _fmt_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _fmt_labels(labels: _LabelKey, extra: tuple[str, str] | None = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in items)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


# --------------------------------------------------------------------- #
# Counter-bag bridging
# --------------------------------------------------------------------- #

_PRUNE_PREFIX = "pruned_by_"
_VALIDATE_PREFIX = "validated_by_"


def query_metrics_from_counters(
    registry: MetricsRegistry,
    deltas: dict[str, int],
    *,
    operator: str,
    elapsed: float | None = None,
    candidates: int | None = None,
) -> None:
    """Feed one query's counter deltas into the registry.

    Every delta lands in ``repro_counter_total{counter=...,operator=...}``
    (so sums reconcile exactly with ``Counters.snapshot()``); ``pruned_by_*``
    and ``validated_by_*`` fields are additionally exposed as
    ``repro_prune_hits_total`` / ``repro_validate_hits_total`` keyed by rule.
    """
    op_labels = {"operator": operator}
    registry.inc("repro_queries_total", 1, op_labels)
    if elapsed is not None:
        registry.observe("repro_query_seconds", elapsed, op_labels)
    if candidates is not None:
        registry.observe("repro_candidates", candidates, op_labels,
                         buckets=SIZE_BUCKETS)
    for key, value in deltas.items():
        if not value:
            continue
        registry.inc(
            "repro_counter_total", value, {"counter": key, "operator": operator}
        )
        if key.startswith(_PRUNE_PREFIX):
            registry.inc(
                "repro_prune_hits_total", value,
                {"rule": key[len(_PRUNE_PREFIX):], "operator": operator},
            )
        elif key.startswith(_VALIDATE_PREFIX):
            registry.inc(
                "repro_validate_hits_total", value,
                {"rule": key[len(_VALIDATE_PREFIX):], "operator": operator},
            )
