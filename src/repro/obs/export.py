"""Trace and metrics exporters.

* :func:`chrome_trace` — the Chrome Trace Event JSON format (complete
  ``"X"`` events, microsecond timestamps), loadable in ``chrome://tracing``
  or https://ui.perfetto.dev;
* :func:`spans_to_jsonl` — one JSON object per span, flat, grep-friendly;
* :func:`write_trace` / :func:`write_metrics` — suffix-dispatching file
  writers used by the ``repro search --trace/--metrics`` CLI flags.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanRecord

__all__ = [
    "chrome_trace",
    "merged_chrome_trace",
    "spans_to_jsonl",
    "write_metrics",
    "write_trace",
]


def chrome_trace(
    spans: Iterable[SpanRecord],
    *,
    process_name: str = "repro",
    pid: int = 1,
    tid: int = 1,
) -> dict:
    """Spans as a Chrome Trace Event JSON document.

    Each span becomes a complete (``ph: "X"``) event; labels and counter
    deltas ride along in ``args`` and show up in the trace viewer's detail
    pane.  Nesting is reconstructed by the viewer from timestamps, which the
    tracer guarantees are properly nested per thread.
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        events.append(_span_event(span, pid, tid, {}))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merged_chrome_trace(
    root_spans: Iterable[SpanRecord],
    shard_spans: Iterable[tuple[int, Iterable[SpanRecord]]] = (),
    *,
    trace_id: str | None = None,
    request_id: str | None = None,
    process_name: str = "repro-serve",
    pid: int = 1,
) -> dict:
    """One request's spans — handler plus every shard — as one Chrome trace.

    The request's root spans render on thread 0 (named ``request``) and each
    shard's buffer on its own thread row (``shard-<j>``); every event
    carries the request's ``trace_id`` / ``request_id`` in ``args``, so the
    merged document is self-describing even after it leaves the server.
    All tracers of one request share a ``trace_epoch``, so the rows line up
    on a single timeline across threads and forked workers.
    """
    correlate: dict = {}
    if trace_id is not None:
        correlate["trace_id"] = trace_id
    if request_id is not None:
        correlate["request_id"] = request_id
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "request"},
        },
    ]
    for span in root_spans:
        events.append(_span_event(span, pid, 0, correlate))
    for shard, spans in shard_spans:
        tid = int(shard) + 1
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": f"shard-{shard}"},
            }
        )
        for span in spans:
            events.append(_span_event(span, pid, tid, correlate))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _span_event(span: SpanRecord, pid: int, tid: int, correlate: dict) -> dict:
    args: dict = dict(correlate)
    if span.labels:
        args.update({k: _jsonable(v) for k, v in span.labels.items()})
    if span.counter_deltas:
        args["counters"] = span.counter_deltas
    return {
        "name": span.name,
        "cat": span.parent or "root",
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": span.duration * 1e6,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    """Spans as newline-delimited JSON (one event per line)."""
    lines = [json.dumps(_jsonable_dict(span.to_dict())) for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_trace(path: str | Path, tracer, *, format: str | None = None) -> Path:
    """Write a tracer's retained spans to ``path``.

    Args:
        path: output file; ``.jsonl`` selects the flat event log, anything
            else the Chrome-trace document (override with ``format``).
        tracer: a :class:`repro.obs.tracer.Tracer` (or any span iterable
            provider with a ``spans()`` method).
        format: ``"chrome"`` or ``"jsonl"``; default inferred from suffix.
    """
    path = Path(path)
    fmt = format or ("jsonl" if path.suffix == ".jsonl" else "chrome")
    spans = tracer.spans() if hasattr(tracer, "spans") else list(tracer)
    if fmt == "jsonl":
        path.write_text(spans_to_jsonl(spans))
    elif fmt == "chrome":
        path.write_text(json.dumps(chrome_trace(spans), indent=1) + "\n")
    else:
        raise ValueError(f"unknown trace format {fmt!r}")
    return path


def write_metrics(path: str | Path, registry: MetricsRegistry) -> Path:
    """Write a metrics registry to ``path``.

    ``.json`` selects the JSON dump; anything else (conventionally
    ``.prom`` or ``.txt``) the Prometheus text exposition format.
    """
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(json.dumps(registry.to_json(), indent=1) + "\n")
    else:
        path.write_text(registry.to_prometheus())
    return path


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _jsonable_dict(d: dict) -> dict:
    return {
        k: _jsonable_dict(v) if isinstance(v, dict) else _jsonable(v)
        for k, v in d.items()
    }
