"""Multi-window SLO burn-rate alerting, evaluated in-process.

The classic SRE-workbook construction: an alert fires when the *burn
rate* — the observed bad-event ratio divided by the error budget
``1 - objective`` — exceeds a threshold over **both** a fast and a slow
window.  A fast window alone is noisy (one bad probe in a quiet minute
is a 100% ratio); a slow window alone pages an hour late.  The shipped
defaults follow the 2%-budget-in-5-minutes / 10%-budget-in-6-hours
pairing collapsed to two windows:

* ``fast`` — 5 minutes, threshold 14.4× budget burn
* ``slow`` — 1 hour, threshold 6× budget burn

Three SLOs are tracked per request from :meth:`ServeApp._slo_account`:

* ``latency`` — request exceeded ``--slo-latency-ms``
* ``error`` — request answered 5xx
* ``degraded`` — request answered under budget degradation

Implementation: monotonic Prometheus-style counters cannot answer "ratio
over the last 5 minutes", so the monitor keeps a ring of coarse time
buckets (``bucket_s`` seconds each, pruned beyond the slowest window)
with per-bucket good/bad tallies — O(windows × buckets) per evaluation,
zero allocation per request beyond one dict hit.  The clock is
injectable (``now_fn``) so tests drive the windows deterministically.

Active alerts surface three ways: the ``repro_alerts_active{alert=...}``
gauge family, the ``alerts`` section of ``/status``, and the SLO
dashboard figure.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = ["BurnRateMonitor", "DEFAULT_WINDOWS"]

#: ``(name, window_seconds, burn-rate threshold)`` — fast/slow pairing.
DEFAULT_WINDOWS: tuple[tuple[str, float, float], ...] = (
    ("fast", 300.0, 14.4),
    ("slow", 3600.0, 6.0),
)

#: SLO dimensions tracked per request, in bucket-slot order.
_SLOS = ("latency", "error", "degraded")


class BurnRateMonitor:
    """Tracks request outcomes and evaluates multi-window burn alerts.

    Args:
        objective: SLO target fraction; the error budget is
            ``1 - objective`` (0.99 → 1% budget).
        windows: ``(name, seconds, threshold)`` triples; an alert
            ``{slo}-{name}-burn`` fires when that window's burn rate
            meets its threshold.
        bucket_s: tally granularity in seconds.  Windows shorter than a
            few buckets lose resolution; the default 10s gives the 5m
            fast window 30 buckets.
        min_samples: a window with fewer requests than this never fires
            (a single bad request in an idle fleet is not an outage).
        registry: gauge sink for ``repro_alerts_active``; optional.
        now_fn: injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        *,
        objective: float = 0.99,
        windows: Sequence[tuple[str, float, float]] = DEFAULT_WINDOWS,
        bucket_s: float = 10.0,
        min_samples: int = 10,
        registry: MetricsRegistry | None = None,
        now_fn: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if not windows:
            raise ValueError("at least one window is required")
        self.objective = float(objective)
        self.budget = 1.0 - self.objective
        self.windows = tuple(
            (str(name), float(seconds), float(threshold))
            for name, seconds, threshold in windows
        )
        self.bucket_s = float(bucket_s)
        self.min_samples = int(min_samples)
        self.registry = registry
        self._now = now_fn
        self._lock = threading.Lock()
        #: bucket index -> [total, bad_latency, bad_error, bad_degraded]
        self._buckets: dict[int, list[int]] = {}
        self._horizon = max(seconds for _, seconds, _ in self.windows)

    # ------------------------------ recording --------------------------- #

    def record(
        self,
        *,
        latency_bad: bool = False,
        error: bool = False,
        degraded: bool = False,
    ) -> None:
        """Tally one finished request's outcome into the current bucket."""
        idx = int(self._now() // self.bucket_s)
        with self._lock:
            slot = self._buckets.get(idx)
            if slot is None:
                slot = self._buckets[idx] = [0, 0, 0, 0]
                self._prune(idx)
            slot[0] += 1
            if latency_bad:
                slot[1] += 1
            if error:
                slot[2] += 1
            if degraded:
                slot[3] += 1

    def _prune(self, current_idx: int) -> None:
        """Drop buckets older than the slowest window (lock held)."""
        floor = current_idx - int(self._horizon // self.bucket_s) - 1
        for idx in [i for i in self._buckets if i < floor]:
            del self._buckets[idx]

    # ------------------------------ evaluation -------------------------- #

    def evaluate(self) -> list[dict]:
        """Compute every window's burn rate; update gauges; return rows.

        Each row: ``{alert, slo, window, window_s, threshold, requests,
        bad, ratio, burn_rate, active}``.  The gauge
        ``repro_alerts_active{alert=...}`` is set to 1.0/0.0 per alert so
        a scrape shows firing *and* resolved alerts (a vanishing series
        is indistinguishable from a never-created one).
        """
        now = self._now()
        current_idx = int(now // self.bucket_s)
        with self._lock:
            buckets = [(idx, list(slot)) for idx, slot in self._buckets.items()]
        rows: list[dict] = []
        for name, seconds, threshold in self.windows:
            floor = current_idx - int(seconds // self.bucket_s)
            total = 0
            bad = [0, 0, 0]
            for idx, slot in buckets:
                if idx < floor:
                    continue
                total += slot[0]
                for pos in range(3):
                    bad[pos] += slot[pos + 1]
            for pos, slo in enumerate(_SLOS):
                ratio = (bad[pos] / total) if total else 0.0
                burn = ratio / self.budget
                active = total >= self.min_samples and burn >= threshold
                alert = f"{slo}-{name}-burn"
                if self.registry is not None:
                    self.registry.set_gauge(
                        "repro_alerts_active",
                        1.0 if active else 0.0,
                        {"alert": alert},
                    )
                rows.append(
                    {
                        "alert": alert,
                        "slo": slo,
                        "window": name,
                        "window_s": seconds,
                        "threshold": threshold,
                        "requests": total,
                        "bad": bad[pos],
                        "ratio": ratio,
                        "burn_rate": burn,
                        "active": active,
                    }
                )
        return rows

    def snapshot(self) -> dict:
        """The ``alerts`` section of ``/status``: config + evaluated rows."""
        rows = self.evaluate()
        return {
            "objective": self.objective,
            "budget": self.budget,
            "bucket_s": self.bucket_s,
            "min_samples": self.min_samples,
            "windows": [
                {"name": name, "seconds": seconds, "threshold": threshold}
                for name, seconds, threshold in self.windows
            ],
            "active": sorted(r["alert"] for r in rows if r["active"]),
            "rows": rows,
        }
