"""Structured JSON logging with automatic request-id correlation.

One event per line, machine-parseable, with the current
:class:`repro.obs.request.RequestContext` (when bound) stamped onto every
record — so a grep for one ``request_id`` reconstructs a request's full
story across the HTTP handler, the scatter-gather, shard workers, and
degradation events.

The module-level logger defaults to :data:`NULL_LOGGER` (a no-op), so
library code can call :func:`log_event` unconditionally; the serving CLI
installs a :class:`JsonLogger` with :func:`set_logger` when ``--log-json``
is passed.  Event emission behind the null logger is one attribute check.

Record shape::

    {"ts": 1722.., "level": "info", "event": "serve.request",
     "service": "repro-serve", "request_id": "9f..", "trace_id": "3a..",
     ...free-form fields...}
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, IO

from repro.obs import request as _request

__all__ = [
    "JsonLogger",
    "NullLogger",
    "NULL_LOGGER",
    "get_logger",
    "log_event",
    "set_logger",
]

_LEVELS = ("debug", "info", "warning", "error")


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class NullLogger:
    """No-op logger: every event is dropped at one attribute check."""

    enabled = False

    def log(self, event: str, *, level: str = "info", **fields: Any) -> None:
        """Drop the event."""


NULL_LOGGER = NullLogger()
"""Shared no-op logger — the default sink."""


class JsonLogger:
    """Thread-safe line-per-event JSON logger.

    Args:
        stream: writable text stream (defaults to ``sys.stderr``).
        service: ``service`` field stamped on every record.
        min_level: drop events below this level (``debug`` < ``info`` <
            ``warning`` < ``error``).
        static: extra fields merged into every record (e.g. host, port).
    """

    enabled = True

    def __init__(
        self,
        stream: IO[str] | None = None,
        *,
        service: str = "repro",
        min_level: str = "info",
        static: dict | None = None,
    ) -> None:
        if min_level not in _LEVELS:
            raise ValueError(f"unknown level {min_level!r}; one of {_LEVELS}")
        self.stream = stream if stream is not None else sys.stderr
        self.service = service
        self.min_level = min_level
        self.static = dict(static or {})
        self.emitted = 0
        self._lock = threading.Lock()

    def log(self, event: str, *, level: str = "info", **fields: Any) -> None:
        """Emit one event (request/trace ids attached automatically)."""
        if _LEVELS.index(level) < _LEVELS.index(self.min_level):
            return
        record: dict[str, Any] = {
            "ts": time.time(),
            "level": level,
            "event": event,
            "service": self.service,
        }
        ctx = _request.current()
        if ctx is not None:
            record["request_id"] = ctx.request_id
            record["trace_id"] = ctx.trace_id
            if ctx.shard is not None:
                record["shard"] = ctx.shard
        record.update(self.static)
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self.stream.write(line + "\n")
            flush = getattr(self.stream, "flush", None)
            if flush is not None:
                flush()
            self.emitted += 1


_LOGGER: NullLogger | JsonLogger = NULL_LOGGER


def get_logger():
    """The installed process-wide logger (the null logger by default)."""
    return _LOGGER


def set_logger(logger) -> None:
    """Install ``logger`` process-wide (pass :data:`NULL_LOGGER` to reset)."""
    global _LOGGER
    _LOGGER = logger if logger is not None else NULL_LOGGER


def log_event(event: str, *, level: str = "info", **fields: Any) -> None:
    """Emit one event through the installed logger (no-op by default)."""
    logger = _LOGGER
    if logger.enabled:
        logger.log(event, level=level, **fields)
