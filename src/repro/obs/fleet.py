"""Router-side metrics federation: scrape the fleet, merge into one view.

Each node in a router fleet is its own observability island — its
``/metrics`` registry, SLO histograms, and epoch live inside its process.
The :class:`FleetScraper` periodically pulls every node's ``/status`` and
``/metrics.json`` (the JSON twin of ``/metrics``, added so federation
never parses Prometheus text) and *absorbs* the metrics into the router's
own registry with a ``node`` label:

* counters and gauges are overwritten with the scraped value — a scrape
  is a snapshot of the node's monotonic state, so overwrite (not add) is
  what keeps re-scrapes idempotent;
* histograms are rebuilt from the exported cumulative buckets
  (:meth:`Histogram.from_cumulative`) and replaced in-place, which is
  what makes **cross-node quantiles** possible: bucket counts from
  identical bounds are additive (:meth:`Histogram.merge`), so the fleet
  p99 is computed from real merged distributions, not an average of
  per-node percentiles (which would be statistically meaningless).

Absorbed series are excluded from the router's own aggregate SLO ratios
(:func:`repro.obs.metrics.update_slo_gauges` skips ``node``-labelled
rows); they power the ``/fleet`` endpoint and the fleet-overview
dashboard figure instead.  Scrape health is itself metered
(``repro_fleet_scrapes_total`` / ``repro_fleet_scrape_errors_total``
per node), and each node's epoch lands in ``repro_fleet_node_epoch`` so
replication lag is one PromQL expression away.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from repro.obs.metrics import Histogram, MetricsRegistry, SLO_QUANTILES

__all__ = ["FleetScraper", "absorb_node_metrics"]

#: Families never absorbed from a node: the scraper's own bookkeeping
#: (a router-of-routers must not double-federate) and derived gauges the
#: router recomputes locally.
_SKIP_FAMILIES = (
    "repro_fleet_",
    "repro_slo_latency_seconds",
    "repro_slo_shard_latency_seconds",
    "repro_slo_degraded_ratio",
    "repro_slo_error_ratio",
)


def absorb_node_metrics(
    registry: MetricsRegistry, dump: Mapping[str, Any], node_id: str
) -> int:
    """Merge one node's ``/metrics.json`` dump into ``registry``.

    Every absorbed series gains a ``node`` label; series that already
    carry one (a node that is itself federating) are skipped to keep the
    label single-valued.  Returns the number of series absorbed.
    Malformed or locally-conflicting series (kind mismatch, different
    histogram bounds) are skipped rather than poisoning the scrape.
    """
    families = (dump or {}).get("metrics", {})
    absorbed = 0
    for name, family in families.items():
        if any(name.startswith(prefix) for prefix in _SKIP_FAMILIES):
            continue
        kind = family.get("type")
        for row in family.get("series", ()):
            labels = dict(row.get("labels", {}))
            if "node" in labels:
                continue
            labels["node"] = node_id
            try:
                if kind == "histogram":
                    _absorb_histogram(registry, name, labels, row)
                elif kind == "counter":
                    registry.counter(name, labels).value = float(row["value"])
                elif kind == "gauge":
                    registry.gauge(name, labels).set(float(row["value"]))
                else:
                    continue
            except (KeyError, TypeError, ValueError):
                continue
            absorbed += 1
    return absorbed


def _absorb_histogram(
    registry: MetricsRegistry, name: str, labels: dict, row: Mapping[str, Any]
) -> None:
    buckets = row["buckets"]
    bounds = sorted(float(b) for b in buckets)
    cumulative = [int(buckets[key]) for key in
                  sorted(buckets, key=lambda k: float(k))]
    rebuilt = Histogram.from_cumulative(
        bounds, cumulative, sum=float(row.get("sum", 0.0)),
        count=int(row["count"]),
    )
    hist = registry.histogram(name, labels, buckets=bounds)
    if tuple(hist.buckets) != tuple(rebuilt.buckets):
        raise ValueError(f"bucket bounds changed for {name}{labels}")
    hist.counts[:] = rebuilt.counts
    hist.sum = rebuilt.sum
    hist.count = rebuilt.count


class FleetScraper:
    """Pulls every node's metrics + status into one federated view.

    Args:
        nodes: ``node_id -> node`` mapping speaking the
            :class:`repro.serve.remote._NodeBase` interface (the router
            shares its node clients, so scrapes ride the same breakers
            and latency windows as queries).
        registry: the (router's) registry absorbing node series.
        timeout_s: per-call scrape timeout.

    The scraper is driven externally — the router piggybacks it on the
    health-sweep thread, ``/fleet`` forces a fresh pass — so it owns no
    thread of its own and needs no lifecycle beyond the router's.
    """

    def __init__(
        self,
        nodes: Mapping[str, Any],
        registry: MetricsRegistry,
        *,
        timeout_s: float = 5.0,
    ) -> None:
        self.nodes = dict(nodes)
        self.registry = registry
        self.timeout_s = timeout_s
        self._lock = threading.Lock()
        self._views: dict[str, dict] = {}
        self._last_scrape: float | None = None

    # ------------------------------ scraping ---------------------------- #

    def scrape(self) -> dict:
        """One pass over the fleet; absorbs metrics, returns the snapshot."""
        from repro.serve.remote import RemoteNodeError

        for node_id, node in sorted(self.nodes.items()):
            view: dict[str, Any] = {"node_id": node_id, "ok": False}
            self.registry.inc(
                "repro_fleet_scrapes_total", 1, {"node": node_id}
            )
            try:
                status_code, status_body = node.call(
                    "GET", "/status", timeout_s=self.timeout_s
                )
                metrics_code, metrics_body = node.call(
                    "GET", "/metrics.json", timeout_s=self.timeout_s
                )
                if status_code != 200 or metrics_code != 200:
                    raise RemoteNodeError(
                        f"node {node_id}: scrape HTTP "
                        f"{status_code}/{metrics_code}"
                    )
            except RemoteNodeError as exc:
                self.registry.inc(
                    "repro_fleet_scrape_errors_total", 1, {"node": node_id}
                )
                view["error"] = str(exc)
            else:
                view["ok"] = True
                view["absorbed_series"] = absorb_node_metrics(
                    self.registry, metrics_body, node_id
                )
                view.update(_node_view(status_body))
                self.registry.set_gauge(
                    "repro_fleet_node_epoch",
                    float(view.get("epoch") or 0),
                    {"node": node_id},
                )
            view["breaker"] = node.breaker.state
            with self._lock:
                self._views[node_id] = view
        with self._lock:
            self._last_scrape = time.time()
        return self.snapshot()

    # ------------------------------ reading ----------------------------- #

    def snapshot(self) -> dict:
        """The ``/fleet`` body: per-node views + fleet-merged quantiles."""
        with self._lock:
            views = {nid: dict(view) for nid, view in self._views.items()}
            last = self._last_scrape
        return {
            "scraped_at": last,
            "nodes": views,
            "quantiles": self.merged_quantiles(),
        }

    def merged_quantiles(self) -> dict:
        """Fleet-wide latency quantiles per operator.

        Merges every absorbed ``repro_query_seconds{operator,node}``
        histogram per operator — additive bucket counts, so the result is
        exactly the quantile a single fleet-wide histogram would report.
        Clamped quantiles (rank in the ``+Inf`` bucket) are flagged, same
        contract as :func:`repro.obs.metrics.slo_snapshot`.
        """
        merged: dict[str, Histogram] = {}
        families = self.registry.families().get("repro_query_seconds", [])
        for labels, metric in families:
            row = dict(labels)
            if "node" not in row:
                continue
            op = row.get("operator", "")
            agg = merged.get(op)
            if agg is None:
                agg = merged[op] = Histogram(metric.buckets)
            try:
                agg.merge(metric)
            except ValueError:
                continue
        out: dict[str, dict] = {}
        for op, hist in sorted(merged.items()):
            per_op: dict[str, Any] = {"count": hist.count}
            clamped: list[str] = []
            for qname, q in SLO_QUANTILES:
                value, was_clamped = hist.quantile_clamped(q)
                per_op[qname] = value
                if was_clamped:
                    clamped.append(qname)
            if clamped:
                per_op["clamped"] = clamped
            if hist.overflow:
                per_op["overflow"] = hist.overflow
            out[op] = per_op
        return out


def _node_view(status_body: Mapping[str, Any]) -> dict:
    """The per-node slice of ``/fleet``, shaped from a ``/status`` body."""
    slo = status_body.get("slo") or {}
    alerts = status_body.get("alerts") or {}
    return {
        "status": status_body.get("status"),
        "epoch": status_body.get("epoch"),
        "objects": status_body.get("objects"),
        "inflight": status_body.get("inflight"),
        "start_time": status_body.get("start_time"),
        "uptime_seconds": status_body.get("uptime_seconds"),
        "latency_seconds": slo.get("latency_seconds") or {},
        "overflow": slo.get("overflow") or {},
        "clamped": slo.get("clamped") or {},
        "burn": slo.get("burn") or {},
        "alerts": alerts.get("active") or [],
    }
