"""Function-specific NN / top-k query processing.

The candidate search answers "who *could* be the NN under some function?".
Once a user settles on a concrete function — e.g. after browsing the
candidates, the workflow the paper's introduction motivates — the follow-up
queries are classic function-specific (top-)k NN searches.  This subpackage
answers them *exactly* with index-level bounds instead of scoring every
object:

* :mod:`repro.query.bounds` — optimistic/pessimistic bounds on function
  scores from MBRs and level partitions.  For any *stable* aggregate the
  bounding distributions bracket the true score (Definition 8), which is the
  same machinery the level-by-level dominance filters use.
* :mod:`repro.query.topk` — best-first top-k search over the global R-tree
  with progressive refinement (MBR bound → partition bound → exact score).
* :mod:`repro.query.probable_nn` — top-k *probable* NN (the possible-world
  query of reference [7]) via bound-then-verify over the exact rank DP.
"""

from repro.query.bounds import (
    aggregate_bounds,
    emd_lower_bound,
    hausdorff_lower_bound,
    mbr_score_bounds,
)
from repro.query.probable_nn import top_k_probable_nn
from repro.query.topk import FunctionTopK, top_k

__all__ = [
    "FunctionTopK",
    "top_k_probable_nn",
    "aggregate_bounds",
    "emd_lower_bound",
    "hausdorff_lower_bound",
    "mbr_score_bounds",
    "top_k",
]
