"""Exact top-k NN search for a concrete NN function, with index bounds.

Classic best-first search with progressive refinement: R-tree nodes enter a
min-heap keyed by an *admissible* (never over-estimating) score bound; when
an object surfaces it is re-keyed by its exact score; when an exact-scored
object surfaces again it is final — everything left on the heap is bounded
below by its score.  The search therefore scores only the objects whose
bound falls below the k-th best score, instead of the whole dataset.

Scorers are provided for all shipped N1 aggregates (via the stable-aggregate
bound of :mod:`repro.query.bounds`) and for the N3 functions Hausdorff,
sum-of-minimal-distances and EMD/Netflow.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.functions import n3
from repro.functions.base import StableAggregate
from repro.geometry.mbr import MBR
from repro.index.rtree import RTree, RTreeNode
from repro.objects.uncertain import UncertainObject
from repro.query.bounds import hausdorff_lower_bound, mbr_score_bounds


@dataclass(frozen=True)
class Scorer:
    """An NN function with an admissible MBR-level lower bound.

    Attributes:
        name: display name.
        exact: maps ``(object, query)`` to the true (smaller-is-better) score.
        bound: maps ``(mbr, query)`` to a value ``<=`` the exact score of
            every object whose instances lie inside ``mbr``.
    """

    name: str
    exact: Callable[[UncertainObject, UncertainObject], float]
    bound: Callable[[MBR, UncertainObject], float]


def aggregate_scorer(aggregate: StableAggregate) -> Scorer:
    """Scorer for any stable aggregate over the distance distribution."""
    return Scorer(
        name=f"n1[{aggregate.name}]",
        exact=lambda obj, query: aggregate(obj.distance_distribution(query)),
        bound=lambda mbr, query: mbr_score_bounds(mbr, query, aggregate)[0],
    )


def hausdorff_scorer() -> Scorer:
    """Scorer for the Hausdorff distance (Definition 11)."""
    return Scorer(
        name="hausdorff",
        exact=n3.hausdorff_distance,
        bound=hausdorff_lower_bound,
    )


def summin_scorer() -> Scorer:
    """Scorer for the sum of minimal distances."""

    def bound(mbr: MBR, query: UncertainObject) -> float:
        # The q-side sum alone lower-bounds the symmetric average.
        q_side = float(
            np.dot([mbr.mindist(q) for q in query.points], query.probs)
        )
        return 0.5 * q_side

    return Scorer(name="sum-min-dist", exact=n3.sum_of_min_distances, bound=bound)


def emd_scorer() -> Scorer:
    """Scorer for the Earth Mover's / Netflow distance (centroid bound)."""

    def bound(mbr: MBR, query: UncertainObject) -> float:
        # centroid(U) lies inside the MBR, so EMD >= mindist(centroid(Q), mbr).
        q_centroid = np.average(query.points, axis=0, weights=query.probs)
        return mbr.mindist(q_centroid)

    return Scorer(name="emd", exact=n3.earth_movers_distance, bound=bound)


class FunctionTopK:
    """Reusable exact top-k engine over one object collection.

    Args:
        objects: the dataset; one global R-tree serves every query/scorer.
    """

    def __init__(
        self, objects: Sequence[UncertainObject], global_fanout: int = 16
    ) -> None:
        self.objects = list(objects)
        entries = [(obj.mbr, obj) for obj in self.objects]
        self.tree = RTree.bulk_load(entries, max_entries=global_fanout)

    def query(
        self,
        query: UncertainObject,
        scorer: Scorer | StableAggregate,
        k: int = 1,
    ) -> list[tuple[float, UncertainObject]]:
        """The exact ``k`` best objects under the scorer, best first.

        Args:
            query: the query object.
            scorer: a :class:`Scorer` or a bare stable aggregate (wrapped
                via :func:`aggregate_scorer`).
            k: result size.

        Returns:
            ``[(score, object), ...]`` sorted by score; ties broken by
            discovery order.  Also records how many exact scores were
            computed in :attr:`last_exact_scores` (for bound-quality tests).
        """
        if k < 1:
            raise ValueError("k must be at least 1")
        if not isinstance(scorer, Scorer):
            scorer = aggregate_scorer(scorer)
        counter = itertools.count()
        heap: list[tuple[float, int, int, object]] = []
        # kinds: 0 = tree node, 1 = object awaiting exact score, 2 = scored.
        root = self.tree.root
        self.last_exact_scores = 0
        if root.mbr is None:
            return []
        heapq.heappush(heap, (scorer.bound(root.mbr, query), next(counter), 0, root))
        out: list[tuple[float, UncertainObject]] = []
        while heap and len(out) < k:
            key, _, kind, item = heapq.heappop(heap)
            if kind == 2:
                out.append((key, item))  # type: ignore[arg-type]
                continue
            if kind == 1:
                obj: UncertainObject = item  # type: ignore[assignment]
                self.last_exact_scores += 1
                exact = scorer.exact(obj, query)
                heapq.heappush(heap, (exact, next(counter), 2, obj))
                continue
            node: RTreeNode = item  # type: ignore[assignment]
            if node.is_leaf:
                for mbr, obj in node.entries:
                    heapq.heappush(
                        heap, (scorer.bound(mbr, query), next(counter), 1, obj)
                    )
            else:
                for child in node.children:
                    heapq.heappush(
                        heap,
                        (
                            scorer.bound(child.mbr, query),  # type: ignore[arg-type]
                            next(counter),
                            0,
                            child,
                        ),
                    )
        return out


def top_k(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    scorer: Scorer | StableAggregate,
    k: int = 1,
) -> list[tuple[float, UncertainObject]]:
    """One-shot exact top-k query (builds the index and searches)."""
    return FunctionTopK(objects).query(query, scorer, k)
