"""Score bounds for NN functions from object approximations.

For a *stable* aggregate ``g`` (Definition 8) and bounding distributions
``L <=_st U_Q <=_st P`` (built from MBRs or level partitions exactly as in
Section 5.1's level-by-level filters), stability gives

.. math:: g(L) \\le g(U_Q) \\le g(P),

so ``g(L)`` is an admissible optimistic bound for best-first search.  The
coarsest bound needs only the object MBR; the partition bound tightens it
using the local R-tree slices.

Two selected-pairs bounds are provided as well:

* Hausdorff — ``D_h(U, Q) >= max(max_q mindist(q, U_mbr), min_q mindist(q, U_mbr))``
  relaxed to the computable ``max_q`` form over query instances against the
  object MBR (every instance of ``U`` is inside the MBR, so ``delta_min(q, U)
  >= mindist(q, U_mbr)``).
* EMD — by convexity of the distance (Jensen), the cost of any transport
  plan is at least the distance between the probability-weighted centroids.
"""

from __future__ import annotations

import numpy as np

from repro.core.context import QueryContext
from repro.functions.base import StableAggregate
from repro.geometry.mbr import MBR
from repro.objects.uncertain import UncertainObject
from repro.stats.distribution import DiscreteDistribution


def mbr_score_bounds(
    mbr: MBR, query: UncertainObject, aggregate: StableAggregate, norm=None
) -> tuple[float, float]:
    """Optimistic/pessimistic aggregate scores for anything inside ``mbr``.

    The optimistic distribution puts each query instance's mass at its
    mindist to the box; the pessimistic one at its maxdist.  Valid for any
    object whose instances all lie in ``mbr`` (e.g. an R-tree entry).
    """
    lo_vals = [mbr.mindist(q, norm) for q in query.points]
    hi_vals = [mbr.maxdist(q, norm) for q in query.points]
    lo = DiscreteDistribution(lo_vals, query.probs)
    hi = DiscreteDistribution(hi_vals, query.probs)
    return aggregate(lo), aggregate(hi)


def aggregate_bounds(
    obj: UncertainObject,
    ctx: QueryContext,
    aggregate: StableAggregate,
) -> tuple[float, float]:
    """Partition-level bounds on ``g(U_Q)`` (tighter than the MBR bound)."""
    from repro.core.ssd import bounding_distributions

    lo, hi = bounding_distributions(obj, ctx)
    return aggregate(lo), aggregate(hi)


def hausdorff_lower_bound(mbr: MBR, query: UncertainObject, norm=None) -> float:
    """Admissible lower bound on the Hausdorff distance for objects in ``mbr``.

    ``delta_min(q, U) >= mindist(q, mbr)`` for every query instance, and the
    Hausdorff distance takes a max over query instances, hence the bound.
    """
    return max(mbr.mindist(q, norm) for q in query.points)


def emd_lower_bound(
    obj_centroid: np.ndarray,
    query: UncertainObject,
) -> float:
    """Centroid bound: ``EMD(U, Q) >= ||centroid(U) - centroid(Q)||``.

    Jensen's inequality applied to the convex map ``(u, q) -> u - q`` under
    any norm: the expected displacement of an optimal plan has length at
    least the displacement of the expectations.
    """
    q_centroid = np.average(query.points, axis=0, weights=query.probs)
    return float(np.linalg.norm(np.asarray(obj_centroid) - q_centroid))


def object_centroid(obj: UncertainObject) -> np.ndarray:
    """Probability-weighted centroid of an object's instances."""
    return np.average(obj.points, axis=0, weights=obj.probs)
