"""Top-k probable nearest neighbors (in the spirit of reference [7]).

Beskales et al. search for the ``k`` objects with the highest *NN
probability* without scoring the whole dataset.  We reproduce the idea with
a two-phase bound-then-verify algorithm on top of the exact possible-world
machinery of :mod:`repro.functions.n2`:

1. **Bound** — for every object an upper bound on its NN probability from a
   handful of nearby competitors: conditioned on a query instance ``q`` and
   own instance ``u``, the probability that *no* other object is closer is
   at most ``min_V Pr(delta(V, q) >= delta(u, q))`` for any single
   competitor ``V``, so any subset of competitors yields an admissible
   bound.
2. **Verify** — objects are popped in decreasing bound order and scored
   exactly (shared rank-distribution DP); the search stops as soon as the
   k-th best exact probability reaches the best remaining bound.

The result is exactly the top-k by NN probability; the bounds only decide
how many exact evaluations are needed.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.functions.n2 import PossibleWorldScores
from repro.geometry.distance import pairwise_distances
from repro.objects.uncertain import UncertainObject


def _competitor_bound(
    index: int,
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    competitor_ids: Sequence[int],
) -> float:
    """Admissible upper bound on ``Pr(objects[index] is NN)``.

    For each (query instance, own instance) pair, the survival probability
    against the *strongest* listed competitor bounds the survival against
    everyone.
    """
    obj = objects[index]
    own = pairwise_distances(query.points, obj.points)  # (k, m)
    if not competitor_ids:
        return 1.0
    bound = 0.0
    comp_dists = [
        (objects[j], pairwise_distances(query.points, objects[j].points))
        for j in competitor_ids
    ]
    for qi, q_prob in enumerate(query.probs):
        for ui, u_prob in enumerate(obj.probs):
            threshold = own[qi, ui]
            survive = 1.0
            for comp, dists in comp_dists:
                farther = float(comp.probs[dists[qi] >= threshold - 1e-12].sum())
                survive = min(survive, farther)
            bound += float(q_prob) * float(u_prob) * survive
    return bound


def top_k_probable_nn(
    objects: Sequence[UncertainObject],
    query: UncertainObject,
    k: int = 1,
    *,
    competitors_per_bound: int = 4,
) -> list[tuple[float, UncertainObject]]:
    """The exact ``k`` objects of highest NN probability, best first.

    Args:
        objects: the dataset.
        query: the query object.
        k: result size.
        competitors_per_bound: how many nearby competitors feed each
            object's upper bound (more = tighter bounds, costlier phase 1).

    Returns:
        ``[(nn_probability, object), ...]`` sorted by decreasing
        probability.  The module-level ``last_exact_evaluations`` records
        how many exact scores the call needed (bound-quality diagnostic).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    n = len(objects)
    if n == 0:
        return []
    centroids = np.array(
        [np.average(o.points, axis=0, weights=o.probs) for o in objects]
    )
    pw = PossibleWorldScores(objects, query)
    # Phase 1: bounds from the nearest few competitors by centroid distance.
    bounds = np.empty(n)
    for i in range(n):
        gaps = np.linalg.norm(centroids - centroids[i], axis=1)
        gaps[i] = np.inf
        nearest = np.argsort(gaps)[: min(competitors_per_bound, n - 1)]
        bounds[i] = _competitor_bound(i, objects, query, nearest.tolist())
    # Phase 2: verify in decreasing bound order.
    order = [(-float(bounds[i]), i) for i in range(n)]
    heapq.heapify(order)
    exact: list[tuple[float, int]] = []  # (probability, index)
    evaluations = 0
    while order:
        neg_bound, i = heapq.heappop(order)
        if len(exact) >= k and -neg_bound <= exact[k - 1][0] + 1e-12:
            break  # nothing left can displace the current top-k
        evaluations += 1
        prob = pw.nn_probability(i)
        exact.append((prob, i))
        exact.sort(key=lambda t: (-t[0], t[1]))
    global last_exact_evaluations
    last_exact_evaluations = evaluations
    return [(prob, objects[i]) for prob, i in exact[:k]]


#: Number of exact NN-probability evaluations in the most recent call
#: (diagnostic for bound quality; not thread safe).
last_exact_evaluations = 0
