"""Minimum-cost maximum flow (successive shortest paths with potentials).

Implements the solver behind the Earth Mover's / Netflow distances
(Appendix A of the paper): the minimal-cost flow of value 1 through the
bipartite *distance network* between an object and the query.

The algorithm is successive shortest augmenting paths with Johnson
potentials: after an initial Bellman-Ford (costs here are non-negative, so
it's skipped), each augmentation runs Dijkstra on reduced costs, which are
kept non-negative by the potential update.  Capacities and costs are real
numbers; for the bipartite transport instances produced by EMD the number of
augmentations is bounded by the number of distinct supply/demand atoms.
"""

from __future__ import annotations

import heapq

_EPS = 1e-12


class MinCostFlowNetwork:
    """Adjacency-list network carrying capacity and cost per edge."""

    __slots__ = ("n", "graph")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("network needs at least one vertex")
        self.n = n
        # Each edge: [to, capacity, cost, index-of-reverse]
        self.graph: list[list[list[float]]] = [[] for _ in range(n)]

    def add_edge(self, u: int, v: int, capacity: float, cost: float) -> None:
        """Add directed edge ``u -> v`` with capacity and per-unit cost."""
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise IndexError(f"edge ({u}, {v}) outside vertex range 0..{self.n - 1}")
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.graph[u].append([v, float(capacity), float(cost), len(self.graph[v])])
        self.graph[v].append([u, 0.0, -float(cost), len(self.graph[u]) - 1])


def min_cost_flow(
    net: MinCostFlowNetwork, source: int, sink: int, max_value: float = float("inf")
) -> tuple[float, float]:
    """Cheapest flow of value up to ``max_value`` from source to sink.

    Args:
        net: the network (mutated in place: residual capacities updated).
        source: source vertex.
        sink: sink vertex.
        max_value: stop once this much flow has been routed.

    Returns:
        ``(flow_value, total_cost)`` — the value actually routed (the max
        flow if ``max_value`` is infinite) and its cost.

    Raises:
        ValueError: if any original edge has negative cost (Dijkstra-based
            solver requires non-negative costs; EMD networks satisfy this).
    """
    for u in range(net.n):
        for edge in net.graph[u]:
            if edge[1] > _EPS and edge[2] < -_EPS:
                raise ValueError("min_cost_flow requires non-negative edge costs")
    potential = [0.0] * net.n
    total_flow = 0.0
    total_cost = 0.0
    while total_flow < max_value - _EPS:
        dist = [float("inf")] * net.n
        dist[source] = 0.0
        parent: list[tuple[int, int] | None] = [None] * net.n
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for idx, edge in enumerate(net.graph[u]):
                v, cap, cost = edge[0], edge[1], edge[2]
                if cap <= _EPS:
                    continue
                # Reduced costs are non-negative up to float noise; clamping
                # keeps Dijkstra's invariant and prevents noise-sized
                # "improvements" from cascading around zero-cost cycles.
                reduced = cost + potential[u] - potential[v]
                if reduced < 0.0:
                    reduced = 0.0
                nd = d + reduced
                slack = 0.0 if dist[v] == float("inf") else 1e-12 * (1.0 + dist[v])
                if nd < dist[v] - slack:
                    dist[v] = nd
                    parent[v] = (u, idx)
                    heapq.heappush(heap, (nd, v))
        if dist[sink] == float("inf"):
            break
        for v in range(net.n):
            if dist[v] < float("inf"):
                potential[v] += dist[v]
        # Find bottleneck along the augmenting path.
        bottleneck = max_value - total_flow
        v = sink
        while v != source:
            u, idx = parent[v]  # type: ignore[misc]
            bottleneck = min(bottleneck, net.graph[u][idx][1])
            v = u
        # Apply augmentation.
        v = sink
        path_cost = 0.0
        while v != source:
            u, idx = parent[v]  # type: ignore[misc]
            edge = net.graph[u][idx]
            edge[1] -= bottleneck
            net.graph[edge[0]][int(edge[3])][1] += bottleneck
            path_cost += edge[2]
            v = u
        total_flow += bottleneck
        total_cost += bottleneck * path_cost
    return total_flow, total_cost
