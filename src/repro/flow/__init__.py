"""Network-flow algorithms built from scratch.

The P-SD dominance check reduces to maximum flow on a bipartite network
(Theorem 12); the Earth Mover's / Netflow distances of the N3 family reduce
to a minimum-cost maximum flow (Appendix A, Definition 12).  Both solvers
support real-valued capacities, which is what instance probabilities are.
"""

from repro.flow.maxflow import FlowBudgetError, FlowNetwork, max_flow
from repro.flow.mincost import MinCostFlowNetwork, min_cost_flow

__all__ = [
    "FlowBudgetError",
    "FlowNetwork",
    "MinCostFlowNetwork",
    "max_flow",
    "min_cost_flow",
]
