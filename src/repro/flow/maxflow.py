"""Maximum flow with real capacities (Dinic's algorithm).

Used by the P-SD dominance check: the paper (Theorem 12) shows
``P-SD(U, V, Q)`` holds iff the max flow of the bipartite network
``source -> u-instances -> v-instances -> sink`` equals 1, where instance
edges exist exactly when ``u <=_Q v``.

Dinic's algorithm is exact for real capacities here: its number of phases is
bounded by the number of vertices independently of capacity values, and each
blocking flow terminates because every augmentation saturates an edge.  An
epsilon guards float comparisons.
"""

from __future__ import annotations

from collections import deque

_EPS = 1e-12


class FlowBudgetError(RuntimeError):
    """:func:`max_flow` exceeded its augmentation-iteration cap.

    Defined here (not in :mod:`repro.resilience`) so the flow substrate
    never imports the resilience layer; P-SD catches this and falls back to
    conservative non-dominance.  Carries enough to diagnose the run:

    Attributes:
        limit: the ``max_augmentations`` cap that was exceeded.
        augmentations: augmenting paths pushed when the cap tripped.
        phases: Dinic phases (level graphs) completed by then.
    """

    def __init__(self, limit: int, augmentations: int, phases: int) -> None:
        super().__init__(
            f"max-flow exceeded its augmentation budget: {augmentations} paths "
            f"> cap {limit} after {phases} phase(s)"
        )
        self.limit = limit
        self.augmentations = augmentations
        self.phases = phases


class FlowNetwork:
    """Adjacency-list flow network with residual edges.

    Vertices are dense integer ids ``0..n-1``.  Edges are stored as parallel
    arrays (to, capacity, index-of-reverse) for cache-friendly traversal.
    """

    __slots__ = ("n", "graph", "_edge_count")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError("network needs at least one vertex")
        self.n = n
        self.graph: list[list[list[float]]] = [[] for _ in range(n)]
        self._edge_count = 0

    def add_edge(
        self, u: int, v: int, capacity: float, reverse_capacity: float = 0.0
    ) -> None:
        """Add a directed edge ``u -> v`` with the given capacity.

        A positive ``reverse_capacity`` models flow already pushed along the
        edge: the network then *is* the residual graph of that partial flow,
        so ``max_flow`` computes the remaining augmentable value (used by the
        greedy-seeded P-SD check).
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise IndexError(f"edge ({u}, {v}) outside vertex range 0..{self.n - 1}")
        if capacity < 0 or reverse_capacity < 0:
            raise ValueError("capacity must be non-negative")
        # Forward edge: [to, cap, index of reverse in graph[v]]
        self.graph[u].append([v, float(capacity), len(self.graph[v])])
        # Residual edge (zero capacity unless flow was pre-pushed).
        self.graph[v].append([u, float(reverse_capacity), len(self.graph[u]) - 1])
        self._edge_count += 1

    @property
    def edge_count(self) -> int:
        """Number of forward edges added so far."""
        return self._edge_count


def _bfs_levels(net: FlowNetwork, source: int, sink: int) -> list[int] | None:
    level = [-1] * net.n
    level[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for edge in net.graph[u]:
            v, cap = edge[0], edge[1]
            if cap > _EPS and level[v] < 0:
                level[v] = level[u] + 1
                queue.append(v)
    return level if level[sink] >= 0 else None


def _dfs_blocking(
    net: FlowNetwork,
    u: int,
    sink: int,
    pushed: float,
    level: list[int],
    it: list[int],
) -> float:
    if u == sink:
        return pushed
    while it[u] < len(net.graph[u]):
        edge = net.graph[u][it[u]]
        v, cap, rev = edge[0], edge[1], edge[2]
        if cap > _EPS and level[v] == level[u] + 1:
            flowed = _dfs_blocking(net, v, sink, min(pushed, cap), level, it)
            if flowed > _EPS:
                edge[1] -= flowed
                net.graph[v][rev][1] += flowed
                return flowed
        it[u] += 1
    return 0.0


def max_flow(
    net: FlowNetwork,
    source: int,
    sink: int,
    *,
    metrics=None,
    max_augmentations: int | None = None,
    budget=None,
) -> float:
    """Compute the maximum flow from ``source`` to ``sink`` in-place.

    Residual capacities inside ``net`` are mutated, so the flow on each
    forward edge can be read back as ``original_capacity - remaining``.

    Args:
        metrics: optional :class:`repro.obs.metrics.MetricsRegistry`; when
            set, the run feeds ``repro_maxflow_phases_total`` (level graphs
            built) and ``repro_maxflow_augmentations_total`` (augmenting
            paths pushed) — flushed even when the run is interrupted.
        max_augmentations: cap on augmenting paths; exceeding it raises a
            diagnosable :class:`FlowBudgetError` instead of grinding through
            a pathological run on adversarial capacities.
        budget: optional :class:`repro.resilience.budget.Budget`; each phase
            hits a deadline checkpoint and each augmenting path is charged
            to the budget's cross-call augmentation tally.

    Returns:
        The max-flow value.

    Raises:
        FlowBudgetError: ``max_augmentations`` exceeded (partial flow and
            residual state remain in ``net``).
    """
    if source == sink:
        raise ValueError("source and sink must differ")
    total = 0.0
    phases = 0
    augmentations = 0
    try:
        while True:
            level = _bfs_levels(net, source, sink)
            if level is None:
                return total
            phases += 1
            if budget is not None:
                budget.checkpoint("maxflow")
            it = [0] * net.n
            while True:
                flowed = _dfs_blocking(net, source, sink, float("inf"), level, it)
                if flowed <= _EPS:
                    break
                augmentations += 1
                if budget is not None:
                    budget.spend_augmentations(1)
                if max_augmentations is not None and augmentations > max_augmentations:
                    raise FlowBudgetError(max_augmentations, augmentations, phases)
                total += flowed
    finally:
        if metrics is not None:
            metrics.inc("repro_maxflow_phases_total", phases)
            metrics.inc("repro_maxflow_augmentations_total", augmentations)
