"""Setup shim.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
minimal offline environments where the ``wheel`` package (required by the
PEP 660 editable build backend) is unavailable: pip then falls back to the
legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
