#!/usr/bin/env python3
"""Find players most similar to a target player from per-game stat lines.

The paper's motivating NBA scenario: each player is a multi-instance object
whose instances are per-game (points, assists, rebounds) records.  Different
NN functions legitimately disagree about the "most similar" player — a
consistent scorer wins under the max distance, a streaky one under the min —
so a recommender should surface the *candidate set* rather than pick one
function silently.

Run:  python examples/nba_player_similarity.py
"""

import numpy as np

from repro import NNCSearch, UncertainObject
from repro.datasets.semireal import nba_like
from repro.functions.registry import default_function_suite


def main() -> None:
    rng = np.random.default_rng(2015)
    players = nba_like(n_players=150, games_per_player=25, rng=rng)

    # The "query player": a recent arrival with a shorter stat history,
    # statistically similar to player 17 — who then *retires* and leaves the
    # league, so the similarity search must pick among genuinely different
    # players.
    target = UncertainObject(
        players[17].points[:12] + rng.normal(0, 150, size=(12, 3)),
        oid="target-player",
    )
    players = [p for p in players if p.oid != 17]

    search = NNCSearch(players)
    print("Candidate 'most similar players' per operator:")
    for kind in ["SSD", "SSSD", "PSD"]:
        result = search.run(target, kind)
        print(
            f"  {kind:>4}: {len(result):3d} candidates, "
            f"first five: {result.oids()[:5]}"
        )

    # Show that concrete functions disagree — the reason candidates matter.
    # (The N2 functions are polynomial but not cheap, so this part runs on a
    # smaller league.)
    small_league = players[:35]
    psd = set(search.run(target, "PSD").oids())
    small_psd = set(NNCSearch(small_league).run(target, "PSD").oids())
    print("\nWho is 'the' most similar player? Depends on the function:")
    winners: dict[str, list[str]] = {}
    for fn in default_function_suite(quantiles=(0.5,), topk=(1,)):
        nn = small_league[fn.nearest(small_league, target)].oid
        winners.setdefault(str(nn), []).append(fn.name)
    for player, fns in sorted(winners.items(), key=lambda kv: -len(kv[1])):
        mark = "in PSD set" if int(player) in small_psd else "NOT in PSD set (bug!)"
        print(f"  player {player:>4}: chosen by {', '.join(fns)}  [{mark}]")
    print(f"\nFull-league PSD candidate count: {len(psd)}")


if __name__ == "__main__":
    main()
