#!/usr/bin/env python3
"""Progressive NN candidate exploration (the paper's Figure 14 behaviour).

Algorithm 1 is progressive: a candidate is certain as soon as every object
that could dominate it has been examined, so high-quality candidates stream
out long before the search completes — like a search engine rendering its
first results while still crawling.

This example runs P-SD over a USA-like dataset and prints the decile
profile: what fraction of total time had elapsed when each 10% slice of the
candidates arrived, and how "strong" (how many objects they dominate) the
early candidates are compared with the late ones.

Run:  python examples/progressive_exploration.py
"""

import numpy as np

from repro.datasets.semireal import usa_like
from repro.datasets.synthetic import make_objects, make_query
from repro.experiments.harness import progressive_profile
from repro.experiments.report import format_table


def main() -> None:
    rng = np.random.default_rng(14)
    centers = usa_like(400, rng)
    objects = make_objects(centers, m_d=10, h_d=2500.0, rng=rng)
    query = make_query(centers[rng.integers(len(centers))], 8, 1200.0, rng)

    rows = progressive_profile(objects, query, "PSD")
    total_time = rows[-1]["time"] if rows else 0.0
    deciles = []
    for chunk in np.array_split(rows, min(10, len(rows))):
        chunk = list(chunk)
        deciles.append(
            {
                "returned_%": round(100 * chunk[-1]["progress"]),
                "time_%": round(100 * chunk[-1]["time"] / max(total_time, 1e-9)),
                "avg_quality": round(
                    float(np.mean([r["quality"] for r in chunk])), 1
                ),
            }
        )
    print(format_table(deciles, "P-SD progressive profile (USA-like dataset)"))
    print(
        "\nReading: early deciles arrive in a small share of the total time\n"
        "and dominate more objects on average — browse them immediately."
    )


if __name__ == "__main__":
    main()
