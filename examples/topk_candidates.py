#!/usr/bin/env python3
"""k-NN candidates: the k-skyband extension of the candidate search.

A user browsing results usually wants the top handful, not just the single
NN.  The candidate framework generalises directly: the *k-NN candidates* are
the objects dominated by fewer than k others — every object that can appear
in some function's top-k is included, and nothing else (w.r.t. the
operator's coverage).  This extension is implied by the paper's skyband view
of NNC ("our problem can be regarded as the skyline computation based on new
spatial dominance operators", Appendix D.3).

Run:  python examples/topk_candidates.py
"""

import numpy as np

from repro import NNCSearch, UncertainObject
from repro.functions.registry import FunctionFamily, default_function_suite


def main() -> None:
    rng = np.random.default_rng(99)
    objects = [
        UncertainObject(rng.normal(center, 2.0, size=(6, 2)), oid=i)
        for i, center in enumerate(rng.uniform(0, 60, size=(70, 2)))
    ]
    query = UncertainObject(rng.normal([30, 30], 3.0, size=(5, 2)), oid="Q")
    search = NNCSearch(objects)

    print("k-NN candidate counts (k-skyband) per operator:")
    print(f"  {'k':>3} | " + " | ".join(f"{k:>5}" for k in ["SSD", "SSSD", "PSD"]))
    for k in (1, 2, 3, 5, 10):
        sizes = [len(search.run(query, kind, k=k)) for kind in ["SSD", "SSSD", "PSD"]]
        print(f"  {k:>3} | " + " | ".join(f"{s:>5}" for s in sizes))

    # The guarantee, concretely: every top-3 object of every N1 function is
    # in the SSD 3-NN candidate set.
    k = 3
    skyband = set(search.run(query, "SSD", k=k).oids())
    print(f"\nSSD {k}-NN candidates: {sorted(skyband)}")
    suite = default_function_suite(quantiles=(0.5,), topk=())
    for fn in suite.family(FunctionFamily.N1):
        scores = sorted(
            (fn.score(i, objects, query), obj.oid) for i, obj in enumerate(objects)
        )
        top = [oid for _, oid in scores[:k]]
        covered = all(oid in skyband for oid in top)
        print(f"  top-{k} under {fn.name:>13}: {top}  covered: {covered}")


if __name__ == "__main__":
    main()
