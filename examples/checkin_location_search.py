#!/usr/bin/env python3
"""Nearest-user search over uncertain check-in locations (GoWalla scenario).

Each user is an uncertain object: a cloud of 2-d check-in locations.  Given
a region of interest — itself uncertain (say, a festival spanning several
venues) — we ask which users are plausibly nearest.  Because check-in clouds
overlap heavily, a single NN function is brittle; the candidate sets of the
dominance operators give a principled short-list, and the progressive search
streams them as they become certain.

Run:  python examples/checkin_location_search.py
"""

import time

import numpy as np

from repro import NNCSearch, UncertainObject
from repro.core.context import QueryContext
from repro.datasets.semireal import gowalla_like


def main() -> None:
    rng = np.random.default_rng(77)
    users = gowalla_like(n_users=300, checkins_per_user=12, rng=rng)

    # A query region: uncertainty over five festival venues downtown.
    venues = rng.uniform(4000, 6000, size=(5, 2))
    query = UncertainObject(venues, oid="festival")

    search = NNCSearch(users)

    print("Candidate sizes (overlapping clouds => F-SD style operators blow up):")
    for kind in ["SSD", "SSSD", "PSD", "FSD", "F+SD"]:
        result = search.run(query, kind)
        print(f"  {kind:>5}: {len(result):4d} candidate users")

    # Progressive streaming with SS-SD: results arrive before the search ends.
    print("\nStreaming SS-SD candidates progressively:")
    ctx = QueryContext(query)
    t0 = time.perf_counter()
    for i, user in enumerate(search.stream(query, "SSSD", ctx=ctx)):
        elapsed_ms = (time.perf_counter() - t0) * 1000
        if i < 8:
            print(f"  [{elapsed_ms:7.1f} ms] candidate user {user.oid}")
        elif i == 8:
            print("  ...")
    total_ms = (time.perf_counter() - t0) * 1000
    print(f"  {i + 1} candidates total in {total_ms:.1f} ms")


if __name__ == "__main__":
    main()
