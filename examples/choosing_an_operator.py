#!/usr/bin/env python3
"""The worked examples of the paper, end to end.

Replays the introduction's Figure 3 and Figure 4 scenes (exact geometric
reconstructions from :mod:`repro.datasets.paper_examples`) and shows,
numerically, why each dominance operator exists:

* S-SD covers the all-pairs functions (N1) but *misses* the NN-probability
  winner (Figure 3: C is stochastically dominated by A yet has the highest
  NN probability).
* SS-SD fixes N2 but still disagrees with Earth Mover's distance (Figure 4:
  A strictly-stochastically dominates B yet EMD prefers B).
* P-SD covers all three families; F-SD / F+-SD cover them too but return
  bloated candidate sets.

Run:  python examples/choosing_an_operator.py
"""

import numpy as np

from repro import UncertainObject, nn_candidates
from repro.core.bruteforce import (
    brute_p_dominates,
    brute_s_dominates,
    brute_ss_dominates,
)
from repro.datasets.paper_examples import figure3, figure4
from repro.functions.n2 import PossibleWorldScores
from repro.functions.n3 import earth_movers_distance


def show_figure3() -> None:
    """Figure 3: S-SD(A, C) holds, yet C wins on NN probability."""
    scene = figure3()
    q = scene.query
    objects = scene.object_list()

    print("Figure 3 (A, B near q1; C near q2):")
    print(f"  S-SD(A,B):  {brute_s_dominates(scene['A'], scene['B'], q)}")
    print(f"  S-SD(A,C):  {brute_s_dominates(scene['A'], scene['C'], q)}")
    print(
        f"  SS-SD(A,C): {brute_ss_dominates(scene['A'], scene['C'], q)}"
        "   <- strict order refuses to discard C"
    )
    pw = PossibleWorldScores(objects, q)
    for i, obj in enumerate(objects):
        print(f"  NN-probability({obj.oid}) = {pw.nn_probability(i):.3f}")
    for kind in ["SSD", "SSSD"]:
        oids = sorted(nn_candidates(objects, q, kind).oids())
        print(f"  NNC under {kind}: {oids}")
    print("  => C, the NN-probability winner, only survives under SS-SD.\n")


def show_figure4() -> None:
    """Figure 4: SS-SD(A, B) holds, yet EMD prefers B."""
    scene = figure4()
    q = scene.query

    print("Figure 4:")
    print(f"  SS-SD(A,B): {brute_ss_dominates(scene['A'], scene['B'], q)}")
    print(
        f"  P-SD(A,B):  {brute_p_dominates(scene['A'], scene['B'], q)}"
        "   <- peer order refuses to discard B"
    )
    print(f"  EMD(A,Q) = {earth_movers_distance(scene['A'], q):.3f}")
    print(f"  EMD(B,Q) = {earth_movers_distance(scene['B'], q):.3f}")
    print(f"  P-SD(A,C):  {brute_p_dominates(scene['A'], scene['C'], q)}")
    for kind in ["SSSD", "PSD"]:
        oids = sorted(nn_candidates(scene.object_list(), q, kind).oids())
        print(f"  NNC under {kind}: {oids}")
    print("  => B, the EMD winner, only survives under P-SD.\n")


def show_tradeoff() -> None:
    """Candidate size vs coverage on a random dataset (Figure 5 in numbers)."""
    rng = np.random.default_rng(5)
    objects = [
        UncertainObject(rng.normal(center, 2.5, size=(6, 2)), oid=i)
        for i, center in enumerate(rng.uniform(0, 60, size=(80, 2)))
    ]
    query = UncertainObject(rng.normal([30, 30], 3.0, size=(5, 2)), oid="Q")
    print("Trade-off on a random dataset (80 objects):")
    print(f"  {'operator':>8} {'#cand':>6}  coverage")
    for kind, coverage in [
        ("SSD", "N1"),
        ("SSSD", "N1+N2"),
        ("PSD", "N1+N2+N3"),
        ("FSD", "N1+N2+N3 (not minimal)"),
        ("F+SD", "N1+N2+N3 (MBR baseline)"),
    ]:
        size = len(nn_candidates(objects, query, kind))
        print(f"  {kind:>8} {size:>6}  {coverage}")


if __name__ == "__main__":
    show_figure3()
    show_figure4()
    show_tradeoff()
