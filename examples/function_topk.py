#!/usr/bin/env python3
"""After the candidates: exact top-k under the function you settled on.

The candidate workflow ends with the user picking a function.  This example
shows the follow-up query answered exactly with index bounds instead of
scoring every object:

* top-k under any stable N1 aggregate or N3 distance (best-first search
  with admissible MBR score bounds), and
* top-k *probable* NN (the possible-world query of Beskales et al.),
  answered with bound-then-verify over the exact rank distributions.

Run:  python examples/function_topk.py
"""

import numpy as np

from repro import UncertainObject
from repro.functions.base import MeanAggregate, QuantileAggregate
from repro.query.probable_nn import top_k_probable_nn
from repro.query.topk import FunctionTopK, emd_scorer, hausdorff_scorer


def main() -> None:
    rng = np.random.default_rng(31)
    objects = [
        UncertainObject(rng.normal(center, 2.0, size=(7, 2)), oid=i)
        for i, center in enumerate(rng.uniform(0, 100, size=(400, 2)))
    ]
    query = UncertainObject(rng.normal([50, 50], 2.5, size=(5, 2)), oid="Q")
    engine = FunctionTopK(objects)

    print("Exact top-3 per function (index-bounded best-first search):")
    for label, scorer in [
        ("expected distance", MeanAggregate()),
        ("median distance", QuantileAggregate(0.5)),
        ("Hausdorff", hausdorff_scorer()),
        ("EMD", emd_scorer()),
    ]:
        result = engine.query(query, scorer, k=3)
        ids = [obj.oid for _, obj in result]
        print(
            f"  {label:>17}: top-3 = {ids}   "
            f"({engine.last_exact_scores}/{len(objects)} objects scored exactly)"
        )

    print("\nTop-3 probable nearest neighbors (possible-world semantics):")
    from repro.query import probable_nn

    for prob, obj in top_k_probable_nn(objects, query, k=3):
        print(f"  object {obj.oid:>3}: Pr(NN) = {prob:.3f}")
    print(
        f"  ({probable_nn.last_exact_evaluations}/{len(objects)} exact "
        "probability evaluations needed)"
    )


if __name__ == "__main__":
    main()
