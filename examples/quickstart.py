#!/usr/bin/env python3
"""Quickstart: NN candidates for multi-instance objects.

Builds a small 2-d dataset of uncertain objects, runs the NN candidates
search with each spatial dominance operator, and shows how the candidate
sets nest (S-SD ⊆ SS-SD ⊆ P-SD ⊆ F-SD ⊆ F+-SD) while covering ever larger
families of NN functions.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import UncertainObject, nn_candidates
from repro.functions.registry import FunctionFamily, default_function_suite


def main() -> None:
    rng = np.random.default_rng(42)

    # 60 objects, each a cloud of 8 weighted instances around a center.
    centers = rng.uniform(0, 100, size=(60, 2))
    objects = [
        UncertainObject(rng.normal(center, 3.0, size=(8, 2)), oid=i)
        for i, center in enumerate(centers)
    ]
    # A query that is itself uncertain: 6 possible locations.
    query = UncertainObject(rng.normal([50, 50], 4.0, size=(6, 2)), oid="Q")

    print("NN candidates per spatial dominance operator")
    print("(smaller set = fewer functions covered; see Figure 5 of the paper)\n")
    coverage = {
        "SSD": "N1 (min/max/expected/quantile distances)",
        "SSSD": "N1+N2 (adds possible-world ranking functions)",
        "PSD": "N1+N2+N3 (adds Hausdorff/EMD-style functions)",
        "FSD": "correct for N1+N2+N3, but not minimal",
        "F+SD": "MBR-only baseline from prior work",
    }
    for kind in ["SSD", "SSSD", "PSD", "FSD", "F+SD"]:
        result = nn_candidates(objects, query, kind)
        print(
            f"  {kind:>5}: {len(result):3d} candidates "
            f"{sorted(result.oids())!r:<40} covers {coverage[kind]}"
        )

    # Sanity: the actual NN under each concrete function must appear in the
    # candidate set of the operator that covers its family.
    psd_set = set(nn_candidates(objects, query, "PSD").oids())
    print("\nNN object under concrete functions (all must be PSD candidates):")
    for fn in default_function_suite():
        nn_oid = objects[fn.nearest(objects, query)].oid
        family = {
            FunctionFamily.N1: "N1",
            FunctionFamily.N2: "N2",
            FunctionFamily.N3: "N3",
        }[fn.family]
        inside = "ok" if nn_oid in psd_set else "MISSING!"
        print(f"  {fn.name:>14} ({family}): NN = object {nn_oid:<3} [{inside}]")


if __name__ == "__main__":
    main()
