"""Tests for ``benchmarks/compare_bench.py`` (the bench regression gate)."""

from __future__ import annotations

import copy
import json

import pytest

from benchmarks.compare_bench import (
    bench_kind,
    compare,
    compare_serve,
    gate_verdicts,
    load_bench,
    main,
)

BASE = {
    "scale": "tiny",
    "end_to_end": [
        {"operator": "SSD", "kernel_time": 1.0, "scalar_time": 2.0},
        {"operator": "PSD", "kernel_time": 2.0, "scalar_time": 8.0},
    ],
}

SERVE_BASE = {
    "bench": "serve",
    "scale": "smoke",
    "shard_scaling": [
        {"shards": 1, "qps": 30.0, "speedup_vs_1": 1.0, "equal": True},
        {"shards": 2, "qps": 45.0, "speedup_vs_1": 1.5, "equal": True},
        {"shards": 4, "qps": 75.0, "speedup_vs_1": 2.5, "equal": True},
    ],
    "cache": {"hit_ratio": 0.75},
}


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestCompare:
    def test_no_regression_on_self(self):
        rows, regressions = compare(BASE, copy.deepcopy(BASE))
        assert regressions == []
        assert {r["operator"] for r in rows} == {"SSD", "PSD"}
        assert all(r["change"] == "+0.0%" for r in rows)

    def test_flags_ratio_regression(self):
        current = copy.deepcopy(BASE)
        current["end_to_end"][0]["kernel_time"] = 1.4  # ratio 0.5 -> 0.7
        rows, regressions = compare(BASE, current)
        assert len(regressions) == 1 and regressions[0].startswith("SSD")

    def test_improvement_is_not_a_regression(self):
        current = copy.deepcopy(BASE)
        current["end_to_end"][0]["kernel_time"] = 0.5
        _, regressions = compare(BASE, current)
        assert regressions == []

    def test_within_threshold_passes(self):
        current = copy.deepcopy(BASE)
        current["end_to_end"][0]["kernel_time"] = 1.1  # +10% < 15%
        _, regressions = compare(BASE, current)
        assert regressions == []

    def test_time_metric(self):
        current = copy.deepcopy(BASE)
        current["end_to_end"][1]["kernel_time"] = 2.2
        current["end_to_end"][1]["scalar_time"] = 8.8  # same ratio, slower
        _, by_ratio = compare(BASE, current, metric="ratio")
        assert by_ratio == []
        _, by_time = compare(BASE, current, metric="time", threshold=0.05)
        assert len(by_time) == 1 and by_time[0].startswith("PSD")

    def test_operator_only_in_one_file_never_flags(self):
        current = copy.deepcopy(BASE)
        current["end_to_end"].append(
            {"operator": "FSD", "kernel_time": 99.0, "scalar_time": 1.0}
        )
        rows, regressions = compare(BASE, current)
        assert regressions == []
        fsd = next(r for r in rows if r["operator"] == "FSD")
        assert fsd["baseline"] is None and fsd["change"] == "-"


class TestCompareServe:
    def test_no_regression_on_self(self):
        rows, regressions = compare_serve(SERVE_BASE, copy.deepcopy(SERVE_BASE))
        assert regressions == []
        assert {r["metric"] for r in rows} == {
            "speedup_vs_1[K=2]", "speedup_vs_1[K=4]", "cache.hit_ratio",
        }

    def test_flags_scaling_drop(self):
        current = copy.deepcopy(SERVE_BASE)
        current["shard_scaling"][2]["speedup_vs_1"] = 1.2  # 2.5 -> 1.2
        _, regressions = compare_serve(SERVE_BASE, current)
        assert len(regressions) == 1
        assert regressions[0].startswith("speedup_vs_1[K=4]")

    def test_scaling_improvement_passes(self):
        current = copy.deepcopy(SERVE_BASE)
        current["shard_scaling"][2]["speedup_vs_1"] = 3.5
        _, regressions = compare_serve(SERVE_BASE, current)
        assert regressions == []

    def test_equal_false_is_always_a_regression(self):
        current = copy.deepcopy(SERVE_BASE)
        current["shard_scaling"][1]["equal"] = False
        _, regressions = compare_serve(SERVE_BASE, current)
        assert any("diverged" in msg for msg in regressions)

    def test_flags_cache_hit_ratio_drop(self):
        current = copy.deepcopy(SERVE_BASE)
        current["cache"]["hit_ratio"] = 0.25
        _, regressions = compare_serve(SERVE_BASE, current)
        assert len(regressions) == 1
        assert regressions[0].startswith("cache.hit_ratio")

    def test_one_core_run_skips_speedup_gate(self, capsys):
        # A single-core runner cannot demonstrate parallel speedup; the
        # gate is skipped loudly instead of failing the build.
        current = copy.deepcopy(SERVE_BASE)
        current["meta"] = {"cpu_count": 1}
        current["shard_scaling"][2]["speedup_vs_1"] = 0.4  # would regress
        rows, regressions = compare_serve(SERVE_BASE, current)
        assert regressions == []
        skipped = [r for r in rows if "SKIPPED" in str(r.get("change"))]
        assert len(skipped) == 2  # K=2 and K=4
        assert "cpu_count=1" in capsys.readouterr().out

    def test_one_core_run_still_fails_on_equal_false(self):
        # The skip covers perf only — a correctness divergence must fail
        # regardless of the machine the bench ran on.
        current = copy.deepcopy(SERVE_BASE)
        current["meta"] = {"cpu_count": 1}
        current["shard_scaling"][1]["equal"] = False
        _, regressions = compare_serve(SERVE_BASE, current)
        assert any("diverged" in msg for msg in regressions)

    def test_main_autodetects_serve(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", SERVE_BASE)
        b = _write(tmp_path, "b.json", SERVE_BASE)
        assert main([a, b]) == 0
        assert "Serve scaling" in capsys.readouterr().out
        current = copy.deepcopy(SERVE_BASE)
        current["shard_scaling"][2]["speedup_vs_1"] = 0.5
        c = _write(tmp_path, "c.json", current)
        assert main([a, c]) == 1
        assert "REGRESSION speedup_vs_1[K=4]" in capsys.readouterr().err

    def test_kind_mismatch_is_exit_2(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", SERVE_BASE)
        assert main([a, b]) == 2
        assert "kind mismatch" in capsys.readouterr().err

    def test_committed_serve_baseline_self_compares_clean(self):
        from pathlib import Path

        baseline = str(
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "results" / "BENCH_serve_smoke_baseline.json"
        )
        assert main([baseline, baseline, "--strict"]) == 0


class TestGateVerdicts:
    def test_all_pass_on_identical(self):
        rows, regressions = compare(BASE, copy.deepcopy(BASE))
        gates = gate_verdicts(rows, regressions, "operator")
        assert [g["status"] for g in gates] == ["pass", "pass"]
        assert all(g["measured"] is not None for g in gates)

    def test_regression_maps_to_fail(self):
        current = copy.deepcopy(BASE)
        current["end_to_end"][0]["kernel_time"] = 1.5
        rows, regressions = compare(BASE, current)
        gates = {g["gate"]: g for g in gate_verdicts(rows, regressions, "operator")}
        assert gates["SSD"]["status"] == "fail"
        assert "threshold" in gates["SSD"]["detail"]
        assert gates["PSD"]["status"] == "pass"

    def test_one_core_skip_maps_to_skip(self, capsys):
        current = copy.deepcopy(SERVE_BASE)
        current["meta"] = {"cpu_count": 1}
        rows, regressions = compare_serve(SERVE_BASE, current)
        gates = {g["gate"]: g for g in gate_verdicts(rows, regressions, "metric")}
        assert gates["speedup_vs_1[K=4]"]["status"] == "skip"
        assert "cpu_count=1" in gates["speedup_vs_1[K=4]"]["detail"]
        assert gates["cache.hit_ratio"]["status"] == "pass"

    def test_rowless_regression_gets_its_own_fail_gate(self):
        current = copy.deepcopy(SERVE_BASE)
        current["shard_scaling"][1]["equal"] = False
        rows, regressions = compare_serve(SERVE_BASE, current)
        gates = gate_verdicts(rows, regressions, "metric")
        divergence = [g for g in gates if "diverged" in (g["detail"] or "")]
        assert len(divergence) == 1
        assert divergence[0]["status"] == "fail"

    def test_missing_operator_is_skip(self):
        current = copy.deepcopy(BASE)
        current["end_to_end"].append(
            {"operator": "FSD", "kernel_time": 1.0, "scalar_time": 2.0}
        )
        rows, regressions = compare(BASE, current)
        gates = {g["gate"]: g for g in gate_verdicts(rows, regressions, "operator")}
        assert gates["FSD"]["status"] == "skip"

    def test_main_writes_verdict_json(self, tmp_path, capsys):
        current = copy.deepcopy(SERVE_BASE)
        current["shard_scaling"][2]["speedup_vs_1"] = 0.5
        a = _write(tmp_path, "a.json", SERVE_BASE)
        b = _write(tmp_path, "b.json", current)
        out = tmp_path / "verdict.json"
        assert main([a, b, "--verdict-out", str(out)]) == 1
        verdict = json.loads(out.read_text())
        assert verdict["kind"] == "serve"
        assert verdict["informational"] is False
        statuses = {g["gate"]: g["status"] for g in verdict["gates"]}
        assert statuses["speedup_vs_1[K=4]"] == "fail"
        assert statuses["cache.hit_ratio"] == "pass"

    def test_verdict_marks_informational_on_scale_mismatch(self, tmp_path):
        current = copy.deepcopy(BASE)
        current["scale"] = "large"
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", current)
        out = tmp_path / "verdict.json"
        assert main([a, b, "--verdict-out", str(out)]) == 0
        assert json.loads(out.read_text())["informational"] is True


class TestLoadBench:
    def test_rejects_wrong_shape(self, tmp_path):
        path = _write(tmp_path, "bad.json", {"micro": []})
        with pytest.raises(ValueError, match="end_to_end"):
            load_bench(path)

    def test_kind_detection(self):
        assert bench_kind(BASE) == "kernels"
        assert bench_kind(SERVE_BASE) == "serve"


class TestMainExitCodes:
    def test_exit_0_on_identical(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", BASE)
        assert main([a, b]) == 0
        assert "REGRESSION" not in capsys.readouterr().err

    def test_exit_1_on_regression(self, tmp_path, capsys):
        current = copy.deepcopy(BASE)
        current["end_to_end"][0]["kernel_time"] = 1.5  # +50% ratio
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", current)
        assert main([a, b]) == 1
        assert "REGRESSION SSD" in capsys.readouterr().err

    def test_threshold_flag(self, tmp_path):
        current = copy.deepcopy(BASE)
        current["end_to_end"][0]["kernel_time"] = 1.1  # +10%
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", current)
        assert main([a, b]) == 0
        assert main([a, b, "--threshold", "0.05"]) == 1

    def test_scale_mismatch_informational(self, tmp_path, capsys):
        current = copy.deepcopy(BASE)
        current["scale"] = "large"
        current["end_to_end"][0]["kernel_time"] = 1.5  # regression, but...
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", current)
        assert main([a, b]) == 0  # ...ignored across scales
        err = capsys.readouterr().err
        assert "scale mismatch" in err and "ignored" in err

    def test_scale_mismatch_strict_is_exit_2(self, tmp_path, capsys):
        current = copy.deepcopy(BASE)
        current["scale"] = "large"
        a = _write(tmp_path, "a.json", BASE)
        b = _write(tmp_path, "b.json", current)
        assert main([a, b, "--strict"]) == 2
        assert "scale mismatch" in capsys.readouterr().err

    def test_exit_2_on_missing_or_invalid_file(self, tmp_path, capsys):
        a = _write(tmp_path, "a.json", BASE)
        assert main([a, str(tmp_path / "nope.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main([a, str(bad)]) == 2

    def test_committed_smoke_baseline_self_compares_clean(self, capsys):
        # The artifact CI gates against must be valid and self-consistent.
        from pathlib import Path

        baseline = str(
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "results" / "BENCH_smoke_baseline.json"
        )
        assert main([baseline, baseline, "--strict"]) == 0
