"""Fleet federation: histogram merge math, absorb semantics, /fleet.

The load-bearing claim is that cross-node quantiles come from *merged
bucket counts* — exactly what one fleet-wide histogram would have
reported — not from averaging per-node percentiles.  The tests pin that
arithmetic (round-trip through the ``/metrics.json`` wire form included)
and then the scraper end to end over in-process node apps.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.obs.fleet import FleetScraper, absorb_node_metrics
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.serve.remote import LocalNode
from repro.serve.router import RouterApp
from repro.serve.server import ServeApp
from repro.serve.updates import DatasetManager

QUERY_POINTS = [[4700.0, 5300.0], [5200.0, 5800.0]]


def _node_app(node_id: str, objects, *, shards: int = 2) -> ServeApp:
    # One registry shared by manager and app: that is what routes the
    # engine's repro_query_seconds observations into the scraped dump
    # (the CLI serve command wires it the same way).
    registry = MetricsRegistry()
    manager = DatasetManager(
        objects, shards=shards, partitioner="hash", backend="serial",
        metrics=registry,
    )
    return ServeApp(manager, registry=registry, node_id=node_id)


@pytest.fixture(scope="module")
def objects():
    rng = np.random.default_rng(29)
    centers = synthetic.anticorrelated_centers(50, 2, rng)
    return synthetic.make_objects(centers, 4, 120.0, rng)


class TestHistogramMath:
    def test_cumulative_round_trip_preserves_quantiles(self):
        hist = Histogram()
        for value in (0.001, 0.004, 0.02, 0.02, 0.3):
            hist.observe(value)
        # Wire form: cumulative counts over the finite bounds only (the
        # +Inf bucket is recovered from `count`).
        rebuilt = Histogram.from_cumulative(
            list(hist.buckets), hist.cumulative()[:-1],
            sum=hist.sum, count=hist.count,
        )
        assert rebuilt.counts == hist.counts
        assert rebuilt.count == hist.count
        for q in (0.5, 0.95, 0.99):
            assert rebuilt.quantile(q) == hist.quantile(q)

    def test_merge_is_bucketwise_additive(self):
        a, b = Histogram(), Histogram()
        for value in (0.001, 0.01):
            a.observe(value)
        for value in (0.02, 0.5, 0.5):
            b.observe(value)
        both = Histogram()
        for value in (0.001, 0.01, 0.02, 0.5, 0.5):
            both.observe(value)
        a.merge(b)
        assert a.counts == both.counts
        assert a.count == both.count
        assert a.quantile(0.99) == both.quantile(0.99)

    def test_merge_rejects_mismatched_bounds(self):
        a = Histogram(buckets=(0.1, 1.0))
        b = Histogram(buckets=(0.2, 1.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_overflow_and_clamped_flags_are_honest(self):
        hist = Histogram()
        hist.observe(0.001)
        hist.observe(1e9)  # beyond the top bound -> +Inf bucket
        assert hist.overflow == 1
        value, clamped = hist.quantile_clamped(0.99)
        assert clamped and value == max(hist.buckets)
        _, clamped_low = hist.quantile_clamped(0.25)
        assert not clamped_low


class TestAbsorb:
    def _node_dump(self):
        node = MetricsRegistry()
        node.inc("repro_dominance_checks_total", 42)
        node.set_gauge("repro_serve_inflight", 3)
        node.observe(
            "repro_query_seconds", 0.02, {"operator": "SSD"}
        )
        return node.to_json()

    def test_absorb_adds_node_label(self):
        router = MetricsRegistry()
        absorbed = absorb_node_metrics(router, self._node_dump(), "n1")
        assert absorbed == 3
        assert router.value(
            "repro_dominance_checks_total", {"node": "n1"}
        ) == 42.0
        assert router.value(
            "repro_serve_inflight", {"node": "n1"}
        ) == 3.0

    def test_double_absorb_is_idempotent(self):
        router = MetricsRegistry()
        dump = self._node_dump()
        absorb_node_metrics(router, dump, "n1")
        absorb_node_metrics(router, dump, "n1")
        # Overwrite, not add: a re-scrape of the same snapshot changes
        # nothing, counters don't double.
        assert router.value(
            "repro_dominance_checks_total", {"node": "n1"}
        ) == 42.0
        hist = router.get("repro_query_seconds",
                          {"operator": "SSD", "node": "n1"})
        assert hist.count == 1

    def test_already_node_labelled_series_skipped(self):
        node = MetricsRegistry()
        node.inc("repro_dominance_checks_total", 5, {"node": "inner"})
        router = MetricsRegistry()
        assert absorb_node_metrics(router, node.to_json(), "outer") == 0

    def test_skip_families_never_federate(self):
        node = MetricsRegistry()
        node.inc("repro_fleet_scrapes_total", 9, {"node2": "x"})
        node.set_gauge("repro_slo_error_ratio", 0.5)
        router = MetricsRegistry()
        assert absorb_node_metrics(router, node.to_json(), "n1") == 0

    def test_histogram_round_trips_through_wire_form(self):
        node = MetricsRegistry()
        for value in (0.003, 0.012, 0.4):
            node.observe("repro_query_seconds", value, {"operator": "PSD"})
        router = MetricsRegistry()
        absorb_node_metrics(router, node.to_json(), "n1")
        absorbed = router.get(
            "repro_query_seconds", {"operator": "PSD", "node": "n1"}
        )
        original = node.get("repro_query_seconds", {"operator": "PSD"})
        assert absorbed.counts == original.counts
        assert absorbed.quantile(0.95) == original.quantile(0.95)


class TestFleetScraper:
    def _fleet(self, objects, n_queries=3):
        apps = {
            nid: _node_app(nid, objects) for nid in ("n1", "n2", "n3")
        }
        nodes = {nid: LocalNode(nid, app) for nid, app in apps.items()}
        payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2,
                   "cache": False}
        for app in apps.values():
            for _ in range(n_queries):
                status, _ = app.dispatch("POST", "/query", payload)
                assert status == 200
        return apps, nodes

    def test_scrape_merges_quantiles_across_nodes(self, objects):
        apps, nodes = self._fleet(objects, n_queries=3)
        try:
            scraper = FleetScraper(nodes, MetricsRegistry())
            snap = scraper.scrape()
            assert set(snap["nodes"]) == {"n1", "n2", "n3"}
            for view in snap["nodes"].values():
                assert view["ok"] and view["absorbed_series"] > 0
                assert view["epoch"] == 0
                assert view["uptime_seconds"] >= 0.0
                assert view["breaker"] == "closed"
            ssd = snap["quantiles"]["SSD"]
            # 3 nodes x 3 queries merged into one distribution.
            assert ssd["count"] == 9
            assert 0.0 <= ssd["p50"] <= ssd["p99"]
        finally:
            for app in apps.values():
                app.manager.close()

    def test_merged_quantiles_match_single_fleet_histogram(self, objects):
        apps, nodes = self._fleet(objects, n_queries=2)
        try:
            registry = MetricsRegistry()
            scraper = FleetScraper(nodes, registry)
            scraper.scrape()
            expected = Histogram()
            for app in apps.values():
                expected.merge(
                    app.registry.get(
                        "repro_query_seconds", {"operator": "SSD"}
                    )
                )
            merged = scraper.merged_quantiles()["SSD"]
            assert merged["count"] == expected.count
            assert merged["p99"] == expected.quantile(0.99)
        finally:
            for app in apps.values():
                app.manager.close()

    def test_dead_node_degrades_loudly(self, objects):
        apps, nodes = self._fleet(objects, n_queries=1)
        try:
            nodes["n2"].fail = True
            registry = MetricsRegistry()
            scraper = FleetScraper(nodes, registry)
            snap = scraper.scrape()
            assert snap["nodes"]["n1"]["ok"]
            assert not snap["nodes"]["n2"]["ok"]
            assert "error" in snap["nodes"]["n2"]
            assert registry.value(
                "repro_fleet_scrape_errors_total", {"node": "n2"}
            ) == 1.0
            assert registry.value(
                "repro_fleet_scrapes_total", {"node": "n2"}
            ) == 1.0
        finally:
            for app in apps.values():
                app.manager.close()


class TestRouterFleetSurface:
    def _router(self, objects):
        apps, nodes = {}, {}
        for nid in ("n1", "n2"):
            app = _node_app(nid, objects)
            apps[nid] = app
            nodes[nid] = LocalNode(nid, app)
        router = RouterApp(
            nodes, shards=2, replication=1, health_interval_s=0,
        )
        return router, apps

    def test_fleet_endpoint_scrapes_fresh(self, objects):
        router, apps = self._router(objects)
        try:
            payload = {"points": QUERY_POINTS, "operator": "SSD", "k": 2,
                       "cache": False}
            status, _ = router.dispatch("POST", "/query", payload)
            assert status == 200
            status, body = router.handle("GET", "/fleet", None)
            assert status == 200
            assert set(body["nodes"]) == {"n1", "n2"}
            assert all(v["ok"] for v in body["nodes"].values())
            assert body["quantiles"]  # engine metrics federated
        finally:
            router.close()
            for app in apps.values():
                app.manager.close()

    def test_status_and_healthz_carry_fleet_and_uptime(self, objects):
        router, apps = self._router(objects)
        try:
            router.fleet.scrape()
            status_body = router.status()
            assert "fleet" in status_body and "alerts" in status_body
            health = router.healthz()
            assert health["start_time"] <= health["start_time"] + 1
            assert health["uptime_seconds"] >= 0.0
        finally:
            router.close()
            for app in apps.values():
                app.manager.close()

    def test_node_healthz_and_status_carry_uptime(self, objects):
        app = _node_app("n1", objects)
        try:
            health = app.healthz()
            assert health["uptime_seconds"] >= 0.0
            assert health["start_time"] == app.started_at
            status_body = app.status()
            assert status_body["uptime_seconds"] >= 0.0
            assert status_body["start_time"] == app.started_at
        finally:
            app.manager.close()
