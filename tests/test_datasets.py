"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.datasets.semireal import (
    ca_like,
    gowalla_like,
    house_like,
    nba_like,
    usa_like,
)
from repro.datasets.synthetic import (
    DOMAIN,
    anticorrelated_centers,
    independent_centers,
    make_objects,
    make_query,
)
from repro.datasets.workload import query_workload


class TestSyntheticCenters:
    def test_shapes_and_domain(self, rng):
        for gen in (anticorrelated_centers, independent_centers):
            pts = gen(200, 3, rng)
            assert pts.shape == (200, 3)
            assert pts.min() >= 0.0
            assert pts.max() <= DOMAIN

    def test_anticorrelated_negative_correlation(self, rng):
        pts = anticorrelated_centers(3000, 2, rng)
        corr = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert corr < -0.2

    def test_independent_near_zero_correlation(self, rng):
        pts = independent_centers(3000, 2, rng)
        corr = np.corrcoef(pts[:, 0], pts[:, 1])[0, 1]
        assert abs(corr) < 0.1

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            anticorrelated_centers(0, 2, rng)
        with pytest.raises(ValueError):
            independent_centers(5, 0, rng)

    def test_deterministic_with_seed(self):
        a = anticorrelated_centers(50, 3, np.random.default_rng(1))
        b = anticorrelated_centers(50, 3, np.random.default_rng(1))
        assert np.allclose(a, b)


class TestMakeObjects:
    def test_basic_shape(self, rng):
        centers = independent_centers(30, 2, rng)
        objects = make_objects(centers, m_d=10, h_d=300.0, rng=rng)
        assert len(objects) == 30
        for i, obj in enumerate(objects):
            assert obj.oid == i
            assert obj.dim == 2
            assert obj.points.min() >= 0.0
            assert obj.points.max() <= DOMAIN

    def test_fixed_count(self, rng):
        centers = independent_centers(10, 2, rng)
        objects = make_objects(centers, m_d=7, h_d=100.0, rng=rng, vary_count=False)
        assert all(len(o) == 7 for o in objects)

    def test_instances_near_center(self, rng):
        centers = independent_centers(20, 3, rng)
        objects = make_objects(centers, m_d=20, h_d=100.0, rng=rng)
        for obj, center in zip(objects, centers):
            # Instances are clipped to a box of edge <= 2 * h_d around the
            # center (further clipped to the domain).
            assert np.all(np.abs(obj.points - center) <= 100.0 + 1e-9)

    def test_invalid_m_d(self, rng):
        with pytest.raises(ValueError):
            make_objects(independent_centers(5, 2, rng), 0, 100.0, rng)

    def test_make_query(self, rng):
        q = make_query(np.array([5000.0, 5000.0]), 6, 200.0, rng, oid="Q7")
        assert q.oid == "Q7"
        assert len(q) == 6


class TestSemiReal:
    def test_nba_like(self, rng):
        players = nba_like(20, 15, rng)
        assert len(players) == 20
        assert all(p.dim == 3 and len(p) == 15 for p in players)
        pts = np.vstack([p.points for p in players])
        assert pts.min() >= 0.0 and pts.max() <= DOMAIN

    def test_nba_overlap_is_high(self, rng):
        """League-wide overlap: most player MBRs intersect each other."""
        players = nba_like(15, 20, rng)
        pairs = 0
        hits = 0
        for i in range(15):
            for j in range(i + 1, 15):
                pairs += 1
                hits += players[i].mbr.intersects(players[j].mbr)
        assert hits / pairs > 0.5

    def test_gowalla_like(self, rng):
        users = gowalla_like(25, 8, rng)
        assert len(users) == 25
        assert all(u.dim == 2 and len(u) == 8 for u in users)

    def test_center_generators(self, rng):
        for gen, d in ((house_like, 3), (ca_like, 2), (usa_like, 2)):
            pts = gen(100, rng)
            assert pts.shape == (100, d)
            assert pts.min() >= 0.0 and pts.max() <= DOMAIN

    def test_house_like_simplex_structure(self, rng):
        pts = house_like(500, rng) / DOMAIN
        sums = pts.sum(axis=1)
        # Expenditure shares: rows hover around total 1.
        assert abs(float(np.median(sums)) - 1.0) < 0.15


class TestWorkload:
    def test_from_objects(self, rng):
        centers = independent_centers(40, 2, rng)
        objects = make_objects(centers, 5, 200.0, rng)
        queries = query_workload(objects, 10, m_q=4, h_q=100.0, rng=rng)
        assert len(queries) == 10
        assert all(len(q) == 4 for q in queries)
        assert len({q.oid for q in queries}) == 10

    def test_from_centers(self, rng):
        centers = independent_centers(40, 2, rng)
        queries = query_workload(centers, 5, m_q=3, h_q=100.0, rng=rng)
        assert len(queries) == 5

    def test_capped_at_population(self, rng):
        centers = independent_centers(3, 2, rng)
        queries = query_workload(centers, 10, m_q=2, h_q=50.0, rng=rng)
        assert len(queries) == 3

    def test_empty_source_raises(self, rng):
        with pytest.raises(ValueError):
            query_workload(np.empty((0, 2)), 5, 3, 100.0, rng)
