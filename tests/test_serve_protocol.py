"""Wire protocol: strict request parsing and response shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import synthetic
from repro.serve.protocol import (
    OPERATOR_NAMES,
    ProtocolError,
    delete_response,
    error_body,
    insert_response,
    parse_delete_request,
    parse_insert_request,
    parse_query_request,
    query_response,
)
from repro.serve.shard import ShardedSearch


def _query_body(**overrides):
    body = {"points": [[1.0, 2.0], [3.0, 4.0]], "operator": "FSD"}
    body.update(overrides)
    return body


class TestParseQuery:
    def test_minimal_body_defaults(self):
        parsed = parse_query_request({"points": [[1.0, 2.0]]})
        assert parsed["operator"] == "FSD"
        assert parsed["k"] == 1
        assert parsed["metric"] == "euclidean"
        assert parsed["budget"] is None
        assert parsed["cache"] is True
        assert parsed["query"].points.shape == (1, 2)

    def test_probs_normalized(self):
        parsed = parse_query_request(_query_body(probs=[3.0, 1.0]))
        assert np.allclose(parsed["query"].probs, [0.75, 0.25])

    def test_all_operator_names_accepted(self):
        assert set(OPERATOR_NAMES) == {"SSD", "SSSD", "PSD", "FSD", "F+SD"}
        for name in OPERATOR_NAMES:
            assert parse_query_request(_query_body(operator=name))

    @pytest.mark.parametrize("body,fragment", [
        ("not a dict", "JSON object"),
        ({}, "points"),
        (_query_body(operator="NN"), "unknown operator"),
        (_query_body(k=0), "'k'"),
        (_query_body(k=True), "'k'"),
        (_query_body(k="2"), "'k'"),
        (_query_body(metric=7), "'metric'"),
        (_query_body(cache="yes"), "'cache'"),
        (_query_body(points=[1.0, 2.0]), "2-D"),
        (_query_body(points=[["a", "b"]]), "points"),
        (_query_body(budget="fast"), "budget"),
        (_query_body(budget={"deadline": 5}), "unknown budget"),
        (_query_body(budget={"deadline_ms": "5"}), "deadline_ms"),
        (_query_body(budget={"deadline_ms": True}), "deadline_ms"),
    ])
    def test_malformed_bodies_rejected(self, body, fragment):
        with pytest.raises(ProtocolError, match=fragment):
            parse_query_request(body)

    def test_budget_parsed_into_limits(self):
        parsed = parse_query_request(_query_body(
            budget={"deadline_ms": 50, "max_dominance_checks": 100}
        ))
        limits = parsed["budget"].limits()
        assert limits["deadline_ms"] == 50
        assert limits["max_dominance_checks"] == 100

    def test_empty_budget_object_means_none(self):
        assert parse_query_request(_query_body(budget={}))["budget"] is None


class TestParseInsertDelete:
    def test_insert_with_and_without_oid(self):
        obj = parse_insert_request({"points": [[1.0, 2.0]], "oid": "A"})
        assert obj.oid == "A"
        assert parse_insert_request({"points": [[1.0, 2.0]]}).oid is None

    def test_insert_bad_oid_type(self):
        with pytest.raises(ProtocolError, match="'oid'"):
            parse_insert_request({"points": [[1.0, 2.0]], "oid": [1]})

    def test_delete_requires_oid(self):
        assert parse_delete_request({"oid": 3}) == 3
        assert parse_delete_request({"oid": "x"}) == "x"
        with pytest.raises(ProtocolError, match="missing 'oid'"):
            parse_delete_request({})
        with pytest.raises(ProtocolError, match="'oid'"):
            parse_delete_request({"oid": 1.5})


class TestResponses:
    def test_query_response_shape(self):
        rng = np.random.default_rng(0)
        centers = synthetic.independent_centers(20, 2, rng)
        objects = synthetic.make_objects(centers, 3, 30.0, rng)
        query = synthetic.make_query(centers[0], 2, 10.0, rng)
        search = ShardedSearch(objects, shards=2)
        result = search.run(query, "FSD")
        search.close()
        body = query_response(result, 5, cached=True)
        assert body["count"] == len(body["candidates"]) >= 1
        assert all(
            set(c) == {"oid", "dominators"} for c in body["candidates"]
        )
        assert body["epoch"] == 5 and body["cached"] is True
        assert body["degraded"] is False and body["degradation"] is None
        assert body["shards"] == 2 and body["elapsed_ms"] >= 0

    def test_insert_delete_error_bodies(self):
        assert insert_response("A", 3) == {
            "oid": "A", "epoch": 3, "inserted": True,
        }
        assert delete_response(7, 4) == {
            "oid": 7, "epoch": 4, "deleted": True,
        }
        assert error_body("boom", hint="k") == {"error": "boom", "hint": "k"}
