"""Property tests for certified graceful degradation.

The headline invariant (ISSUE 3): for *any* budget — deadline, dominance-check
cap, flow-augmentation cap, in any combination — the degraded answer is a
superset of the exact NN candidate set, and a generous budget reproduces the
exact answer bit-for-bit.  Checked for every operator, with the batch kernels
both on and off.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import QueryContext
from repro.core.nnc import NNCSearch
from repro.resilience import Budget, FaultPlan, FaultSpec, FAULT_SITES

from .conftest import uncertain_objects

OPERATORS = ("SSD", "SSSD", "PSD", "FSD", "F+SD")

small_scenes = st.tuples(
    st.lists(
        uncertain_objects(max_instances=3, coord_range=8.0),
        min_size=2,
        max_size=6,
    ),
    uncertain_objects(max_instances=3, coord_range=8.0, uniform_probs=True),
)

budgets = st.builds(
    Budget,
    deadline_ms=st.one_of(
        st.none(), st.floats(min_value=0.0, max_value=5.0)
    ),
    max_dominance_checks=st.one_of(
        st.none(), st.integers(min_value=0, max_value=40)
    ),
    max_flow_augmentations=st.one_of(
        st.none(), st.integers(min_value=0, max_value=10)
    ),
)


def _with_ids(objects):
    for i, obj in enumerate(objects):
        obj.oid = i
    return objects


def _run(search, query, operator, *, kernels, budget=None, faults=None):
    ctx = QueryContext(query, kernels=kernels, budget=budget, faults=faults)
    return search.run(query, operator, ctx=ctx)


class TestBudgetedSearchProperty:
    @given(small_scenes, budgets, st.sampled_from(OPERATORS),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_any_budget_yields_superset(self, scene, budget, operator,
                                        kernels):
        objects, query = scene
        objects = _with_ids(objects)
        search = NNCSearch(objects)
        exact = set(_run(search, query, operator, kernels=kernels).oids())
        budget.reset()
        result = _run(search, query, operator, kernels=kernels, budget=budget)
        got = set(result.oids())
        assert got >= exact, (operator, kernels, budget.limits())
        # A degradation flag must accompany any inexact answer.
        if got != exact:
            assert result.degradation is not None

    @given(small_scenes, st.sampled_from(OPERATORS), st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_generous_budget_is_bitwise_exact(self, scene, operator, kernels):
        objects, query = scene
        objects = _with_ids(objects)
        search = NNCSearch(objects)
        exact = _run(search, query, operator, kernels=kernels)
        budget = Budget(
            deadline_ms=60_000.0,
            max_dominance_checks=10**9,
            max_flow_augmentations=10**9,
        )
        got = _run(search, query, operator, kernels=kernels, budget=budget)
        assert got.exact
        assert got.oids() == exact.oids()

    @given(small_scenes, st.sampled_from(FAULT_SITES),
           st.sampled_from(OPERATORS), st.integers(min_value=0, max_value=9))
    @settings(max_examples=50, deadline=None)
    def test_injected_faults_yield_superset(self, scene, site, operator,
                                            seed):
        objects, query = scene
        objects = _with_ids(objects)
        search = NNCSearch(objects)
        exact = set(_run(search, query, operator, kernels=True).oids())
        plan = FaultPlan(
            (
                FaultSpec(site, count=2, probability=0.8),
                FaultSpec("distance-matrix", kind="nan", count=1,
                          probability=0.5),
            ),
            seed=seed,
        )
        result = _run(search, query, operator, kernels=True, faults=plan)
        got = set(result.oids())
        assert got >= exact, (operator, site, seed)
        if got != exact:
            assert result.degradation is not None
