"""Tests for the instance ordering u <=_Q v and its hull-vertex reduction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.convexhull import convex_hull
from repro.geometry.halfspace import (
    closer_to_query,
    distance_vector,
    dominance_matrix,
)

points_2d = st.lists(st.floats(-20, 20), min_size=2, max_size=2).map(np.asarray)
clouds_2d = st.lists(
    st.lists(st.floats(-20, 20), min_size=2, max_size=2), min_size=1, max_size=8
).map(np.asarray)


class TestCloserToQuery:
    def test_trivially_closer(self):
        q = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert closer_to_query([0.5, 0.0], [10.0, 0.0], q)
        assert not closer_to_query([10.0, 0.0], [0.5, 0.0], q)

    def test_equal_points_closer_both_ways(self):
        q = np.array([[0.0, 0.0], [3.0, 1.0]])
        u = [2.0, 2.0]
        assert closer_to_query(u, u, q)

    def test_mixed_not_closer(self):
        # u closer to q1 but farther from q2 => not <=_Q.
        q = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert not closer_to_query([1.0, 0.0], [9.0, 0.0], q)
        assert not closer_to_query([9.0, 0.0], [1.0, 0.0], q)

    @given(points_2d, points_2d, clouds_2d)
    @settings(max_examples=100, deadline=None)
    def test_hull_vertices_suffice(self, u, v, query_points):
        """Checking only CH(Q) must agree with checking all of Q."""
        full = closer_to_query(u, v, query_points)
        hull = convex_hull(query_points)
        reduced = closer_to_query(u, v, hull)
        assert full == reduced

    @given(points_2d, points_2d, clouds_2d)
    @settings(max_examples=60, deadline=None)
    def test_interior_points_inherit(self, u, v, query_points):
        """If u <=_Q v on the hull, it holds for arbitrary convex combos."""
        hull = convex_hull(query_points)
        if not closer_to_query(u, v, hull):
            return
        rng = np.random.default_rng(3)
        weights = rng.dirichlet(np.ones(len(hull)), size=10)
        combos = weights @ hull
        assert closer_to_query(u, v, combos)


class TestDistanceVector:
    def test_shape_and_values(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0]])
        qs = np.array([[0.0, 0.0], [0.0, 1.0], [6.0, 8.0]])
        vec = distance_vector(pts, qs)
        assert vec.shape == (2, 3)
        assert vec[1, 0] == pytest.approx(5.0)
        assert vec[0, 0] == pytest.approx(0.0)

    @given(points_2d, points_2d, clouds_2d)
    @settings(max_examples=60, deadline=None)
    def test_vector_dominance_equals_closer(self, u, v, query_points):
        """u <=_Q v iff dist-vector(u) <= dist-vector(v) coordinate-wise."""
        vecs = distance_vector(np.vstack([u, v]), query_points)
        coordwise = bool(np.all(vecs[0] <= vecs[1] + 1e-9))
        assert coordwise == closer_to_query(u, v, query_points)


class TestDominanceMatrix:
    def test_matches_scalar_checks(self, rng):
        us = rng.uniform(0, 10, size=(4, 2))
        vs = rng.uniform(0, 10, size=(5, 2))
        qs = rng.uniform(0, 10, size=(3, 2))
        mat = dominance_matrix(us, vs, qs)
        assert mat.shape == (4, 5)
        for i in range(4):
            for j in range(5):
                assert mat[i, j] == closer_to_query(us[i], vs[j], qs)

    def test_diagonal_self_dominance(self, rng):
        pts = rng.uniform(0, 5, size=(4, 2))
        qs = rng.uniform(0, 5, size=(3, 2))
        mat = dominance_matrix(pts, pts, qs)
        assert np.all(np.diag(mat))
