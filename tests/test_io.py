"""Tests for dataset serialisation."""

import numpy as np
import pytest

from repro.objects.io import load_objects, save_objects
from repro.objects.uncertain import UncertainObject

from .conftest import random_object


class TestRoundTrip:
    def test_basic(self, tmp_path, rng):
        objects = [random_object(rng, m=4, oid=i) for i in range(7)]
        path = tmp_path / "data.npz"
        save_objects(path, objects)
        loaded = load_objects(path)
        assert len(loaded) == 7
        for orig, back in zip(objects, loaded):
            assert back.oid == orig.oid
            assert np.allclose(back.points, orig.points)
            assert np.allclose(back.probs, orig.probs)

    def test_varied_instance_counts(self, tmp_path, rng):
        objects = [random_object(rng, m=m, oid=f"o{m}") for m in (1, 3, 9)]
        path = tmp_path / "data.npz"
        save_objects(path, objects)
        loaded = load_objects(path)
        assert [len(o) for o in loaded] == [1, 3, 9]
        assert [o.oid for o in loaded] == ["o1", "o3", "o9"]

    def test_weighted_probs(self, tmp_path):
        obj = UncertainObject([[0.0], [1.0], [2.0]], [0.2, 0.3, 0.5], oid=0)
        path = tmp_path / "w.npz"
        save_objects(path, [obj])
        assert np.allclose(load_objects(path)[0].probs, [0.2, 0.3, 0.5])

    def test_none_oid_becomes_index(self, tmp_path):
        objects = [UncertainObject([[float(i)]]) for i in range(3)]
        path = tmp_path / "n.npz"
        save_objects(path, objects)
        assert [o.oid for o in load_objects(path)] == [0, 1, 2]

    def test_string_oids_preserved(self, tmp_path):
        obj = UncertainObject([[1.0]], oid="alice")
        path = tmp_path / "s.npz"
        save_objects(path, [obj])
        assert load_objects(path)[0].oid == "alice"


class TestValidation:
    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_objects(tmp_path / "e.npz", [])

    def test_mixed_dims_rejected(self, tmp_path):
        objects = [
            UncertainObject([[0.0]]),
            UncertainObject([[0.0, 1.0]]),
        ]
        with pytest.raises(ValueError):
            save_objects(tmp_path / "m.npz", objects)

    def test_version_check(self, tmp_path):
        path = tmp_path / "v.npz"
        np.savez(
            path,
            version=np.int64(99),
            offsets=np.array([0, 1]),
            points=np.zeros((1, 2)),
            probs=np.ones(1),
            oids=np.array(["x"]),
        )
        with pytest.raises(ValueError, match="version"):
            load_objects(path)


class TestSearchOnLoaded:
    def test_loaded_dataset_searchable(self, tmp_path, rng):
        from repro.core.nnc import nn_candidates

        objects = [random_object(rng, m=3, oid=i) for i in range(12)]
        query = random_object(rng, m=2, oid="Q")
        path = tmp_path / "d.npz"
        save_objects(path, objects)
        loaded = load_objects(path)
        assert sorted(nn_candidates(loaded, query, "SSD").oids()) == sorted(
            nn_candidates(objects, query, "SSD").oids()
        )
