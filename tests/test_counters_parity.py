"""Counter parity between the kernel and scalar search paths (plus the
field-list-free ``Counters.merge``/``snapshot`` mechanics).

The batch screens in :mod:`repro.core.nnc` attribute their counters
pair-by-pair in visit order with early exit at ``k`` — exactly as the scalar
operator loop would — so ``dominance_checks`` and ``mbr_tests`` (and the
prune/validate tallies) are identical between ``QueryContext(kernels=True)``
and ``kernels=False``.  ``instance_comparisons`` legitimately differs: batch
CDF sweeps charge whole matrices where the scalar merge scan stops early.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.context import QueryContext
from repro.core.counters import Counters
from repro.core.nnc import NNCSearch
from tests.conftest import random_scene

OPERATORS = ["SSD", "SSSD", "PSD", "FSD", "F+SD"]

#: Counter fields the kernel path must reproduce exactly.  Everything the
#: paper's Appendix C study reads — dominance checks, MBR tests, and the
#: per-rule prune/validate attribution — plus the traversal tallies.
PARITY_FIELDS = (
    "dominance_checks",
    "mbr_tests",
    "validated_by_mbr",
    "pruned_by_statistics",
    "pruned_by_cover",
    "nodes_visited",
    "objects_visited",
)


class TestKernelScalarCounterParity:
    @pytest.mark.parametrize("kind", OPERATORS)
    @pytest.mark.parametrize("k", [1, 2])
    def test_same_totals(self, kind, k):
        rng = np.random.default_rng(20150531 + k)
        objects, query = random_scene(rng, n_objects=40, m=4, spread=3.0)
        search = NNCSearch(objects)
        snaps = {}
        oids = {}
        for kernels in (True, False):
            ctx = QueryContext(query, kernels=kernels)
            result = search.run(query, kind, ctx=ctx, k=k)
            oids[kernels] = sorted(result.oids())
            snaps[kernels] = ctx.counters.snapshot()
        assert oids[True] == oids[False]
        for name in PARITY_FIELDS:
            assert snaps[True][name] == snaps[False][name], (
                f"{kind} k={k}: {name} diverged "
                f"(kernels={snaps[True][name]}, scalar={snaps[False][name]})"
            )
        # Sanity: the workload actually exercised the counters.  (F+-SD is
        # the MBR-only baseline — it never performs full dominance checks.)
        if kind != "F+SD":
            assert snaps[True]["dominance_checks"] > 0
        assert snaps[True]["mbr_tests"] > 0

    def test_weighted_instances_too(self):
        rng = np.random.default_rng(7)
        objects, query = random_scene(
            rng, n_objects=25, m=5, uniform_probs=False
        )
        search = NNCSearch(objects)
        for kind in OPERATORS:
            snaps = {}
            for kernels in (True, False):
                ctx = QueryContext(query, kernels=kernels)
                search.run(query, kind, ctx=ctx, k=2)
                snaps[kernels] = ctx.counters.snapshot()
            for name in ("dominance_checks", "mbr_tests"):
                assert snaps[True][name] == snaps[False][name], (kind, name)


class TestCountersMechanics:
    """``merge``/``snapshot`` iterate ``dataclasses.fields`` — no drift."""

    def test_merge_covers_every_field(self):
        a, b = Counters(), Counters()
        for i, field in enumerate(dataclasses.fields(Counters)):
            if field.name != "extra":
                setattr(b, field.name, i + 1)
        b.bump("custom", 9)
        a.merge(b)
        for i, field in enumerate(dataclasses.fields(Counters)):
            if field.name != "extra":
                assert getattr(a, field.name) == i + 1
        assert a.extra == {"custom": 9}

    def test_field_list_derived_from_dataclass(self):
        # The iteration order is the dataclass definition itself, so adding
        # a field to Counters automatically extends merge/snapshot — there
        # is no second hand-maintained list to drift out of sync.
        from repro.core.counters import _COUNTER_FIELDS

        declared = tuple(
            f.name for f in dataclasses.fields(Counters) if f.name != "extra"
        )
        assert _COUNTER_FIELDS == declared
        snap = Counters().snapshot()
        assert set(snap) == set(declared)

    def test_snapshot_extra_keys(self):
        c = Counters()
        c.bump("objects_dominated", 3)
        c.bump("objects_dominated")
        assert c.snapshot()["objects_dominated"] == 4

    def test_snapshot_shadow_guard(self):
        # A free-form key colliding with a built-in field must not clobber it.
        c = Counters()
        c.dominance_checks = 7
        c.bump("dominance_checks", 99)
        snap = c.snapshot()
        assert snap["dominance_checks"] == 7
        assert snap["extra.dominance_checks"] == 99

    def test_merge_accumulates_extras(self):
        a, b = Counters(), Counters()
        a.bump("x", 1)
        b.bump("x", 2)
        b.bump("y", 3)
        a.merge(b)
        assert a.extra == {"x": 3, "y": 3}

    def test_metrics_attr_stays_out_of_snapshot(self):
        c = Counters()
        assert c.metrics is None  # ClassVar default
        assert "metrics" not in c.snapshot()
