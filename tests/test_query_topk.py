"""Tests for the function-specific top-k engine and its bounds."""

import numpy as np
import pytest

from repro.core.context import QueryContext
from repro.functions import n3
from repro.functions.base import (
    MaxAggregate,
    MeanAggregate,
    MinAggregate,
    QuantileAggregate,
    standard_aggregates,
)
from repro.query.bounds import (
    aggregate_bounds,
    emd_lower_bound,
    hausdorff_lower_bound,
    mbr_score_bounds,
    object_centroid,
)
from repro.query.topk import (
    FunctionTopK,
    aggregate_scorer,
    emd_scorer,
    hausdorff_scorer,
    summin_scorer,
    top_k,
)

from .conftest import random_object, random_scene


class TestBounds:
    @pytest.mark.parametrize("seed", range(4))
    def test_mbr_bounds_bracket_exact(self, seed):
        rng = np.random.default_rng(seed)
        obj = random_object(rng, m=6, oid=0)
        query = random_object(rng, m=4, oid="Q")
        for agg in standard_aggregates():
            lo, hi = mbr_score_bounds(obj.mbr, query, agg)
            exact = agg(obj.distance_distribution(query))
            assert lo <= exact + 1e-9, agg.name
            assert exact <= hi + 1e-9, agg.name

    def test_partition_bounds_tighter_than_mbr(self, rng):
        obj = random_object(rng, m=16, oid=0)
        query = random_object(rng, m=4, oid="Q")
        ctx = QueryContext(query)
        agg = MeanAggregate()
        mbr_lo, mbr_hi = mbr_score_bounds(obj.mbr, query, agg)
        part_lo, part_hi = aggregate_bounds(obj, ctx, agg)
        exact = agg(obj.distance_distribution(query))
        assert mbr_lo - 1e-9 <= part_lo <= exact + 1e-9
        assert exact - 1e-9 <= part_hi <= mbr_hi + 1e-9

    def test_hausdorff_bound_admissible(self, rng):
        for _ in range(5):
            obj = random_object(rng, m=5, oid=0)
            query = random_object(rng, m=3, oid="Q")
            bound = hausdorff_lower_bound(obj.mbr, query)
            assert bound <= n3.hausdorff_distance(obj, query) + 1e-9

    def test_emd_bound_admissible(self, rng):
        for _ in range(5):
            obj = random_object(rng, m=5, oid=0, uniform_probs=False)
            query = random_object(rng, m=3, oid="Q")
            bound = emd_lower_bound(object_centroid(obj), query)
            assert bound <= n3.earth_movers_distance(obj, query) + 1e-6


class TestTopK:
    @pytest.mark.parametrize(
        "aggregate",
        [MinAggregate(), MaxAggregate(), MeanAggregate(), QuantileAggregate(0.5)],
        ids=lambda a: a.name,
    )
    def test_matches_bruteforce_n1(self, aggregate, rng):
        objects, query = random_scene(rng, n_objects=40, m=4, m_q=3)
        engine = FunctionTopK(objects)
        for k in (1, 3, 7):
            got = engine.query(query, aggregate, k)
            exact = sorted(
                (aggregate(o.distance_distribution(query)), i, o)
                for i, o in enumerate(objects)
            )
            want_scores = [s for s, _, _ in exact[:k]]
            assert [s for s, _ in got] == pytest.approx(want_scores)

    @pytest.mark.parametrize(
        "scorer,fn",
        [
            (hausdorff_scorer(), n3.hausdorff_distance),
            (summin_scorer(), n3.sum_of_min_distances),
            (emd_scorer(), n3.earth_movers_distance),
        ],
        ids=["hausdorff", "summin", "emd"],
    )
    def test_matches_bruteforce_n3(self, scorer, fn, rng):
        objects, query = random_scene(rng, n_objects=25, m=3, m_q=2)
        got = top_k(objects, query, scorer, k=3)
        want = sorted(fn(o, query) for o in objects)[:3]
        assert [s for s, _ in got] == pytest.approx(want, abs=1e-6)

    def test_bounds_avoid_exact_scores(self, rng):
        """The engine must score far fewer objects than the dataset size."""
        objects, query = random_scene(rng, n_objects=120, m=4, m_q=3, spread=0.8)
        engine = FunctionTopK(objects)
        engine.query(query, MeanAggregate(), k=1)
        assert engine.last_exact_scores < len(objects) * 0.7

    def test_k_larger_than_population(self, rng):
        objects, query = random_scene(rng, n_objects=5, m=3, m_q=2)
        got = top_k(objects, query, MeanAggregate(), k=50)
        assert len(got) == 5
        assert [s for s, _ in got] == sorted(s for s, _ in got)

    def test_invalid_k(self, rng):
        objects, query = random_scene(rng, n_objects=3, m=2, m_q=2)
        with pytest.raises(ValueError):
            top_k(objects, query, MeanAggregate(), k=0)

    def test_empty_collection(self, rng):
        query = random_object(rng, oid="Q")
        assert FunctionTopK([]).query(query, MeanAggregate(), 3) == []

    def test_top1_is_candidate(self, rng):
        """Coherence with the candidate framework: the winner under any N1
        aggregate is an S-SD candidate."""
        from repro.core.nnc import nn_candidates

        objects, query = random_scene(rng, n_objects=30, m=3, m_q=2)
        ssd = set(nn_candidates(objects, query, "SSD").oids())
        for agg in standard_aggregates():
            (_, winner), *_ = top_k(objects, query, agg, k=1)
            assert winner.oid in ssd, agg.name
