"""Tests for the NN-core baseline (Yuen et al., reference [36])."""

import itertools

import numpy as np
import pytest

from repro.baselines.nncore import nn_core, supersede_probability, supersedes
from repro.core.nnc import nn_candidates
from repro.datasets.paper_examples import figure1
from repro.functions.n1 import expected_distance, max_distance
from repro.objects.uncertain import UncertainObject

from .conftest import random_scene


class TestSupersedeProbability:
    def test_figure1_pairwise_probabilities(self):
        scene = figure1()
        q = scene.query
        assert supersede_probability(scene["A"], scene["B"], q) == pytest.approx(0.6)
        assert supersede_probability(scene["A"], scene["C"], q) == pytest.approx(0.6)
        assert supersede_probability(scene["B"], scene["C"], q) == pytest.approx(0.6)

    def test_complement(self, rng):
        objects, query = random_scene(rng, n_objects=4, m=3, m_q=2)
        for u, v in itertools.permutations(objects, 2):
            p_uv = supersede_probability(u, v, query)
            p_vu = supersede_probability(v, u, query)
            assert p_uv + p_vu == pytest.approx(1.0)

    def test_tie_split(self):
        q = UncertainObject([[0.0]], oid="Q")
        u = UncertainObject([[1.0]], oid="U")
        v = UncertainObject([[-1.0]], oid="V")
        assert supersede_probability(u, v, q) == pytest.approx(0.5)
        assert supersedes(u, v, q) and supersedes(v, u, q)

    def test_clear_winner(self):
        q = UncertainObject([[0.0]], oid="Q")
        u = UncertainObject([[1.0]], oid="U")
        v = UncertainObject([[5.0]], oid="V")
        assert supersede_probability(u, v, q) == pytest.approx(1.0)


class TestNNCore:
    def test_figure1_core_is_a(self):
        scene = figure1()
        core = nn_core(scene.object_list(), scene.query)
        assert [o.oid for o in core] == ["A"]

    def test_figure1_core_misses_function_winners(self):
        """The paper's motivating claim: NN-core excludes the max-distance
        and expected-distance NN objects, which our operators retain."""
        scene = figure1()
        objects = scene.object_list()
        q = scene.query
        core_ids = {o.oid for o in nn_core(objects, q)}
        max_winner = min(objects, key=lambda o: max_distance(o, q)).oid
        mean_winner = min(objects, key=lambda o: expected_distance(o, q)).oid
        assert max_winner not in core_ids
        assert mean_winner not in core_ids
        # The S-SD candidate set keeps both.
        ssd = set(nn_candidates(objects, q, "SSD").oids())
        assert max_winner in ssd and mean_winner in ssd

    def test_core_members_supersede_outsiders(self, rng):
        objects, query = random_scene(rng, n_objects=10, m=3, m_q=2)
        core = nn_core(objects, query)
        core_ids = {o.oid for o in core}
        for member in core:
            for other in objects:
                if other.oid not in core_ids:
                    assert supersedes(member, other, query)

    def test_core_minimality(self, rng):
        """No single core member may be dropped: inside a top cycle every
        member is beaten by some other member (unless the core is {x})."""
        objects, query = random_scene(rng, n_objects=10, m=3, m_q=2)
        core = nn_core(objects, query)
        if len(core) == 1:
            return
        for member in core:
            beaten = any(
                other is not member and supersedes(other, member, query)
                for other in core
            )
            assert beaten

    def test_trivial_sizes(self, rng):
        query = UncertainObject([[0.0]], oid="Q")
        assert nn_core([], query) == []
        only = UncertainObject([[1.0]], oid="X")
        assert nn_core([only], query) == [only]

    def test_condorcet_cycle_kept_whole(self):
        """A rock-paper-scissors supersede cycle must stay in the core."""
        # Engineer a 3-cycle on a line with a single query instance at 0.
        # A = {1 (p .6), 9}, B = {2 (.6), 4}: A beats B with .6.
        # B vs C and C vs A similar, by rotating the pattern.
        q = UncertainObject([[0.0]], oid="Q")
        a = UncertainObject([[2.0], [10.0]], [0.6, 0.4], oid="A")
        b = UncertainObject([[6.0], [1.0]], [0.6, 0.4], oid="B")
        c = UncertainObject([[4.0], [3.0]], [0.6, 0.4], oid="C")
        probs = {
            ("A", "B"): supersede_probability(a, b, q),
            ("B", "C"): supersede_probability(b, c, q),
            ("C", "A"): supersede_probability(c, a, q),
        }
        if all(p > 0.5 for p in probs.values()):
            core = nn_core([a, b, c], q)
            assert len(core) == 3
